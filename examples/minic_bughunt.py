#!/usr/bin/env python3
"""Bug hunting with DUEL: a realistic debugging session.

A mini-C program implements an interval scheduler whose accounting is
subtly wrong (a classic off-by-one corrupts one slot, and one list node
points into freed-looking garbage).  We run it to the failure point and
then use DUEL queries — not printf archaeology — to localise both bugs,
including the paper's "Illegal memory reference" diagnostic when a walk
hits a poisoned pointer.

Run:  python examples/minic_bughunt.py
"""

from repro import DuelSession, SimulatorBackend
from repro.core.errors import DuelError
from repro.minic import run_program
from repro.target.stdlib import stdout_text

SCHEDULER_C = r"""
struct task {
    char *name;
    int start;
    int len;
    struct task *next;
};

struct task *queue;          /* pending tasks, should stay start-sorted */
int slots[24];               /* per-hour load counters */
int ntasks = 0;

void enqueue(char *name, int start, int len) {
    struct task *t, *q, *prev;
    int h;
    t = (struct task *) malloc(sizeof(struct task));
    t->name = name;
    t->start = start;
    t->len = len;
    /* BUG 1: the loop marks one hour too many (<= instead of <). */
    for (h = start; h <= start + len; h++)
        slots[h % 24] = slots[h % 24] + 1;
    prev = 0;
    for (q = queue; q && q->start < start; q = q->next)
        prev = q;
    t->next = q;
    if (prev) prev->next = t;
    else queue = t;
    ntasks++;
}

int main(void) {
    enqueue("backup",   1, 2);
    enqueue("report",   4, 1);
    enqueue("rebuild",  9, 3);
    enqueue("archive", 14, 2);
    enqueue("mail",    20, 1);
    printf("scheduled %d tasks\n", ntasks);
    return 0;
}
"""


def main() -> None:
    interp = run_program(SCHEDULER_C)
    program = interp.program
    print("target stdout:", stdout_text(program), end="")
    print()
    duel = DuelSession(SimulatorBackend(program))

    print("Each task of length L should load exactly L slots; total load")
    print("should equal the sum of the lengths.  Interrogate the state:\n")

    for title, text in [
        ("the queue, in order", "queue-->next->(name, start, len)"),
        ("total scheduled hours according to the tasks",
         "+/(queue-->next->len)"),
        ("total load according to the slot counters (should match!)",
         "+/(slots[..24])"),
        ("which hours are loaded?", "slots[..24] >? 0"),
        ("hours loaded *outside* any task's [start, start+len) window — "
         "direct evidence of the off-by-one",
         "h := ..24 => if (slots[h] > 0 && "
         "#/(queue-->next->(if (start <= h && h < start + len) 1)) == 0) "
         "{h}"),
    ]:
        print(f"## {title}")
        print(f"gdb> duel {text}")
        for line in duel.eval_lines(text):
            print(line)
        print()

    print("The slot totals disagree with the task lengths, and the extra")
    print("loaded hours sit exactly one past each task's end: the enqueue")
    print("loop's `<=` should be `<`.\n")

    # Now poison one next pointer the way a use-after-free would, and
    # show the paper's error reporting when a DUEL walk trips over it.
    node3 = duel.eval_values("queue->next->next")[0]
    next_offset = program.types.structs["task"].field("next").offset
    program.write_value(node3 + next_offset,
                        program.parse_type("struct task *"), 0xDEAD0000)
    print("## a corrupted next pointer (simulated use-after-free)")
    print("gdb> duel queue-->next->name")
    try:
        for line in duel.eval_lines("queue-->next->name"):
            print(line)
    except DuelError as error:
        print(error)
    print()
    print("The walk stops at the poisoned node; `-->` treats the invalid")
    print("pointer as end-of-structure, and a direct dereference reports")
    print("the paper's diagnostic:")
    print("gdb> duel queue->next->next->next->name")
    try:
        for line in duel.eval_lines("queue->next->next->next->name"):
            print(line)
    except DuelError as error:
        print(error)


if __name__ == "__main__":
    main()
