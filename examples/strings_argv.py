#!/usr/bin/env python3
"""Strings, argv, and the @ guard.

Reproduces the paper's string idioms — ``s[0..999]@0`` walks a C string
up to its NUL, ``argv[0..]@0`` generates program arguments — plus calls
into the target's own string functions with generator arguments.

Run:  python examples/strings_argv.py
"""

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.ctype.types import CHAR, PointerType
from repro.target.stdlib import install_stdlib, stdout_text


def main() -> None:
    program = TargetProgram()
    install_stdlib(program)
    program.set_argv(["grep", "-i", "-n", "duel", "eval.c"])
    # A global char *s pointing at a heap string.
    s_sym = program.define("s", PointerType(CHAR))
    program.write_value(s_sym.address, PointerType(CHAR),
                        program.alloc_string("Hello, DUEL!"))

    duel = DuelSession(SimulatorBackend(program))
    sections = [
        # The paper: s[0..999]@0 produces the chars up to (not
        # including) the NUL.
        ("the characters of s", "s[0..999]@0"),
        ("how long is s?  (count the guard-limited sequence)",
         "#/(s[0..999]@0)"),
        ("cross-check with the target's strlen", "strlen(s)"),
        ("the uppercase letters of s",
         "c := s[0..999]@0 => if (c >= 'A' && c <= 'Z') c"),
        # The paper: argv[0..]@0 generates the argument strings.
        ("the program's arguments", "argv[0..]@0"),
        ("how many? (argc without argc)", "#/(argv[0..]@0)"),
        ("just the flags (args starting with '-')",
         "a := argv[0..]@0 => if (a[0] == '-') a"),
        # Generator args to a target function: compare every argument
        # against "duel" in one command.
        ("strcmp of every argument against \"duel\"",
         'strcmp(argv[..5], "duel")'),
        ("which argument IS \"duel\"?",
         'a := argv[0..]@0 => if (strcmp(a, "duel") == 0) a'),
    ]
    for title, text in sections:
        print(f"## {title}")
        print(f"gdb> duel {text}")
        for line in duel.eval_lines(text):
            print(line)
        print()

    # printf with generator arguments, straight from the paper.
    print('## printf("%d %d, ", (3,4), 5..7) — all combinations')
    duel.eval('printf("%d %d, ", (3,4), 5..7)')
    print(stdout_text(program))


if __name__ == "__main__":
    main()
