#!/usr/bin/env python3
"""The paper's running example: exploring a compiler's symbol table.

A mini-C program builds the classic chained hash table

    struct symbol { char *name; int scope; struct symbol *next; } *hash[1024];

by actually running in the simulated inferior (insertions, malloc, the
lot).  We then stop — as if at a breakpoint — and explore the state
with the paper's own DUEL queries.

Run:  python examples/symtab_explore.py
"""

from repro import DuelSession, SimulatorBackend
from repro.minic import run_program
from repro.target.stdlib import stdout_text

SYMTAB_C = r"""
struct symbol { char *name; int scope; struct symbol *next; };
struct symbol *hash[1024];
int nsyms = 0;

unsigned hashfn(char *s) {
    unsigned h = 0;
    int i;
    for (i = 0; s[i]; i++)
        h = h * 31 + s[i];
    return h % 1024;
}

/* Insert keeps each chain sorted by decreasing scope. */
void insert(char *name, int scope) {
    struct symbol *p, *q, *prev;
    unsigned b = hashfn(name);
    p = (struct symbol *) malloc(sizeof(struct symbol));
    p->name = name;
    p->scope = scope;
    prev = 0;
    for (q = hash[b]; q && q->scope > scope; q = q->next)
        prev = q;
    p->next = q;
    if (prev) prev->next = p;
    else hash[b] = p;
    nsyms++;
}

int main(void) {
    char *names[12];
    int scopes[12];
    int i;
    names[0] = "main";    scopes[0] = 0;
    names[1] = "argc";    scopes[1] = 1;
    names[2] = "argv";    scopes[2] = 1;
    names[3] = "i";       scopes[3] = 2;
    names[4] = "j";       scopes[4] = 2;
    names[5] = "tmp";     scopes[5] = 7;   /* deep block */
    names[6] = "swap";    scopes[6] = 0;
    names[7] = "buf";     scopes[7] = 8;   /* deeper still */
    names[8] = "x";       scopes[8] = 3;
    names[9] = "y";       scopes[9] = 3;
    names[10] = "printf"; scopes[10] = 0;
    names[11] = "hashfn"; scopes[11] = 0;
    for (i = 0; i < 12; i++)
        insert(names[i], scopes[i]);
    printf("inserted %d symbols\n", nsyms);
    return 0;
}
"""


def main() -> None:
    interp = run_program(SYMTAB_C)
    print("target stdout:", stdout_text(interp.program), end="")
    print()

    duel = DuelSession(SimulatorBackend(interp.program))
    queries = [
        # Non-empty buckets and every name chained under them.
        ("which buckets are occupied, and by what?",
         "(hash[..1024] !=? 0)-->next->name"),
        # The paper's search: heads with scope > 5.
        ("symbols at bucket heads with scope > 5",
         "(hash[..1024] !=? 0)->scope >? 5"),
        # Names of deep-scope symbols anywhere in the table.
        ("names of symbols with scope > 5, wherever they sit",
         "hash[..1024]-->next->(if (scope > 5) name)"),
        # How many symbols does DUEL count?  (Cross-check nsyms.)
        ("count every chained symbol",
         "#/(hash[..1024]-->next)"),
        ("the program's own counter",
         "nsyms"),
        # Verify the sortedness invariant the insert() maintains.
        ("any chain violating decreasing-scope order? (silence = sorted)",
         "hash[..1024]-->next-> if (next) scope <? next->scope"),
        # Inferior function call: hash the string "tmp" via the
        # program's own hashfn, then look at that bucket.
        ("call the target's hashfn on \"tmp\"",
         'hashfn("tmp")'),
        ("the chain in that very bucket",
         'hash[hashfn("tmp")]-->next->(name, scope)'),
        # Side effects: close scope 2 (clear those entries to scope 0).
        ("demote every scope-2 symbol to scope 0 (side effect, no output)",
         "hash[..1024]-->next->(if (scope == 2) scope = 0) ;"),
        ("scope-2 symbols remaining after the demotion",
         "#/(hash[..1024]-->next->scope ==? 2)"),
    ]
    for title, text in queries:
        print(f"## {title}")
        print(f"gdb> duel {text}")
        lines = duel.eval_lines(text)
        for line in lines:
            print(line)
        if not lines:
            print("(no output)")
        print()


if __name__ == "__main__":
    main()
