#!/usr/bin/env python3
"""DUEL-powered breakpoints, watchpoints, and assertions.

The paper's Discussion wishes DUEL were wired into "watchpoints and
conditional breakpoints" and into program assertions ("x[0] through
x[n] are positive").  This example does both: a mini-C stack machine
with an off-by-one bug runs under the Debugger, and DUEL expressions
catch the corruption the moment it happens.

Better still: because the simulated inferior lays out globals
contiguously like a real C implementation, the buggy ``stack[8] = 81``
write lands on the *adjacent global* ``sp`` — genuine silent memory
corruption, caught at the exact statement by the DUEL assertion.

Run:  python examples/watchpoints_assertions.py
"""

from repro.debugger import Debugger
from repro.debugger.debugger import StopKind

STACK_MACHINE = r"""
int stack[8];
int sp = 0;            /* number of live entries; sits right after stack! */
int pushes = 0, pops = 0;

void push(int v) {
    /* BUG: <= allows writing one past the end (stack[8]). */
    if (sp <= 8) {
        stack[sp] = v;
        sp++;
        pushes++;
    }
}

int pop(void) {
    if (sp > 0) {
        sp--;
        pops++;
        return stack[sp];
    }
    return -1;
}

int main(void) {
    int i;
    for (i = 1; i <= 9; i++)   /* the 9th push overflows */
        push(i * i);
    while (sp > 0)
        pop();
    return pops;
}
"""


def main() -> None:
    print("A stack machine with a bounds bug, run under DUEL instruments.\n")

    def on_stop(event, session):
        print(f"*** {event}")
        if event.kind is StopKind.BREAKPOINT:
            print("    stack so far:", session.eval_values("stack[..8]"))
        if event.kind is StopKind.WATCHPOINT:
            old, new = event.detail
            print(f"    sp: {old[0] if old else '?'} -> "
                  f"{new[0] if new else '?'}")
        if event.kind is StopKind.ASSERTION:
            print("    VIOLATION: sp =", session.eval_values("sp")[0])
            print("    stack:", session.eval_values("stack[..8]"))
            print("    -> the out-of-bounds stack[8] write has clobbered")
            print("       the adjacent global sp with 9*9 = 81.")
            return "abort"   # stop the run right here, like a debugger
        return None

    dbg = Debugger(STACK_MACHINE, on_stop=on_stop)

    # 1. The paper's assertion shape: an invariant that must always
    #    hold.  sp may never exceed the array bound.
    inv = dbg.assert_always("sp <= 8")

    # 2. A conditional breakpoint with a *generator* condition: stop
    #    entering push() once any stored value exceeds 60.
    bp = dbg.break_at("push", condition="stack[..8] >? 60")

    # 3. A watchpoint on the stack depth.
    wp = dbg.watch("sp")

    status = dbg.run()
    print(f"\nrun halted (status {status}) at the first violation")
    print(f"breakpoint '{bp.condition}' hits: {bp.hits}")
    print(f"watchpoint 'sp' changes:          {wp.hits}")
    print(f"assertion 'sp <= 8' violations:   {inv.violations}")
    print(f"DUEL evaluations spent on hooks:  {dbg.condition_evals}")
    print("\nThe assertion fired at the precise statement where the 9th")
    print("push ran sp past the bound — the paper's 'assertions written")
    print("in a Duel-like language', realised (and the corruption it")
    print("caught is real: stack[8] aliases sp in target memory).")


if __name__ == "__main__":
    main()
