#!/usr/bin/env python3
"""Lists and trees: the paper's expansion operator ``-->`` at work.

Reproduces the Introduction's duplicate-element query, the §Syntax tree
walks, select (``[[...]]``), index aliases (``e#n``), and the @ guard —
then pushes past the paper with BFS ordering (``-->>``) and a cyclic
list, which the original implementation could not handle.

Run:  python examples/list_tree_debug.py
"""

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.target import builder


def main() -> None:
    program = TargetProgram()
    # The Introduction's list L: 4th and 9th nodes (0-based) hold 27.
    builder.linked_list(
        program, "L", [10, 20, 30, 40, 27, 50, 60, 70, 80, 27])
    # A second list used for the select example.
    builder.linked_list(program, "head",
                        [11, 42, 5, 33, 19, 29, 8, 77], tag="hnode")
    # The paper's tree (9, (3 (4) (5)), (12)).
    builder.binary_tree(program, "root", (9, (3, 4, 5), 12))
    # A cyclic list: the original DUEL "does not handle cycles"; we do.
    builder.linked_list(program, "ring", [1, 2, 3, 4], tag="rnode",
                        cycle_to=1)

    duel = DuelSession(SimulatorBackend(program))
    sections = [
        ("Walk list L", "L-->next->value"),
        ("The Introduction's query: duplicate values in L "
         "(one-liner vs 7 lines of C)",
         "L-->next->(value ==? next-->next->value)"),
        ("The same, reporting *both* positions via index aliases",
         "L-->next#i->value ==? L-->next#j->value => "
         "if (i < j) L-->next[[i,j]]->value"),
        ("Select the 3rd and 5th values of the head list",
         "head-->next->value[[3,5]]"),
        ("Tree keys in preorder", "root-->(left,right)->key"),
        ("Tree keys in BFS order (extension)", "root-->>(left,right)->key"),
        ("Path to the node holding 5 "
         "(comparison corrected from the paper; see EXPERIMENTS.md)",
         "root-->(if (key > 5) left else if (key < 5) right)->key"),
        ("How many nodes in the tree?", "#/(root-->(left,right))"),
        ("Sum of all keys", "+/(root-->(left,right)->key)"),
        ("Largest key anywhere", ">?/(root-->(left,right)->key)"),
        ("Walk a CYCLIC list safely (original DUEL would loop)",
         "ring-->next->value"),
        ("List values until the first one over 60 (@ guard)",
         "L-->next->value@(_ > 60)"),
    ]
    for title, text in sections:
        print(f"## {title}")
        print(f"gdb> duel {text}")
        for line in duel.eval_lines(text):
            print(line)
        print()


if __name__ == "__main__":
    main()
