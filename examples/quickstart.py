#!/usr/bin/env python3
"""Quickstart: DUEL in five minutes.

Builds a tiny simulated inferior, attaches a DUEL session, and walks
through the paper's opening examples — generators, conditional-yield
comparisons, aliases, and symbolic output.

Run:  python examples/quickstart.py
"""

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.target import builder


def main() -> None:
    # 1. A target to debug.  Normally this is a live process under gdb;
    #    here it is a simulated inferior with one global array.
    program = TargetProgram()
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])

    # 2. Attach DUEL through the paper's narrow debugger interface.
    duel = DuelSession(SimulatorBackend(program))

    # 3. Ask questions.  Each call is one "duel <expr>" command.
    demos = [
        # Generators: .. produces integer sequences, comma alternates.
        "(1..3)+(5,9)",
        "(1,2,5)*4+(10,200)",
        # Plain C still works (and prints like the paper: 2.500).
        "1 + (double)3/2",
        # The headline query: which elements of x are positive?
        "x[..10] >? 0",
        # C's == compares; DUEL's ==? *yields* the left side when true.
        "x[..10] ==? 7",
        # Range search, reading left to right: elements between 5 and 10.
        "x[..10] >? 5 <? 10",
        # Aliases: i becomes each of 1..3; the ; keeps only the last.
        "i := 1..3; i + 4",
        # => produces the right side for *each* left value.
        "i := 1..3 => {i} + 4",
        # Reductions: count and sum of a generated sequence.
        "#/(x[..10] >? 0)",
        "+/(x[..10] >? 0)",
        # sizeof and casts work on the target's types.
        "sizeof(int [4])",
    ]
    for text in demos:
        print(f"gdb> duel {text}")
        for line in duel.eval_lines(text):
            print(line)
        print()


if __name__ == "__main__":
    main()
