"""Governor overhead on the P3 hot path.

Every value yielded by every generator node passes through the
inlined ``ResourceGovernor.step()`` accounting in
``Evaluator._counted`` — the one piece of governor code on the
evaluation hot path (deadline and cancellation are only polled every
``CHECK_EVERY`` steps).  This benchmark runs the paper's P3 query
``x[..1000] !=? 0`` three ways:

* ``with_governor``   — the shipped configuration;
* ``wrapper_only``    — the per-node wrapper generator kept, the step
  accounting removed: isolates what the *governor* adds over the
  counting wrapper the evaluator always had;
* ``no_wrapper``      — ``_counted`` gone entirely (never a shipped
  configuration; bounds the cost of per-node wrapping itself).

The smoke test asserts the governor's accounting stays under the 5%
target with a margin for timer noise; the precise ratios appear in
the benchmark table.
"""

import time

import pytest

from conftest import make_array_session

EXPR = "x[..1000] !=? 0"


def _passthrough(it):
    yield from it


@pytest.fixture(scope="module")
def governed_session():
    return make_array_session(1000, symbolic=False)


@pytest.fixture(scope="module")
def wrapper_only_session():
    session = make_array_session(1000, symbolic=False)
    session.evaluator._counted = _passthrough
    return session


@pytest.fixture(scope="module")
def no_wrapper_session():
    session = make_array_session(1000, symbolic=False)
    session.evaluator._counted = lambda it: it
    return session


@pytest.mark.benchmark(group="governor-overhead")
def test_with_governor(benchmark, governed_session):
    out = benchmark(governed_session.eval, EXPR)
    assert len(out) > 900  # almost all seeded values are non-zero


@pytest.mark.benchmark(group="governor-overhead")
def test_wrapper_only(benchmark, wrapper_only_session):
    out = benchmark(wrapper_only_session.eval, EXPR)
    assert len(out) > 900


@pytest.mark.benchmark(group="governor-overhead")
def test_no_wrapper(benchmark, no_wrapper_session):
    out = benchmark(no_wrapper_session.eval, EXPR)
    assert len(out) > 900


def test_overhead_smoke(governed_session, wrapper_only_session):
    """Step accounting must stay cheap: target <5% on P3, asserted at
    a looser bound so scheduler noise can't flake the suite."""
    def best_of(session, repeats=7):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            session.eval(EXPR)
            timings.append(time.perf_counter() - start)
        return min(timings)

    best_of(governed_session, repeats=2)         # warm both paths
    best_of(wrapper_only_session, repeats=2)
    governed = best_of(governed_session)
    baseline = best_of(wrapper_only_session)
    overhead = governed / baseline - 1.0
    assert overhead < 0.15, (
        f"governor accounting overhead {overhead:.1%} on P3 (target <5%)")
