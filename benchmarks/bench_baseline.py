"""P4 — DUEL one-liners vs the C the programmer would type.

The paper's expressiveness claim, made measurable: for each paired
query, the conciseness table (chars/tokens) and the runtime of both
formulations on the same simulated inferior.  Both sides share the
operator engine, so the timing difference isolates the query-shape
cost, not arithmetic implementation differences.
"""

import pytest

from repro.baseline import PAPER_QUERIES
from repro.baseline.metrics import (
    expressiveness_table,
    fresh_pair,
    run_c,
    run_duel,
)

_KEYS = sorted(PAPER_QUERIES)


@pytest.fixture(scope="module")
def pairs():
    built = {}
    for key in _KEYS:
        query = PAPER_QUERIES[key]
        session, interp = fresh_pair(query.workload)
        # Pre-load the C side so the benchmark measures execution only.
        run_c(interp, query)
        built[key] = (query, session, interp)
    return built


@pytest.mark.parametrize("key", _KEYS)
@pytest.mark.benchmark(group="P4-duel")
def test_duel_side(benchmark, pairs, key):
    query, session, _ = pairs[key]
    out = benchmark(run_duel, session, query)
    assert isinstance(out, list)


@pytest.mark.parametrize("key", _KEYS)
@pytest.mark.benchmark(group="P4-c")
def test_c_side(benchmark, pairs, key):
    query, _, interp = pairs[key]
    out = benchmark(run_c, interp, query)
    assert isinstance(out, list)


def test_print_conciseness_table(capsys):
    """Regenerates the conciseness table (the paper's core claim)."""
    rows = expressiveness_table()
    with capsys.disabled():
        print()
        print("P4 conciseness: DUEL one-liner vs debugger C")
        header = (f"{'query':<16}{'duel chars':>11}{'c chars':>9}"
                  f"{'ratio':>7}{'duel toks':>11}{'c toks':>8}{'ratio':>7}")
        print(header)
        for row in rows:
            print(f"{row['query']:<16}{row['duel_chars']:>11}"
                  f"{row['c_chars']:>9}{row['char_ratio']:>7}"
                  f"{row['duel_tokens']:>11}{row['c_tokens']:>8}"
                  f"{row['token_ratio']:>7}")
    assert all(row["char_ratio"] > 1 for row in rows)
