"""Benchmark fixtures: workloads built once per session."""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.bench import workloads


@pytest.fixture(scope="module")
def hash_session():
    program = workloads.hash_table()
    return DuelSession(SimulatorBackend(program))


@pytest.fixture(scope="module")
def empty_session():
    from repro.target.program import TargetProgram
    return DuelSession(SimulatorBackend(TargetProgram()))


def make_array_session(n, symbolic=True):
    program = workloads.big_array(n)
    return DuelSession(SimulatorBackend(program), symbolic=symbolic)
