"""E1/E2 throughput — the paper's worked sessions as micro-benchmarks.

Ensures the interactive path (compile + drive + render) stays
interactive-fast: the paper notes "the evaluation time for most Duel
expressions is negligible".
"""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.bench import workloads

SESSION_EXPRS = [
    "(1..3)+(5,9)",
    "(1,2,5)*4+(10,200)",
    "1 + (double)3/2",
    "(hash[..1024] !=? 0)->scope >? 5",
    "hash[1,9]->(scope,name)",
    "hash[0]-->next->scope",
    "hash[..1024]-->next-> if (next) scope <? next->scope",
]


@pytest.fixture(scope="module")
def paper_session():
    return DuelSession(SimulatorBackend(workloads.hash_table()))


@pytest.mark.parametrize("expr", SESSION_EXPRS)
@pytest.mark.benchmark(group="E-sessions")
def test_session_roundtrip(benchmark, paper_session, expr):
    out = benchmark(paper_session.eval_lines, expr)
    assert isinstance(out, list)


@pytest.mark.benchmark(group="E-parse")
def test_parse_throughput(benchmark, paper_session):
    def run():
        return [paper_session.compile(e) for e in SESSION_EXPRS]

    nodes = benchmark(run)
    assert len(nodes) == len(SESSION_EXPRS)
