"""Tracing overhead on the P3 hot path.

The observability layer touches the evaluator in exactly two places:
one ``if self.tracer is None`` predicate in ``Evaluator.eval`` (per
node activation) and one increment-plus-predicate in
``TracingBackend.get_target_bytes`` (per target read).  This
benchmark runs the paper's P3 query ``x[..1000] !=? 0`` three ways:

* ``trace_off``     — the shipped configuration (tracer detached);
* ``no_trace_hook`` — the tracer branch edited out of ``eval`` and
  the raw backend restored: what the evaluator would cost if the
  observability layer had never been added;
* ``trace_on``      — a :class:`~repro.obs.trace.QueryTracer` with an
  in-memory ring sink attached, spans and events both recorded.

The smoke test asserts the *off* cost stays under the 5% target (with
margin for timer noise) — the same discipline ``bench_governor.py``
applies to the step accounting.  ``trace_on`` has no assertion here;
its CI gate (≤2x) lives in ``benchmarks/emit_json.py``.
"""

import time

import pytest

from conftest import make_array_session

from repro.core.errors import DuelError
from repro.obs.trace import QueryTracer, RingBufferSink

EXPR = "x[..1000] !=? 0"


@pytest.fixture(scope="module")
def traced_off_session():
    return make_array_session(1000, symbolic=False)


@pytest.fixture(scope="module")
def no_hook_session():
    """The evaluator with the tracer branch compiled out entirely."""
    session = make_array_session(1000, symbolic=False)
    ev = session.evaluator
    # Restore the pre-observability eval: dispatch straight into the
    # counted handler, no tracer predicate, no TracingBackend wrapper.
    ev.backend = ev.backend.inner

    def bare_eval(node):
        handler = ev._dispatch.get(type(node))
        if handler is None:
            raise DuelError(f"no evaluator for {node.op}")
        return ev._counted(handler(node))

    ev.eval = bare_eval
    return session


@pytest.fixture(scope="module")
def traced_on_session():
    return make_array_session(1000, symbolic=False)


def _eval_traced(session, text):
    node = session.compile(text)
    session.evaluator.reset()
    tracer = QueryTracer(RingBufferSink())
    tracer.begin(node, text)
    session.evaluator.set_tracer(tracer)
    try:
        return list(session.evaluator.eval(node))
    finally:
        tracer.finish()
        session.evaluator.set_tracer(None)


@pytest.mark.benchmark(group="trace-overhead")
def test_trace_off(benchmark, traced_off_session):
    out = benchmark(traced_off_session.eval, EXPR)
    assert len(out) > 900  # almost all seeded values are non-zero


@pytest.mark.benchmark(group="trace-overhead")
def test_no_trace_hook(benchmark, no_hook_session):
    out = benchmark(no_hook_session.eval, EXPR)
    assert len(out) > 900


@pytest.mark.benchmark(group="trace-overhead")
def test_trace_on(benchmark, traced_on_session):
    out = benchmark(_eval_traced, traced_on_session, EXPR)
    assert len(out) > 900


def test_trace_off_overhead_smoke(traced_off_session, no_hook_session):
    """The disabled tracer must stay invisible: target <5% on P3,
    asserted at a looser bound so scheduler noise can't flake the
    suite."""
    def best_of(session, repeats=7):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            session.eval(EXPR)
            timings.append(time.perf_counter() - start)
        return min(timings)

    best_of(traced_off_session, repeats=2)       # warm both paths
    best_of(no_hook_session, repeats=2)
    traced = best_of(traced_off_session)
    baseline = best_of(no_hook_session)
    overhead = traced / baseline - 1.0
    assert overhead < 0.15, (
        f"tracing-off overhead {overhead:.1%} on P3 (target <5%)")


class _NullStream:
    """Swallows output (and qlog flushes) without allocating."""

    def write(self, text):
        pass

    def flush(self):
        pass


def _pre_obs_duel(session, text, stream):
    """``session.duel`` as it was before the query log and flight
    recorder existed: same parse/trace/drive/finish skeleton, but no
    qlog predicate, no recorder predicate, no ``_observe_query``."""
    from time import perf_counter_ns
    session.governor.begin_query()
    session.last_query_stats = {}
    t0 = perf_counter_ns()
    node = session.compile(text)
    parse_ns = perf_counter_ns() - t0
    session._record(text)
    tracer = session._attach_tracer(node, text)
    session._checkpoint_for(node)
    session.evaluator.reset()
    baseline = session._stats_baseline()
    drive_t0 = perf_counter_ns()
    try:
        for line in session._lines(node):
            stream.write(line + "\n")
    finally:
        session._finish_query(tracer, baseline, parse_ns,
                              perf_counter_ns() - drive_t0)


@pytest.fixture(scope="module")
def qlog_off_session():
    return make_array_session(1000, symbolic=False)


@pytest.fixture(scope="module")
def pre_obs_session():
    return make_array_session(1000, symbolic=False)


@pytest.fixture(scope="module")
def qlog_on_session():
    from repro.obs.qlog import QueryLog
    session = make_array_session(1000, symbolic=False)
    session.qlog = QueryLog(_NullStream())
    return session


@pytest.mark.benchmark(group="qlog-overhead")
def test_qlog_off(benchmark, qlog_off_session):
    benchmark(qlog_off_session.duel, EXPR, out=_NullStream())


@pytest.mark.benchmark(group="qlog-overhead")
def test_pre_obs_duel(benchmark, pre_obs_session):
    benchmark(_pre_obs_duel, pre_obs_session, EXPR, _NullStream())


@pytest.mark.benchmark(group="qlog-overhead")
def test_qlog_on(benchmark, qlog_on_session):
    benchmark(qlog_on_session.duel, EXPR, out=_NullStream())


def test_qlog_off_overhead_smoke(qlog_off_session, pre_obs_session):
    """With the query log and flight recorder off, the full ``duel``
    drive must cost what it cost before they existed: target <5% on
    P3, asserted at a looser bound so timer noise can't flake CI.
    The off-state cost is two ``is not None`` predicates per query."""
    assert qlog_off_session.qlog is None
    assert qlog_off_session.recorder is None

    def best_of(fn, repeats=7):
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        return min(timings)

    stream = _NullStream()
    current = lambda: qlog_off_session.duel(EXPR, out=stream)
    pre_obs = lambda: _pre_obs_duel(pre_obs_session, EXPR, stream)
    best_of(current, repeats=2)                  # warm both paths
    best_of(pre_obs, repeats=2)
    overhead = best_of(current) / best_of(pre_obs) - 1.0
    assert overhead < 0.15, (
        f"qlog-off duel overhead {overhead:.1%} on P3 (target <5%)")


def test_trace_on_records_the_whole_query(traced_on_session):
    """Sanity: the traced run sees every value the query produced."""
    session = traced_on_session
    node = session.compile(EXPR)
    session.evaluator.reset()
    tracer = QueryTracer(RingBufferSink())
    tracer.begin(node, EXPR)
    session.evaluator.set_tracer(tracer)
    try:
        values = list(session.evaluator.eval(node))
    finally:
        tracer.finish()
        session.evaluator.set_tracer(None)
    root = tracer.span_for(node)
    assert len(values) > 900
    assert root.yields == len(values)
    assert root.pulls == len(values) + 1      # final exhausted pull
    assert tracer.total_ns() > 0
