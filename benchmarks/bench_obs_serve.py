"""Observability cost on the serving path (PR 8's <5% gate).

One question, one artifact section: what does the PR 8 observability
stack — request traces, statement fingerprinting/aggregation, slow
query detection — cost a serving fleet, measured against the PR 7
configuration (no statements table, no trace log) on the paper's P3
workload?  Three server configurations run simultaneously, one
single-query-at-a-time client each, with queries interleaved
round-robin across them so CPU-frequency and cache drift hits every
configuration equally and cancels in the ratio:

* **plain** — ``DuelServer`` with ``statements=None, tracelog=None``:
  the PR 7 serving path, byte-for-byte (trace_ids are still assigned
  and echoed — that is protocol behavior — but no spans are recorded).
* **observed** — statements table aggregating every query, a JSONL
  trace log head-sampling 1-in-``--sample`` (default 10, the
  production shape), ``--slow-ms`` armed high enough never to fire.
  This is the configuration ``duel --serve`` runs by default and the
  one the gate applies to: ``observed/plain`` p50 must stay under
  ``--max-obs-overhead`` (CI: 1.05).
* **fully_traced** — the same but sampling 1-in-1, so every query
  also runs with the engine AST tracer attached and exports its span
  tree.  Reported for honesty, *not* gated: per-node tracing is
  bounded by the PR 3 <2x gate, and nobody samples 100% in steady
  state.

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status::

    python benchmarks/bench_obs_serve.py --max-obs-overhead 1.05
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import workloads                 # noqa: E402
from repro.obs.reqtrace import TraceLog           # noqa: E402
from repro.obs.statements import StatementStats   # noqa: E402
from repro.serve.client import DuelClient         # noqa: E402
from repro.serve.server import DuelServer         # noqa: E402

#: The paper's P3 scaling workload (same as every other suite).
P3_SIZE = 1000
P3_EXPR = f"x[..{P3_SIZE}] !=? 0"

SESSION_KWARGS = {"symbolic": False}


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
        "queries": len(ordered),
    }


def closed_loop(port: int, queries: int) -> list[float]:
    """Single client, ``queries`` back-to-back P3 runs (1 warm-up)."""
    timings = []
    with DuelClient(port=port, client="bench-obs",
                    timeout=120.0) as client:
        client.duel(P3_EXPR)                       # warm-up
        for _ in range(queries):
            start = time.perf_counter()
            result = client.duel(P3_EXPR)
            elapsed = (time.perf_counter() - start) * 1000.0
            if result.outcome != "done":
                raise RuntimeError(f"bench query {result.outcome}")
            timings.append(elapsed)
    return timings


def make_server(statements=None, tracelog=None, slow_ms=None):
    return DuelServer(workloads.big_array(P3_SIZE),
                      workers=2, queue_depth=8, max_clients=4,
                      per_client=1, statements=statements,
                      tracelog=tracelog, slow_ms=slow_ms,
                      session_kwargs=dict(SESSION_KWARGS))


def interleaved(configs: dict, queries: int) -> dict:
    """Run every config's server at once and round-robin the queries.

    Back-to-back closed loops are unfair on a busy machine: the p50
    drifts several percent between runs from CPU frequency and cache
    state alone, which swamps the microsecond-scale cost being
    measured.  Interleaving one query per config per round means any
    drift hits all configurations equally and cancels in the ratio.
    """
    servers = {name: make_server(**kwargs)
               for name, kwargs in configs.items()}
    timings: dict[str, list[float]] = {name: [] for name in servers}
    clients = {}
    try:
        for name, server in servers.items():
            port = server.start()
            client = DuelClient(port=port, client=f"bench-{name}",
                                timeout=120.0)
            client.connect()
            client.duel(P3_EXPR)                   # warm-up
            clients[name] = client
        for _ in range(queries):
            for name, client in clients.items():
                start = time.perf_counter()
                result = client.duel(P3_EXPR)
                elapsed = (time.perf_counter() - start) * 1000.0
                if result.outcome != "done":
                    raise RuntimeError(
                        f"bench query {result.outcome} on {name}")
                timings[name].append(elapsed)
    finally:
        for client in clients.values():
            try:
                client.close()
            except OSError:
                pass
        for server in servers.values():
            server.stop()
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="observability overhead on the serving path")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write this suite's JSON section to FILE "
                             "(default: print only; emit_json.py "
                             "--aggregate embeds it in BENCH_8.json)")
    parser.add_argument("--queries", type=int, default=120,
                        help="closed-loop queries per configuration "
                             "(default 120)")
    parser.add_argument("--sample", type=int, default=10, metavar="N",
                        help="head-sampling rate for the observed "
                             "configuration (default 10 = 1-in-10)")
    parser.add_argument("--skip-full-trace", action="store_true",
                        help="skip the ungated 100%%-sampled reference "
                             "run")
    parser.add_argument("--max-obs-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="fail (exit 1) if observed p50 exceeds "
                             "RATIO x plain p50")
    ns = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as scratch:
        observed_stats = StatementStats()
        observed_log = TraceLog(str(Path(scratch) / "observed.jsonl"),
                                sample=ns.sample)
        configs = {
            "plain": {},
            "observed": {"statements": observed_stats,
                         "tracelog": observed_log,
                         "slow_ms": 60_000.0},
        }
        full_log = None
        if not ns.skip_full_trace:
            full_log = TraceLog(str(Path(scratch) / "full.jsonl"),
                                sample=1)
            configs["fully_traced"] = {"statements": StatementStats(),
                                       "tracelog": full_log,
                                       "slow_ms": 60_000.0}
        timings = interleaved(configs, ns.queries)

    plain = quantiles(timings["plain"])
    observed = quantiles(timings["observed"])
    observed["fingerprints"] = len(observed_stats)
    observed["recorded"] = observed_stats.state()["recorded"]
    observed["traces_exported"] = observed_log.exported
    full = None
    if full_log is not None:
        full = quantiles(timings["fully_traced"])
        full["traces_exported"] = full_log.exported

    ratio = round(observed["p50_ms"] / plain["p50_ms"], 3)
    report = {
        "schema": "repro-bench/8-obs-serve",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {"expr": P3_EXPR, "array": P3_SIZE},
        "sample": ns.sample,
        "plain": plain,
        "observed": observed,
        "ratio": ratio,
    }
    if full is not None:
        report["fully_traced"] = full
        report["fully_traced_ratio"] = round(
            full["p50_ms"] / plain["p50_ms"], 3)
    if ns.out:
        Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"observability overhead on P3 (single client, "
          f"1-in-{ns.sample} sampling): {ratio:.2f}x "
          f"(plain p50 {plain['p50_ms']:.3f}ms, "
          f"observed p50 {observed['p50_ms']:.3f}ms)")
    if full is not None:
        print(f"fully traced (1-in-1, ungated): "
              f"{report['fully_traced_ratio']:.2f}x")
    if ns.out:
        print(f"wrote {ns.out}")

    if ns.max_obs_overhead is not None and ratio > ns.max_obs_overhead:
        print(f"FAIL: observability overhead {ratio:.2f}x exceeds "
              f"--max-obs-overhead {ns.max_obs_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
