"""P3 — symbolic-value overhead ablation.

Paper §Implementation: "In most cases, the computation of the symbolic
value is more expensive than computing the result ... in
x[..1000] !=? 0, the symbolic expression x[i] is computed 1000 times,
even though it might be printed only once.  This kind of overhead is
noticeable in complex queries."

We run the paper's exact query with symbolic tracking on and off; the
measured ratio appears in EXPERIMENTS.md.  Rendering (the print side)
is benchmarked separately — the lazy symbolic trees defer most of the
string work to display time.
"""

import pytest

from conftest import make_array_session

EXPR = "x[..1000] !=? 0"


@pytest.fixture(scope="module")
def symbolic_session():
    return make_array_session(1000, symbolic=True)


@pytest.fixture(scope="module")
def plain_session():
    return make_array_session(1000, symbolic=False)


@pytest.mark.benchmark(group="P3-symbolic")
def test_with_symbolic(benchmark, symbolic_session):
    out = benchmark(symbolic_session.eval, EXPR)
    assert len(out) > 900  # almost all seeded values are non-zero


@pytest.mark.benchmark(group="P3-symbolic")
def test_without_symbolic(benchmark, plain_session):
    out = benchmark(plain_session.eval, EXPR)
    assert len(out) > 900


@pytest.mark.benchmark(group="P3-render")
def test_render_all_lines(benchmark, symbolic_session):
    """Full display cost: evaluate + render every output line."""
    out = benchmark(symbolic_session.eval_lines, EXPR)
    assert out[0].startswith("x[")


@pytest.mark.benchmark(group="P3-render")
def test_render_is_lazy_until_printed(benchmark, symbolic_session):
    """Evaluating without rendering skips the string construction the
    paper identifies as wasted work when values are never printed."""
    def run():
        return sum(1 for _ in symbolic_session.ieval(EXPR))

    count = benchmark(run)
    assert count > 900
