"""P5 — the paper's implementation-size table, regenerated for this
reproduction.

Paper §Implementation gives the original's C line counts:

    duel_eval + associated functions       ~400
    search stacks, aliases, etc.           ~300
    operator application / Value           ~1200
    debugger interface module              ~400
      (30 command + 100 type conversion + 100 symbol table
       + 70 target access + 100 misc)

This "benchmark" computes the equivalent inventory of the Python
reproduction and prints both side by side.  (Timed trivially so it
slots into the same pytest-benchmark run.)
"""

from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: paper component -> (paper C lines, our modules)
MAPPING = {
    "evaluator (duel_eval)": (400, ["core/eval.py", "core/statemachine.py"]),
    "stacks/aliases/etc.": (300, ["core/scope.py", "core/symbolic.py",
                                  "core/values.py"]),
    "operator application": (1200, ["core/ops.py", "ctype/convert.py",
                                    "ctype/encode.py"]),
    "debugger interface": (400, ["target/interface.py",
                                 "target/gdbadapter.py"]),
    "parser + lexer": (None, ["core/parser.py", "core/lexer.py",
                              "core/nodes.py"]),
    "display": (None, ["core/format.py", "core/session.py"]),
    "beyond the paper": (None, ["core/optimize.py", "debugger/debugger.py",
                                "target/snapshot.py", "cli.py"]),
}


def count_loc(relpath: str) -> int:
    """Non-blank, non-comment-only source lines."""
    total = 0
    for line in (SRC / relpath).read_text().splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            total += 1
    return total


def build_inventory():
    rows = []
    for component, (paper_lines, modules) in MAPPING.items():
        ours = sum(count_loc(m) for m in modules)
        rows.append({"component": component, "paper_c": paper_lines,
                     "ours_py": ours, "modules": modules})
    return rows


def test_inventory_table(capsys):
    rows = build_inventory()
    with capsys.disabled():
        print()
        print("P5 implementation inventory (paper C lines vs this repo)")
        print(f"{'component':<26}{'paper C':>9}{'ours py':>9}  modules")
        for row in rows:
            paper = row["paper_c"] if row["paper_c"] else "-"
            print(f"{row['component']:<26}{paper:>9}{row['ours_py']:>9}"
                  f"  {', '.join(row['modules'])}")
    # The reproduction should be the same order of magnitude as the
    # original per component (Python is denser than C).
    for row in rows:
        if row["paper_c"]:
            assert row["ours_py"] < row["paper_c"] * 3


@pytest.mark.benchmark(group="P5-inventory")
def test_inventory_benchmark(benchmark):
    rows = benchmark(build_inventory)
    assert len(rows) == len(MAPPING)
