"""P6 — the paper's watchpoint caveat, made measurable.

Paper §Implementation: "A faster implementation would be required if
Duel expressions were used in watchpoints and conditional breakpoints"
— evaluation-time type checking and symbol lookup make per-statement
DUEL evaluation expensive.  The Debugger built here (the paper's
§Discussion wish list) lets us quantify exactly that: the same mini-C
program run bare, with a scalar watchpoint, with a generator
watchpoint, and with sampled checking.
"""

import pytest

from repro.debugger import Debugger

PROGRAM = r"""
int total = 0;
int a[64];
int main(void) {
    int i;
    for (i = 0; i < 200; i++) {
        a[i % 64] = i;
        total = total + i;
    }
    return total;
}
"""


def run_with(configure):
    dbg = Debugger(PROGRAM)
    configure(dbg)
    status = dbg.run()
    assert status == 19900
    return dbg


@pytest.mark.benchmark(group="P6-watchpoints")
def test_bare_run(benchmark):
    dbg = benchmark(run_with, lambda dbg: None)
    assert dbg.condition_evals == 0


@pytest.mark.benchmark(group="P6-watchpoints")
def test_scalar_watchpoint(benchmark):
    dbg = benchmark(run_with, lambda dbg: dbg.watch("total"))
    assert dbg.condition_evals > 0


@pytest.mark.benchmark(group="P6-watchpoints")
def test_generator_watchpoint(benchmark):
    """The expensive case the paper warns about: a whole-array query
    re-evaluated at every statement."""
    dbg = benchmark(run_with, lambda dbg: dbg.watch("#/(a[..64] >? 100)"))
    assert dbg.condition_evals > 0


@pytest.mark.benchmark(group="P6-watchpoints")
def test_sampled_generator_watchpoint(benchmark):
    """Sampling every 32 statements: the mitigation knob."""
    def configure(dbg):
        dbg.check_interval = 32
        dbg.watch("#/(a[..64] >? 100)")

    dbg = benchmark(run_with, configure)
    assert dbg.condition_evals > 0


@pytest.mark.benchmark(group="P6-breakpoints")
def test_conditional_breakpoint_overhead(benchmark):
    def configure(dbg):
        dbg.break_at("main", condition="total > 10")

    dbg = benchmark(run_with, configure)
    assert dbg.condition_evals >= 1
