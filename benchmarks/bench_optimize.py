"""P7 — compile-time folding ablation (paper future work, implemented).

Paper §Implementation: "For many Duel expressions, run-time type
checking and symbol lookup could be done at compile time using
type-inference techniques."  The constant-folding pass
(`repro.core.optimize`) is the symbol-free fragment of that programme;
this benchmark measures what it buys on expressions whose operands are
re-evaluated once per generated value.
"""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.bench.workloads import big_array

#: The right operand 2*50+400 is re-evaluated for every element of x
#: without folding; folded, it is a single constant.
EXPR = "x[..5000] >? 2*50+400"


@pytest.fixture(scope="module")
def plain():
    return DuelSession(SimulatorBackend(big_array(5000)))


@pytest.fixture(scope="module")
def optimized():
    return DuelSession(SimulatorBackend(big_array(5000)), optimize=True)


@pytest.mark.benchmark(group="P7-folding")
def test_unfolded(benchmark, plain):
    out = benchmark(plain.eval, EXPR)
    assert out


@pytest.mark.benchmark(group="P7-folding")
def test_folded(benchmark, optimized):
    out = benchmark(optimized.eval, EXPR)
    assert out


def test_same_answers(plain, optimized):
    assert plain.eval_values(EXPR) == optimized.eval_values(EXPR)


@pytest.mark.benchmark(group="P7-compile")
def test_fold_pass_cost(benchmark, optimized):
    """The pass itself is cheap relative to evaluation."""
    node = benchmark(optimized.compile, EXPR)
    assert node is not None
