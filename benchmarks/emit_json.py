"""Emit benchmark profiles as a machine-readable artifact.

Runs a fixed set of paper workloads against the generator engine and
writes per-workload latency quantiles (p50/p95 over repeated runs),
generator step counts, and target-read counts as JSON — the
``BENCH_3.json`` artifact CI uploads so profile regressions can be
diffed across commits instead of eyeballed in pytest-benchmark
tables.  The P3 workload is additionally run with a tracer attached;
the ratio of traced to untraced p50 latency is the *trace overhead*,
gated at ``--max-trace-overhead`` (CI default: 2.0).

**The bench artifact convention.**  Each PR that changes a perf
surface commits one ``BENCH_<PR>.json`` at the repo root, named by
the PR that introduced it and carrying ``"schema": "repro-bench/<PR>"``.
Early PRs emitted per-suite artifacts from their own scripts
(``bench_serve.py``, ``bench_chaos.py``, ``bench_journal.py``) and
some were never committed — CHANGES.md records BENCH_5/BENCH_7 that
exist nowhere, so the perf trajectory had silent holes.  From PR 8 on
the committed artifact is the **aggregate**: ``--aggregate`` runs
*every* suite (core profiles + serve + chaos + journal + obs-serve)
and embeds each suite's full report under ``"suites"``, so one file
per PR carries the whole perf story and a missing suite is a loud
KeyError in CI rather than a quietly absent file.  PR 9 adds the
``access`` suite (the memory-observatory off-overhead gate); PR 10
adds ``pagecache`` (read-reduction, off-path cost, and coherence
gates for the target page cache).

Usage::

    python benchmarks/emit_json.py --out BENCH_3.json     # core only
    python benchmarks/emit_json.py --workload p3_array --repeats 15
    python benchmarks/emit_json.py --max-trace-overhead 2.0  # exit 1 on breach
    python benchmarks/emit_json.py --aggregate --out BENCH_10.json
    python benchmarks/emit_json.py --aggregate --quick    # CI smoke

Standalone on purpose (argparse, not pytest): CI calls it directly and
keys a job failure off the exit status.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DuelSession, SimulatorBackend          # noqa: E402
from repro.bench import workloads                        # noqa: E402
from repro.obs.trace import QueryTracer, RingBufferSink  # noqa: E402

#: name -> (session builder arg, query).  ``p3_array`` is the paper's
#: P3 scaling query; the rest are the worked-session shapes.
PROFILES = {
    "p3_array": ("big_array:1000", "x[..1000] !=? 0"),
    "hash_scan": ("hash", "(hash[..1024] !=? 0)->scope >? 5"),
    "hash_chase": ("hash", "hash[0]-->next->scope"),
    "head_walk": ("head_list", "head-->next->value"),
    "tree_dfs": ("tree", "#/(root-->(left,right))"),
    "constants": ("empty", "(1..3)+(5,9)"),
}

TRACED_PROFILE = "p3_array"


def build_session(spec: str) -> DuelSession:
    if spec == "empty":
        from repro.target.program import TargetProgram
        return DuelSession(SimulatorBackend(TargetProgram()),
                           symbolic=False)
    if spec.startswith("big_array:"):
        n = int(spec.split(":", 1)[1])
        return DuelSession(SimulatorBackend(workloads.big_array(n)),
                           symbolic=False)
    return DuelSession(SimulatorBackend(workloads.build_workload(spec)),
                       symbolic=False)


def time_runs(fn, repeats: int) -> list[float]:
    """Wall-clock milliseconds of ``fn()`` over ``repeats`` runs
    (after one warm-up run)."""
    fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def quantiles(timings: list[float]) -> dict:
    ordered = sorted(timings)
    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": round(ordered[min(len(ordered) - 1,
                                    int(0.95 * len(ordered)))], 4),
        "min_ms": round(ordered[0], 4),
        "runs": len(ordered),
    }


def profile_workload(name: str, repeats: int) -> dict:
    spec, expr = PROFILES[name]
    session = build_session(spec)
    timings = time_runs(lambda: session.eval(expr), repeats)
    # One counted run for the resource profile.
    backend = session.evaluator.backend
    reads_before = backend.reads
    values = session.eval(expr)
    entry = {
        "workload": name,
        "expr": expr,
        "values": len(values),
        "steps": session.governor.steps,
        "target_reads": backend.reads - reads_before,
        **quantiles(timings),
    }
    return entry


def trace_overhead(repeats: int) -> dict:
    """Traced vs untraced p50 on the P3 workload (same session shape
    the ``bench_trace.py`` smoke uses)."""
    spec, expr = PROFILES[TRACED_PROFILE]
    plain = build_session(spec)
    traced = build_session(spec)
    node = traced.compile(expr)

    def run_traced():
        traced.evaluator.reset()
        tracer = QueryTracer(RingBufferSink())
        tracer.begin(node, expr)
        traced.evaluator.set_tracer(tracer)
        try:
            return list(traced.evaluator.eval(node))
        finally:
            tracer.finish()
            traced.evaluator.set_tracer(None)

    plain_ms = statistics.median(
        time_runs(lambda: plain.eval(expr), repeats))
    traced_ms = statistics.median(time_runs(run_traced, repeats))
    return {
        "workload": TRACED_PROFILE,
        "expr": expr,
        "untraced_p50_ms": round(plain_ms, 4),
        "traced_p50_ms": round(traced_ms, 4),
        "overhead_ratio": round(traced_ms / plain_ms, 3),
    }


#: The aggregate's suite registry: section name -> (module in this
#: directory, default argv, quick argv for CI smoke runs).  A new
#: bench suite earns its place in BENCH_<PR>.json by adding one row.
SUITES = {
    "serve": ("bench_serve",
              ["--clients", "1", "--clients", "4", "--queries", "80",
               "--repeats", "20", "--max-serve-overhead", "1.25"],
              ["--clients", "1", "--queries", "8", "--repeats", "3"]),
    "chaos": ("bench_chaos",
              ["--queries", "80", "--trials", "10",
               "--max-guard-overhead", "1.05"],
              ["--queries", "8", "--trials", "2"]),
    "journal": ("bench_journal",
                ["--queries", "80", "--writes", "40",
                 "--max-journal-overhead", "1.05"],
                ["--queries", "8", "--writes", "4"]),
    "obs_serve": ("bench_obs_serve",
                  ["--queries", "60", "--max-obs-overhead", "1.05"],
                  ["--queries", "6", "--skip-full-trace"]),
    "access": ("bench_access",
               ["--queries", "60", "--max-access-overhead", "1.05"],
               ["--queries", "6"]),
    "pagecache": ("bench_pagecache",
                  ["--queries", "40", "--writes", "50",
                   "--min-read-reduction", "5",
                   "--max-off-overhead", "1.05"],
                  ["--queries", "4", "--writes", "5",
                   "--min-read-reduction", "5"]),
}


def aggregate(ns) -> int:
    """Run every suite and write one combined artifact (``--aggregate``).

    Each suite keeps its own standalone CLI for CI gating; here each
    is invoked in-process with its ``--out`` pointed at a scratch
    file, and the parsed report becomes one section under ``suites``.
    A suite that fails (nonzero exit) fails the aggregate — no
    silently missing sections.
    """
    import importlib
    import tempfile

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    names = ns.workload or sorted(PROFILES)
    suites = {"core": {
        "schema": "repro-bench/3",
        "workloads": [profile_workload(name,
                                       3 if ns.quick else ns.repeats)
                      for name in names],
        "trace": trace_overhead(3 if ns.quick else ns.repeats),
    }}
    overhead = suites["core"]["trace"]["overhead_ratio"]
    if ns.max_trace_overhead is not None \
            and overhead > ns.max_trace_overhead:
        print(f"FAIL: trace overhead {overhead:.2f}x exceeds "
              f"--max-trace-overhead {ns.max_trace_overhead:.2f}x",
              file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="bench-agg-") as scratch:
        for section, (module_name, argv, quick_argv) in SUITES.items():
            module = importlib.import_module(module_name)
            out = Path(scratch) / f"{section}.json"
            args = list(quick_argv if ns.quick else argv)
            print(f"--- {section} ({module_name}) ---")
            status = module.main(["--out", str(out), *args])
            if status != 0:
                print(f"FAIL: suite {section} exited {status}",
                      file=sys.stderr)
                return status
            suites[section] = json.loads(out.read_text())
    report = {
        "schema": "repro-bench/10",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": bool(ns.quick),
        "suites": suites,
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {ns.out} ({len(suites)} suites)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="emit benchmark profiles as JSON")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_3.json, or "
                             "BENCH_10.json with --aggregate)")
    parser.add_argument("--workload", action="append", default=[],
                        choices=sorted(PROFILES),
                        help="profile only these workloads (repeatable; "
                             "default: all)")
    parser.add_argument("--repeats", type=int, default=11,
                        help="timed runs per workload (default 11)")
    parser.add_argument("--aggregate", action="store_true",
                        help="run every bench suite (core + serve + "
                             "chaos + journal + obs-serve + access + "
                             "pagecache) and write one combined "
                             "artifact")
    parser.add_argument("--quick", action="store_true",
                        help="with --aggregate: minimal run counts, "
                             "for smoke-testing the harness itself")
    parser.add_argument("--max-trace-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="fail (exit 1) if traced/untraced p50 on "
                             "the P3 workload exceeds RATIO")
    ns = parser.parse_args(argv)

    if ns.aggregate:
        if ns.out is None:
            ns.out = "BENCH_10.json"
        return aggregate(ns)
    if ns.out is None:
        ns.out = "BENCH_3.json"
    names = ns.workload or sorted(PROFILES)
    report = {
        "schema": "repro-bench/3",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": [profile_workload(name, ns.repeats)
                      for name in names],
        "trace": trace_overhead(ns.repeats),
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["workloads"]:
        print(f"{entry['workload']:12} p50={entry['p50_ms']:8.3f}ms "
              f"p95={entry['p95_ms']:8.3f}ms steps={entry['steps']:7} "
              f"reads={entry['target_reads']}")
    overhead = report["trace"]["overhead_ratio"]
    print(f"trace overhead on {TRACED_PROFILE}: {overhead:.2f}x")
    print(f"wrote {ns.out}")

    if ns.max_trace_overhead is not None \
            and overhead > ns.max_trace_overhead:
        print(f"FAIL: trace overhead {overhead:.2f}x exceeds "
              f"--max-trace-overhead {ns.max_trace_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
