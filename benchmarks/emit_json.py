"""Emit benchmark profiles as a machine-readable artifact.

Runs a fixed set of paper workloads against the generator engine and
writes per-workload latency quantiles (p50/p95 over repeated runs),
generator step counts, and target-read counts as JSON — the
``BENCH_3.json`` artifact CI uploads so profile regressions can be
diffed across commits instead of eyeballed in pytest-benchmark
tables.  The P3 workload is additionally run with a tracer attached;
the ratio of traced to untraced p50 latency is the *trace overhead*,
gated at ``--max-trace-overhead`` (CI default: 2.0).

Usage::

    python benchmarks/emit_json.py --out BENCH_3.json
    python benchmarks/emit_json.py --workload p3_array --repeats 15
    python benchmarks/emit_json.py --max-trace-overhead 2.0  # exit 1 on breach

Standalone on purpose (argparse, not pytest): CI calls it directly and
keys a job failure off the exit status.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DuelSession, SimulatorBackend          # noqa: E402
from repro.bench import workloads                        # noqa: E402
from repro.obs.trace import QueryTracer, RingBufferSink  # noqa: E402

#: name -> (session builder arg, query).  ``p3_array`` is the paper's
#: P3 scaling query; the rest are the worked-session shapes.
PROFILES = {
    "p3_array": ("big_array:1000", "x[..1000] !=? 0"),
    "hash_scan": ("hash", "(hash[..1024] !=? 0)->scope >? 5"),
    "hash_chase": ("hash", "hash[0]-->next->scope"),
    "head_walk": ("head_list", "head-->next->value"),
    "tree_dfs": ("tree", "#/(root-->(left,right))"),
    "constants": ("empty", "(1..3)+(5,9)"),
}

TRACED_PROFILE = "p3_array"


def build_session(spec: str) -> DuelSession:
    if spec == "empty":
        from repro.target.program import TargetProgram
        return DuelSession(SimulatorBackend(TargetProgram()),
                           symbolic=False)
    if spec.startswith("big_array:"):
        n = int(spec.split(":", 1)[1])
        return DuelSession(SimulatorBackend(workloads.big_array(n)),
                           symbolic=False)
    return DuelSession(SimulatorBackend(workloads.build_workload(spec)),
                       symbolic=False)


def time_runs(fn, repeats: int) -> list[float]:
    """Wall-clock milliseconds of ``fn()`` over ``repeats`` runs
    (after one warm-up run)."""
    fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def quantiles(timings: list[float]) -> dict:
    ordered = sorted(timings)
    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": round(ordered[min(len(ordered) - 1,
                                    int(0.95 * len(ordered)))], 4),
        "min_ms": round(ordered[0], 4),
        "runs": len(ordered),
    }


def profile_workload(name: str, repeats: int) -> dict:
    spec, expr = PROFILES[name]
    session = build_session(spec)
    timings = time_runs(lambda: session.eval(expr), repeats)
    # One counted run for the resource profile.
    backend = session.evaluator.backend
    reads_before = backend.reads
    values = session.eval(expr)
    entry = {
        "workload": name,
        "expr": expr,
        "values": len(values),
        "steps": session.governor.steps,
        "target_reads": backend.reads - reads_before,
        **quantiles(timings),
    }
    return entry


def trace_overhead(repeats: int) -> dict:
    """Traced vs untraced p50 on the P3 workload (same session shape
    the ``bench_trace.py`` smoke uses)."""
    spec, expr = PROFILES[TRACED_PROFILE]
    plain = build_session(spec)
    traced = build_session(spec)
    node = traced.compile(expr)

    def run_traced():
        traced.evaluator.reset()
        tracer = QueryTracer(RingBufferSink())
        tracer.begin(node, expr)
        traced.evaluator.set_tracer(tracer)
        try:
            return list(traced.evaluator.eval(node))
        finally:
            tracer.finish()
            traced.evaluator.set_tracer(None)

    plain_ms = statistics.median(
        time_runs(lambda: plain.eval(expr), repeats))
    traced_ms = statistics.median(time_runs(run_traced, repeats))
    return {
        "workload": TRACED_PROFILE,
        "expr": expr,
        "untraced_p50_ms": round(plain_ms, 4),
        "traced_p50_ms": round(traced_ms, 4),
        "overhead_ratio": round(traced_ms / plain_ms, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="emit benchmark profiles as JSON")
    parser.add_argument("--out", default="BENCH_3.json",
                        help="output path (default BENCH_3.json)")
    parser.add_argument("--workload", action="append", default=[],
                        choices=sorted(PROFILES),
                        help="profile only these workloads (repeatable; "
                             "default: all)")
    parser.add_argument("--repeats", type=int, default=11,
                        help="timed runs per workload (default 11)")
    parser.add_argument("--max-trace-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="fail (exit 1) if traced/untraced p50 on "
                             "the P3 workload exceeds RATIO")
    ns = parser.parse_args(argv)

    names = ns.workload or sorted(PROFILES)
    report = {
        "schema": "repro-bench/3",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": [profile_workload(name, ns.repeats)
                      for name in names],
        "trace": trace_overhead(ns.repeats),
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["workloads"]:
        print(f"{entry['workload']:12} p50={entry['p50_ms']:8.3f}ms "
              f"p95={entry['p95_ms']:8.3f}ms steps={entry['steps']:7} "
              f"reads={entry['target_reads']}")
    overhead = report["trace"]["overhead_ratio"]
    print(f"trace overhead on {TRACED_PROFILE}: {overhead:.2f}x")
    print(f"wrote {ns.out}")

    if ns.max_trace_overhead is not None \
            and overhead > ns.max_trace_overhead:
        print(f"FAIL: trace overhead {overhead:.2f}x exceeds "
              f"--max-trace-overhead {ns.max_trace_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
