"""Access-observatory cost on the hot path (the PR 9 <5% gate).

One question, one artifact section: what does stacking
:class:`~repro.target.interface.AccessTracingBackend` into every
session's backend chain cost a query that never asks for an access
profile?  The observatory's promise is a hot path untouched when off
(the evaluator splices the access hop out whenever no tracer is
attached); this suite measures that promise on the paper's P3
workload and gates it:

* **shipped** — a stock :class:`~repro.DuelSession`: the access
  backend is in the chain (as every session now builds it) but no
  tracer is attached.  This is the configuration every query runs in.
* **no_access_backend** — the same session with the access wrapper
  spliced *out* of the chain (the pre-PR-9 stack, reconstructed).
  ``shipped/no_access_backend`` p50 is the off-overhead, gated at
  ``--max-access-overhead`` (CI: 1.05).
* **access_on** — every query runs fully traced + profiled through
  :meth:`~repro.core.session.DuelSession.accesses`.  Reported for
  honesty, *not* gated: profiling is opt-in (the ``accesses``
  command/op or ``--access-trace`` sampling), never steady-state.

The three sessions interleave one query per round so CPU-frequency
and cache drift cancels in the ratio (same discipline as
``bench_obs_serve.py``).  The report also carries the P3 access
profile and the prefetch advisor's sweep — the artifact records not
just what the observatory costs but what it sees.

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status::

    python benchmarks/bench_access.py --max-access-overhead 1.05
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DuelSession, SimulatorBackend   # noqa: E402
from repro.bench import workloads                 # noqa: E402

#: The paper's P3 scaling workload (same as every other suite).
P3_SIZE = 1000
P3_EXPR = f"x[..{P3_SIZE}] !=? 0"


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
        "queries": len(ordered),
    }


def make_session() -> DuelSession:
    return DuelSession(SimulatorBackend(workloads.big_array(P3_SIZE)),
                       symbolic=False)


def splice_out_access_backend(session: DuelSession) -> None:
    """Reconstruct the pre-PR-9 chain: TracingBackend → Governed…

    The tracing wrapper binds its inner read/write methods at
    construction, so removing the access wrapper means rebinding
    them too — the spliced chain pays exactly the old number of
    attribute hops, which is the whole point of the comparison.
    """
    tracing = session.evaluator.backend
    access = tracing.inner
    tracing.inner = access.inner
    tracing._inner_get = tracing.inner.get_target_bytes
    tracing._inner_put = tracing.inner.put_target_bytes


def run_once(name: str, session: DuelSession) -> float:
    start = time.perf_counter()
    if name == "access_on":
        result = session.accesses(P3_EXPR)
        outcome = result["outcome"]
    else:
        session.duel(P3_EXPR, out=io.StringIO())
        outcome = "done"
    elapsed = (time.perf_counter() - start) * 1000.0
    if outcome != "done":
        raise RuntimeError(f"bench query {outcome} under {name}")
    return elapsed


def interleaved(queries: int) -> dict[str, list[float]]:
    """One query per configuration per round; drift cancels.

    The order rotates each round: ``access_on`` allocates profile
    structures whose collection can land on whichever query runs
    next, and a fixed order would bill that to one configuration
    systematically.
    """
    sessions = {"shipped": make_session(),
                "no_access_backend": make_session(),
                "access_on": make_session()}
    splice_out_access_backend(sessions["no_access_backend"])
    for name, session in sessions.items():
        run_once(name, session)                    # warm-up
    timings: dict[str, list[float]] = {name: [] for name in sessions}
    names = list(sessions)
    for round_index in range(queries):
        for offset in range(len(names)):
            name = names[(round_index + offset) % len(names)]
            timings[name].append(run_once(name, sessions[name]))
    return timings


def p3_observatory() -> dict:
    """What the observatory sees on P3: profile + advisor sweep."""
    session = make_session()
    result = session.accesses(P3_EXPR)
    profile = result["access"]
    return {
        "expr": P3_EXPR,
        "pattern": profile["pattern"],
        "reads": profile["reads"],
        "unique_pages": profile["unique_pages"],
        "page_locality": profile["page_locality"],
        "reread_ratio": profile["reread_ratio"],
        "dominant_stride": profile["dominant_stride"],
        "advisor": result["advisor"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="access-observatory hot-path cost on P3")
    parser.add_argument("--queries", type=int, default=60,
                        help="timed queries per configuration "
                             "(default 60)")
    parser.add_argument("--out", default=None,
                        help="also write the report as JSON to PATH")
    parser.add_argument("--max-access-overhead", type=float,
                        default=None, metavar="RATIO",
                        help="fail (exit 1) if shipped/no-backend p50 "
                             "exceeds RATIO (CI: 1.05)")
    ns = parser.parse_args(argv)

    timings = interleaved(ns.queries)
    configs = {name: quantiles(values)
               for name, values in timings.items()}
    off_overhead = round(configs["shipped"]["p50_ms"]
                         / configs["no_access_backend"]["p50_ms"], 4)
    on_overhead = round(configs["access_on"]["p50_ms"]
                        / configs["no_access_backend"]["p50_ms"], 4)
    report = {
        "schema": "repro-bench-access/9",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": P3_EXPR,
        "configs": configs,
        "off_overhead_ratio": off_overhead,
        "profiled_overhead_ratio": on_overhead,
        "observatory": p3_observatory(),
    }
    if ns.out:
        Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")

    for name, entry in configs.items():
        print(f"{name:18} p50={entry['p50_ms']:8.3f}ms "
              f"p95={entry['p95_ms']:8.3f}ms")
    print(f"off-overhead (shipped/no_access_backend): "
          f"{off_overhead:.3f}x")
    print(f"profiled overhead (access_on/no_access_backend): "
          f"{on_overhead:.2f}x")
    seen = report["observatory"]
    print(f"P3 observatory: {seen['pattern']}, {seen['reads']} reads, "
          f"{seen['unique_pages']} pages, best advisor "
          f"{seen['advisor'][0]['page_size']}B×"
          f"{seen['advisor'][0]['capacity']} → "
          f"{seen['advisor'][0]['hit_rate'] * 100:.1f}% hits")
    if ns.out:
        print(f"wrote {ns.out}")

    if ns.max_access_overhead is not None \
            and off_overhead > ns.max_access_overhead:
        print(f"FAIL: access off-overhead {off_overhead:.3f}x exceeds "
              f"--max-access-overhead {ns.max_access_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
