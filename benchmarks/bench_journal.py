"""Durability benchmark: journal overhead + crash-recovery latency.

Three questions, one artifact (``BENCH_7.json``):

1. **What does the durability layer cost when nothing crashes?**  The
   paper's P3 workload runs against two in-process servers: one
   stateless, one journaling to a ``--state-dir`` under the default
   ``fsync=interval:1.0`` policy.  Both servers run *simultaneously*
   and a dedicated client sends one query to each per round, order
   alternating, so machine drift lands on both sides and cancels in
   the ratio (same discipline as ``bench_obs_serve.py``).  Read
   queries never touch the journal, so this measures the machinery's
   presence on the hot path (the extra branch in the session manager,
   the checkpointer thread parked on its event); the p50 ratio is
   gated at ``--max-journal-overhead`` (CI: 1.05 — the journal must
   cost <5% on the query path).

2. **What does one committed write cost?**  A ``--commit-writes``
   loop of distinct single-cell assignments, each journaled inside
   the write lock, reported as a latency distribution (not gated —
   writes buy durability, and the paper's workloads are read-heavy).

3. **How long does recovery take?**  The durable server is crashed
   (journal poisoned, sockets torn) after committing a batch of
   writes; the wall time of booting a fresh server over the same
   state dir — checkpoint load + journal replay + session
   resurrection — is the recovery latency.

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status::

    python benchmarks/bench_journal.py --out BENCH_7.json
    python benchmarks/bench_journal.py --max-journal-overhead 1.05
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import workloads                          # noqa: E402
from repro.serve.client import DuelClient                  # noqa: E402
from repro.serve.server import DuelServer                  # noqa: E402

#: The paper's P3 scaling workload (same as ``bench_serve.py``).
P3_SIZE = 1000
P3_EXPR = f"x[..{P3_SIZE}] !=? 0"

#: Session shape shared by both server configurations.
SESSION_KWARGS = {"symbolic": False}


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "p99_ms": pick(0.99),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
    }


def closed_loop(port: int, queries: int, expr=None) -> dict:
    """One client, ``queries`` back-to-back queries."""
    latencies: list[float] = []
    with DuelClient(port=port, client="bench", timeout=120.0) as client:
        client.duel(P3_EXPR)                       # warm-up
        for i in range(queries):
            text = expr(i) if callable(expr) else P3_EXPR
            start = time.perf_counter()
            result = client.duel(text)
            elapsed = (time.perf_counter() - start) * 1000.0
            if result.outcome != "done":
                raise RuntimeError(
                    f"closed loop saw outcome {result.outcome!r}")
            latencies.append(elapsed)
    return {"queries": queries, **quantiles(latencies)}


def make_server(state_dir=None, commit_writes=False) -> DuelServer:
    return DuelServer(workloads.big_array(P3_SIZE),
                      workers=4, queue_depth=32, max_clients=8,
                      per_client=1, heartbeat_interval=0.0,
                      session_kwargs=dict(SESSION_KWARGS),
                      state_dir=state_dir,
                      journal_fsync="interval:1.0",
                      checkpoint_interval=0.0,
                      commit_writes=commit_writes)


def steady_state(queries: int, scratch: Path) -> dict:
    """Stateless vs durable, measured simultaneously.

    One query per configuration per round, order alternating, both
    servers live the whole time — machine drift (frequency scaling,
    GC pauses, noisy neighbours) hits both sides and cancels in the
    ratio instead of being billed to whichever server ran second.
    """
    servers = {"stateless": make_server(None),
               "journaled": make_server(str(scratch / "steady"))}
    timings: dict[str, list[float]] = {label: [] for label in servers}
    try:
        ports = {label: server.start()
                 for label, server in servers.items()}
        clients = {label: DuelClient(port=port,
                                     client=f"bench-{label}",
                                     timeout=120.0)
                   for label, port in ports.items()}
        try:
            for client in clients.values():
                client.duel(P3_EXPR)               # warm-up
            labels = list(clients)
            for round_index in range(queries):
                for offset in range(len(labels)):
                    label = labels[(round_index + offset) % len(labels)]
                    start = time.perf_counter()
                    result = clients[label].duel(P3_EXPR)
                    elapsed = (time.perf_counter() - start) * 1000.0
                    if result.outcome != "done":
                        raise RuntimeError(
                            f"closed loop saw outcome "
                            f"{result.outcome!r}")
                    timings[label].append(elapsed)
        finally:
            for client in clients.values():
                client.close()
    finally:
        for server in servers.values():
            server.stop()
    runs = {label: {"queries": queries, **quantiles(values)}
            for label, values in timings.items()}
    for label, run in runs.items():
        print(f"{label:>9}: p50={run['p50_ms']:8.3f}ms "
              f"p95={run['p95_ms']:8.3f}ms")
    ratio = round(runs["journaled"]["p50_ms"]
                  / runs["stateless"]["p50_ms"], 3)
    return {"stateless": runs["stateless"],
            "journaled": runs["journaled"],
            "ratio": ratio}


def write_cost(writes: int, scratch: Path) -> dict:
    """Committed-write latency under ``--commit-writes``."""
    server = make_server(str(scratch / "writes"), commit_writes=True)
    port = server.start()
    try:
        run = closed_loop(port, writes,
                          expr=lambda i: f"x[{i % P3_SIZE}] = {i}")
        appended = server.store.journal.appended
        fsyncs = server.store.journal.fsyncs
    finally:
        server.stop()
    print(f"   writes: p50={run['p50_ms']:8.3f}ms over {writes} "
          f"committed writes ({appended} journal records, "
          f"{fsyncs} fsyncs)")
    return {**run, "journal_records": appended, "fsyncs": fsyncs}


def recovery(writes: int, scratch: Path) -> dict:
    """Crash after ``writes`` commits; time the restart recovery."""
    state_dir = str(scratch / "recovery")
    server = make_server(state_dir, commit_writes=True)
    port = server.start()
    with DuelClient(port=port, client="bench", timeout=120.0) as client:
        for i in range(writes):
            result = client.duel(f"x[{i % P3_SIZE}] = {i}",
                                 idem=f"w{i}")
            if result.outcome != "done":
                raise RuntimeError(f"write {i}: {result.outcome!r}")
        client._teardown()                 # vanish, keep resumable
    server.simulate_crash()

    start = time.perf_counter()
    recovered = make_server(state_dir, commit_writes=True)
    recovered.start()
    recovery_ms = (time.perf_counter() - start) * 1000.0
    try:
        replayed = recovered.replayed_writes
        sessions = recovered.recovered_sessions
        if replayed != writes:
            raise RuntimeError(
                f"recovery replayed {replayed} of {writes} writes")
    finally:
        recovered.stop()
        server.stop()
    print(f" recovery: {recovery_ms:8.1f}ms to replay {replayed} "
          f"writes and resurrect {sessions} session(s)")
    return {"writes_journaled": writes, "writes_replayed": replayed,
            "sessions_recovered": sessions,
            "recovery_ms": round(recovery_ms, 2)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="durability benchmark of the query service")
    parser.add_argument("--out", default="BENCH_7.json",
                        help="output path (default BENCH_7.json)")
    parser.add_argument("--queries", type=int, default=120,
                        help="closed-loop queries per configuration "
                             "(default 120)")
    parser.add_argument("--writes", type=int, default=60,
                        help="committed writes for the write-cost and "
                             "recovery phases (default 60)")
    parser.add_argument("--max-journal-overhead", type=float,
                        default=None, metavar="RATIO",
                        help="fail (exit 1) if the journaled p50 "
                             "exceeds RATIO x the stateless p50")
    ns = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-journal-") as scratch:
        overhead = steady_state(ns.queries, Path(scratch))
        writes = write_cost(ns.writes, Path(scratch))
        recovered = recovery(ns.writes, Path(scratch))

    report = {
        "schema": "repro-bench/7",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {"expr": P3_EXPR, "array": P3_SIZE},
        "fsync": "interval:1.0",
        "steady_state": overhead,
        "committed_writes": writes,
        "recovery": recovered,
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"journal overhead on P3 (interleaved): "
          f"{overhead['ratio']:.2f}x "
          f"(stateless p50 {overhead['stateless']['p50_ms']:.3f}ms, "
          f"journaled p50 {overhead['journaled']['p50_ms']:.3f}ms)")
    print(f"wrote {ns.out}")

    if ns.max_journal_overhead is not None \
            and overhead["ratio"] > ns.max_journal_overhead:
        print(f"FAIL: journal overhead {overhead['ratio']:.2f}x exceeds "
              f"--max-journal-overhead {ns.max_journal_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
