"""Page-cache effectiveness and off-path cost (the PR 10 gates).

Three questions, one artifact section:

* **Does the cache batch?**  On the paper's P3 scan and the worked
  hash-table scan, the page cache must turn the evaluator's
  value-at-a-time logical reads into bulk physical reads — gated at
  ``--min-read-reduction`` (CI: 5×, measured ≥50× in practice; the
  adaptive prefetcher must also beat plain demand caching).
* **Is off really free?**  ``--page-cache off`` does not construct a
  cache at all — the backend chain is byte-identical to a stock
  session.  ``off/stock`` p50 on P3 is gated at
  ``--max-off-overhead`` (CI: 1.05, i.e. <5%).
* **Is it coherent?**  A writer session and cached reader sessions
  share one target: after every committed write the readers must see
  the new value immediately (epoch invalidation), with **zero** stale
  reads tolerated.

The latency configurations interleave one query per round with the
order rotating (same discipline as ``bench_access.py``) so drift
cancels in the ratios.

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status::

    python benchmarks/bench_pagecache.py --min-read-reduction 5 \\
        --max-off-overhead 1.05
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DuelSession, SimulatorBackend   # noqa: E402
from repro.bench import workloads                 # noqa: E402
from repro.target.pagecache import PageCachePolicy  # noqa: E402

#: The paper's P3 scaling workload plus the worked hash-table scan —
#: both regular scans, the shape the cache exists for.
P3_SIZE = 1000
SCANS = {
    "p3_array": ("big_array", f"x[..{P3_SIZE}] !=? 0"),
    "hash_scan": ("hash", "(hash[..1024] !=? 0)->scope >? 5"),
}

MODES = ("off", "demand", "adaptive")


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
        "queries": len(ordered),
    }


def build_program(spec: str):
    if spec == "big_array":
        return workloads.big_array(P3_SIZE)
    return workloads.build_workload(spec)


def make_session(spec: str, mode: str | None) -> DuelSession:
    kwargs = {}
    if mode is not None:
        kwargs["page_cache"] = mode      # "off" → no cache constructed
    return DuelSession(SimulatorBackend(build_program(spec)),
                       symbolic=False, **kwargs)


def run_once(session: DuelSession, expr: str) -> float:
    start = time.perf_counter()
    session.duel(expr, out=io.StringIO())
    return (time.perf_counter() - start) * 1000.0


def interleaved_latency(queries: int) -> dict[str, list[float]]:
    """P3 latency per configuration, one query per round, rotating.

    ``stock`` is a session built without the ``page_cache`` argument
    at all — the pre-PR-10 construction path — so ``off/stock``
    measures exactly what shipping the knob costs everyone who never
    turns it on.
    """
    spec, expr = SCANS["p3_array"]
    sessions = {"stock": make_session(spec, None),
                "off": make_session(spec, "off"),
                "demand": make_session(spec, "demand"),
                "adaptive": make_session(spec, "adaptive")}
    for session in sessions.values():
        run_once(session, expr)                    # warm-up
    timings: dict[str, list[float]] = {name: [] for name in sessions}
    names = list(sessions)
    for round_index in range(queries):
        for offset in range(len(names)):
            name = names[(round_index + offset) % len(names)]
            timings[name].append(run_once(sessions[name], expr))
    return timings


def read_traffic() -> dict:
    """Logical vs. physical reads per workload per mode (cold cache:
    fresh session, one query)."""
    report: dict = {}
    for workload, (spec, expr) in SCANS.items():
        entry: dict = {}
        for mode in MODES:
            session = make_session(spec, mode)
            session.duel(expr, out=io.StringIO())
            stats = session.last_query_stats
            logical = stats.get("reads", 0)
            physical = stats.get("physical_reads", logical)
            entry[mode] = {
                "logical_reads": logical,
                "physical_reads": physical,
                "reduction": round(logical / physical, 2)
                if physical else float(logical),
            }
            cache = session.evaluator.page_cache
            if cache is not None:
                entry[mode]["hit_rate"] = round(cache.hit_rate, 4)
                entry[mode]["prefetched_pages"] = cache.prefetched_pages
        report[workload] = entry
    return report


def coherence_hammer(writes: int) -> dict:
    """A writer and two cached readers over one shared target.

    Models the serve layer's sharing without its locks (single
    thread, so writes and reads serialize exactly): after every
    write, both readers — each with its own warm page cache — must
    read the new value.  Any stale read is a coherence bug, not a
    tolerance.
    """
    program = build_program("big_array")
    writer = DuelSession(SimulatorBackend(program),
                         page_cache="adaptive", symbolic=False)
    readers = [DuelSession(SimulatorBackend(program),
                           page_cache=PageCachePolicy(
                               mode="adaptive", page_size=64,
                               capacity=16), symbolic=False)
               for _ in range(2)]
    for session in readers:                        # warm every cache
        session.duel("x[..64]", out=io.StringIO())
    stale = 0
    reads = 0
    for value in range(1, writes + 1):
        writer.duel(f"x[7] = {value}", out=io.StringIO())
        for session in readers:
            out = io.StringIO()
            session.duel("x[7]", out=out)
            reads += 1
            text = out.getvalue().strip().splitlines()[-1]
            if int(text.split("=")[-1]) != value:
                stale += 1
    flushes = sum(session.evaluator.page_cache.flushes
                  for session in readers)
    return {"writes": writes, "reads": reads, "stale_reads": stale,
            "reader_flushes": flushes}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="page-cache read reduction, off-path cost, "
                    "coherence")
    parser.add_argument("--queries", type=int, default=40,
                        help="timed P3 queries per configuration "
                             "(default 40)")
    parser.add_argument("--writes", type=int, default=50,
                        help="coherence-hammer write rounds "
                             "(default 50)")
    parser.add_argument("--out", default=None,
                        help="also write the report as JSON to PATH")
    parser.add_argument("--min-read-reduction", type=float,
                        default=None, metavar="RATIO",
                        help="fail (exit 1) unless every scan "
                             "workload's adaptive logical/physical "
                             "ratio is at least RATIO (CI: 5)")
    parser.add_argument("--max-off-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="fail (exit 1) if off/stock p50 on P3 "
                             "exceeds RATIO (CI: 1.05)")
    ns = parser.parse_args(argv)

    timings = interleaved_latency(ns.queries)
    configs = {name: quantiles(values)
               for name, values in timings.items()}
    off_overhead = round(configs["off"]["p50_ms"]
                         / configs["stock"]["p50_ms"], 4)
    traffic = read_traffic()
    coherence = coherence_hammer(ns.writes)
    report = {
        "schema": "repro-bench-pagecache/10",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {name: expr for name, (_, expr) in SCANS.items()},
        "configs": configs,
        "off_overhead_ratio": off_overhead,
        "read_traffic": traffic,
        "coherence": coherence,
    }
    if ns.out:
        Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")

    for name, entry in configs.items():
        print(f"{name:10} p50={entry['p50_ms']:8.3f}ms "
              f"p95={entry['p95_ms']:8.3f}ms")
    print(f"off-path cost (off/stock p50): {off_overhead:.3f}x")
    for workload, entry in traffic.items():
        demand = entry["demand"]
        adaptive = entry["adaptive"]
        print(f"{workload}: {entry['off']['logical_reads']} logical → "
              f"{demand['physical_reads']} physical (demand, "
              f"{demand['reduction']:.0f}x) / "
              f"{adaptive['physical_reads']} (adaptive, "
              f"{adaptive['reduction']:.0f}x)")
    print(f"coherence: {coherence['reads']} cached reads across "
          f"{coherence['writes']} writes, "
          f"{coherence['stale_reads']} stale")
    if ns.out:
        print(f"wrote {ns.out}")

    failed = False
    if coherence["stale_reads"]:
        print(f"FAIL: coherence hammer saw "
              f"{coherence['stale_reads']} stale read(s)",
              file=sys.stderr)
        failed = True
    if ns.min_read_reduction is not None:
        for workload, entry in traffic.items():
            adaptive = entry["adaptive"]
            if adaptive["reduction"] < ns.min_read_reduction:
                print(f"FAIL: {workload} adaptive read reduction "
                      f"{adaptive['reduction']:.1f}x under "
                      f"--min-read-reduction "
                      f"{ns.min_read_reduction:.1f}x",
                      file=sys.stderr)
                failed = True
            if adaptive["physical_reads"] > \
                    entry["demand"]["physical_reads"]:
                print(f"FAIL: {workload} adaptive did more physical "
                      "reads than demand caching", file=sys.stderr)
                failed = True
    if ns.max_off_overhead is not None \
            and off_overhead > ns.max_off_overhead:
        print(f"FAIL: page-cache off-overhead {off_overhead:.3f}x "
              f"exceeds --max-off-overhead "
              f"{ns.max_off_overhead:.2f}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
