"""Closed-loop latency/throughput benchmark for the query service.

Boots an in-process :class:`DuelServer` on a loopback port, then runs
closed-loop client fleets (each client issues its next query the
moment the previous one completes) of 1, 4 and 16 clients against the
paper's P3 workload, recording per-query latency quantiles
(p50/p95/p99) and aggregate throughput.  A separate single-client
pass is compared against driving the *same* session shape in-process
— the difference is the serving overhead (protocol framing, queueing,
thread handoff), gated at ``--max-serve-overhead`` (CI: 1.25, i.e.
the wire must cost <25% on P3).

Writes the ``BENCH_5.json`` artifact CI uploads::

    python benchmarks/bench_serve.py --out BENCH_5.json
    python benchmarks/bench_serve.py --clients 1 --clients 4
    python benchmarks/bench_serve.py --max-serve-overhead 1.25

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DuelSession, SimulatorBackend   # noqa: E402
from repro.bench import workloads                 # noqa: E402
from repro.serve.client import DuelClient         # noqa: E402
from repro.serve.server import DuelServer         # noqa: E402

#: The paper's P3 scaling workload (same as ``emit_json.py``).
P3_SIZE = 1000
P3_EXPR = f"x[..{P3_SIZE}] !=? 0"

#: Session shape shared by server and in-process baseline.
SESSION_KWARGS = {"symbolic": False}


class _Null:
    def write(self, text):
        pass

    def flush(self):
        pass


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "p99_ms": pick(0.99),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
    }


def closed_loop(port: int, clients: int, per_client: int) -> dict:
    """``clients`` threads, each running ``per_client`` back-to-back
    queries; returns latency quantiles + aggregate throughput."""
    barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    failures: list[str] = []

    def loop(index: int) -> None:
        try:
            with DuelClient(port=port, client=f"bench{index}",
                            timeout=120.0) as client:
                barrier.wait()
                for _ in range(per_client):
                    start = time.perf_counter()
                    result = client.duel(P3_EXPR)
                    elapsed = (time.perf_counter() - start) * 1000.0
                    if result.outcome != "done":
                        failures.append(result.outcome)
                        return
                    latencies[index].append(elapsed)
        except Exception as error:  # pragma: no cover - bench guard
            failures.append(repr(error))

    threads = [threading.Thread(target=loop, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if failures:
        raise RuntimeError(f"closed loop failed: {failures[:3]}")
    merged = [ms for chunk in latencies for ms in chunk]
    return {
        "clients": clients,
        "queries": len(merged),
        "wall_s": round(wall, 3),
        "throughput_qps": round(len(merged) / wall, 2),
        **quantiles(merged),
    }


def inprocess_baseline(repeats: int) -> dict:
    """The same P3 query driven directly, no server in the path."""
    session = DuelSession(SimulatorBackend(workloads.big_array(P3_SIZE)),
                          **SESSION_KWARGS)
    sink = _Null()
    session.duel(P3_EXPR, out=sink)       # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        session.duel(P3_EXPR, out=sink)
        timings.append((time.perf_counter() - start) * 1000.0)
    return quantiles(timings)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop benchmark of the DUEL query service")
    parser.add_argument("--out", default="BENCH_5.json",
                        help="output path (default BENCH_5.json)")
    parser.add_argument("--clients", action="append", type=int,
                        default=[], metavar="N",
                        help="fleet sizes to run (repeatable; "
                             "default: 1 4 16)")
    parser.add_argument("--queries", type=int, default=240,
                        metavar="TOTAL",
                        help="total queries per fleet (default 240, "
                             "split across the clients)")
    parser.add_argument("--repeats", type=int, default=30,
                        help="in-process baseline runs (default 30)")
    parser.add_argument("--workers", type=int, default=8,
                        help="server worker threads (default 8)")
    parser.add_argument("--max-serve-overhead", type=float, default=None,
                        metavar="RATIO",
                        help="fail (exit 1) if single-client served p50 "
                             "exceeds RATIO x in-process p50")
    ns = parser.parse_args(argv)
    fleets = ns.clients or [1, 4, 16]

    server = DuelServer(workloads.big_array(P3_SIZE),
                        workers=ns.workers,
                        queue_depth=max(32, 2 * max(fleets)),
                        max_clients=max(fleets) + 4,
                        per_client=1,
                        session_kwargs=dict(SESSION_KWARGS))
    port = server.start()
    try:
        runs = []
        for clients in fleets:
            per_client = max(1, ns.queries // clients)
            entry = closed_loop(port, clients, per_client)
            runs.append(entry)
            print(f"{clients:3d} clients: p50={entry['p50_ms']:8.3f}ms "
                  f"p95={entry['p95_ms']:8.3f}ms "
                  f"p99={entry['p99_ms']:8.3f}ms "
                  f"{entry['throughput_qps']:8.1f} q/s")
        baseline = inprocess_baseline(ns.repeats)
        single = next((r for r in runs if r["clients"] == 1), None)
        if single is None:
            single = closed_loop(port, 1, max(1, ns.queries))
        overhead = round(single["p50_ms"] / baseline["p50_ms"], 3)
    finally:
        server.stop()

    report = {
        "schema": "repro-bench/5",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {"expr": P3_EXPR, "array": P3_SIZE},
        "closed_loop": runs,
        "overhead": {
            "inprocess_p50_ms": baseline["p50_ms"],
            "served_p50_ms": single["p50_ms"],
            "ratio": overhead,
        },
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"serve overhead on P3 (single client): {overhead:.2f}x "
          f"(in-process p50 {baseline['p50_ms']:.3f}ms, "
          f"served p50 {single['p50_ms']:.3f}ms)")
    print(f"wrote {ns.out}")

    if ns.max_serve_overhead is not None \
            and overhead > ns.max_serve_overhead:
        print(f"FAIL: serve overhead {overhead:.2f}x exceeds "
              f"--max-serve-overhead {ns.max_serve_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
