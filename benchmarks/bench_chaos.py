"""Fault-tolerance benchmark: guard overhead + recovery latency.

Two questions, one artifact (``BENCH_6.json``):

1. **What does the fault-tolerance machinery cost when nothing is
   failing?**  The paper's P3 workload runs against two in-process
   servers: one with the guard rails wound tight (heartbeats every
   0.5s, watchdog ticking at 20Hz) and one with heartbeats disabled
   and the watchdog nearly idle.  Both servers run *simultaneously*
   and a dedicated client sends one query to each per round, order
   alternating, so CPU-frequency and cache drift lands on both sides
   and cancels in the ratio (same discipline as
   ``bench_obs_serve.py``).  The p50 ratio is the steady-state
   overhead, gated at ``--max-guard-overhead`` (CI: 1.05, i.e. the
   guards must cost <5% on the query path — they do their work off
   it).

2. **How long does a client take to recover from a killed
   connection?**  A :class:`ChaosProxy` with a scripted plan drops
   every trial's first connection mid-reply; the client's
   retry/reconnect/resume machinery redials (the retried connection
   runs clean by plan design) and the query completes.  The wall time
   of that ``duel()`` call — fault, backoff, redial, session resume,
   re-execution — is the recovery time, reported as a distribution.

Standalone on purpose (argparse, not pytest): CI calls it directly
and keys a job failure off the exit status::

    python benchmarks/bench_chaos.py --out BENCH_6.json
    python benchmarks/bench_chaos.py --max-guard-overhead 1.05
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import workloads                          # noqa: E402
from repro.serve.chaos import (ChaosProxy, FaultPlan,      # noqa: E402
                               drop_after)
from repro.serve.client import DuelClient, RetryPolicy     # noqa: E402
from repro.serve.server import DuelServer                  # noqa: E402

#: The paper's P3 scaling workload (same as ``bench_serve.py``).
P3_SIZE = 1000
P3_EXPR = f"x[..{P3_SIZE}] !=? 0"

#: Session shape shared by both server configurations.
SESSION_KWARGS = {"symbolic": False}

#: Recovery trials read a modest slice so the run is dominated by the
#: recovery dance, not by evaluation.
RECOVERY_EXPR = "x[..30]"

#: Byte offset of the scripted drop: past the welcome frame (~270
#: bytes) but inside the first reply (~1.4kB), so every doomed
#: connection dies mid-conversation with a query in flight.
DROP_AT = 400


def quantiles(timings_ms: list[float]) -> dict:
    ordered = sorted(timings_ms)

    def pick(q):
        return round(ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))], 4)

    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": pick(0.95),
        "p99_ms": pick(0.99),
        "min_ms": round(ordered[0], 4),
        "max_ms": round(ordered[-1], 4),
    }


def timed_query(client: DuelClient) -> float:
    start = time.perf_counter()
    result = client.duel(P3_EXPR)
    elapsed = (time.perf_counter() - start) * 1000.0
    if result.outcome != "done":
        raise RuntimeError(f"closed loop saw outcome {result.outcome!r}")
    return elapsed


def make_server(guarded: bool) -> DuelServer:
    """The serve path with the guard rails tight or effectively off."""
    knobs = (dict(heartbeat_interval=0.5, heartbeat_timeout=5.0,
                  watchdog_tick=0.05)
             if guarded else
             dict(heartbeat_interval=0.0, heartbeat_timeout=0.0,
                  watchdog_tick=5.0))
    return DuelServer(workloads.big_array(P3_SIZE),
                      workers=4, queue_depth=32, max_clients=8,
                      per_client=1,
                      session_kwargs=dict(SESSION_KWARGS),
                      **knobs)


def steady_state(queries: int) -> dict:
    """Guarded vs unguarded, measured simultaneously.

    One query per configuration per round, order alternating, both
    servers live the whole time — so whatever the machine is doing
    (frequency scaling, a GC pause, a noisy neighbour) hits both
    sides and cancels in the ratio instead of being billed to
    whichever configuration happened to run second.
    """
    servers = {"unguarded": make_server(guarded=False),
               "guarded": make_server(guarded=True)}
    timings: dict[str, list[float]] = {label: [] for label in servers}
    try:
        ports = {label: server.start()
                 for label, server in servers.items()}
        clients = {label: DuelClient(port=port,
                                     client=f"bench-{label}",
                                     timeout=120.0)
                   for label, port in ports.items()}
        try:
            for client in clients.values():
                client.duel(P3_EXPR)               # warm-up
            labels = list(clients)
            for round_index in range(queries):
                for offset in range(len(labels)):
                    label = labels[(round_index + offset) % len(labels)]
                    timings[label].append(timed_query(clients[label]))
        finally:
            for client in clients.values():
                client.close()
    finally:
        for server in servers.values():
            server.stop()
    runs = {label: {"queries": queries, **quantiles(values)}
            for label, values in timings.items()}
    for label, run in runs.items():
        print(f"{label:>9}: p50={run['p50_ms']:8.3f}ms "
              f"p95={run['p95_ms']:8.3f}ms")
    ratio = round(runs["guarded"]["p50_ms"]
                  / runs["unguarded"]["p50_ms"], 3)
    return {"unguarded": runs["unguarded"],
            "guarded": runs["guarded"],
            "ratio": ratio}


def recovery(trials: int) -> dict:
    """Drop each trial's first connection mid-reply; time the retry.

    Connection indices through the proxy go 0, 1, 2, ... in accept
    order; each trial dials once (faulted) and redials once (clean),
    so faulting every even index makes recovery deterministic.
    """
    server = make_server(guarded=True)
    port = server.start()
    plan = {2 * t: [drop_after(DROP_AT)] for t in range(trials)}
    proxy = ChaosProxy(("127.0.0.1", port), FaultPlan.scripted(plan))
    proxy_port = proxy.start()
    timings: list[float] = []
    resumed = 0
    try:
        for t in range(trials):
            client = DuelClient(
                port=proxy_port, client=f"recov{t}", timeout=30.0,
                retry=RetryPolicy(retries=4, base=0.05, factor=2.0,
                                  max_backoff=0.5, jitter=0.0))
            start = time.perf_counter()
            result = client.duel(RECOVERY_EXPR)
            elapsed = (time.perf_counter() - start) * 1000.0
            if result.outcome != "done":
                raise RuntimeError(
                    f"trial {t}: outcome {result.outcome!r}")
            if client.reconnects < 1:
                raise RuntimeError(
                    f"trial {t}: the scripted drop never fired")
            resumed += 1 if client.resumed else 0
            timings.append(elapsed)
            client.close()
        injected = sum(1 for _i, kind, _d, _o in proxy.events
                       if kind == "drop")
    finally:
        proxy.stop()
        server.stop()
    print(f" recovery: p50={quantiles(timings)['p50_ms']:8.3f}ms over "
          f"{trials} dropped connections ({resumed} sessions resumed)")
    return {"trials": trials, "drops_injected": injected,
            "sessions_resumed": resumed, **quantiles(timings)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-tolerance benchmark of the query service")
    parser.add_argument("--out", default="BENCH_6.json",
                        help="output path (default BENCH_6.json)")
    parser.add_argument("--queries", type=int, default=120,
                        help="closed-loop queries per configuration "
                             "(default 120)")
    parser.add_argument("--trials", type=int, default=20,
                        help="recovery trials (default 20)")
    parser.add_argument("--max-guard-overhead", type=float,
                        default=None, metavar="RATIO",
                        help="fail (exit 1) if the guarded p50 exceeds "
                             "RATIO x the unguarded p50")
    ns = parser.parse_args(argv)

    overhead = steady_state(ns.queries)
    recovered = recovery(ns.trials)

    report = {
        "schema": "repro-bench/6",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": {"expr": P3_EXPR, "array": P3_SIZE},
        "steady_state": overhead,
        "recovery": recovered,
    }
    Path(ns.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"guard overhead on P3 (interleaved): "
          f"{overhead['ratio']:.2f}x "
          f"(unguarded p50 {overhead['unguarded']['p50_ms']:.3f}ms, "
          f"guarded p50 {overhead['guarded']['p50_ms']:.3f}ms)")
    print(f"wrote {ns.out}")

    if ns.max_guard_overhead is not None \
            and overhead["ratio"] > ns.max_guard_overhead:
        print(f"FAIL: guard overhead {overhead['ratio']:.2f}x exceeds "
              f"--max-guard-overhead {ns.max_guard_overhead:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
