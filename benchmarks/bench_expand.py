"""A2 — data-structure expansion: ``-->`` traversal costs and orderings.

Covers the paper's dfs expansion on long lists and wide trees, the BFS
extension, and the cost of cycle detection (the original implementation
"does not handle cycles"; ours tracks visited nodes — this measures
what that safety costs).
"""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.bench import workloads

SIZES = [100, 1_000, 5_000]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="A2-list-walk")
def test_list_walk(benchmark, n):
    session = DuelSession(SimulatorBackend(workloads.long_list(n)))

    def run():
        return session.eval(f"#/(L-->next)")

    (count,) = benchmark(run)
    assert count.value == n


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="A2-tree-dfs")
def test_tree_dfs(benchmark, n):
    session = DuelSession(SimulatorBackend(workloads.big_tree(n)))

    def run():
        return session.eval("#/(root-->(left,right))")

    (count,) = benchmark(run)
    assert count.value == n


@pytest.mark.parametrize("n", [1_000])
@pytest.mark.benchmark(group="A2-orderings")
def test_tree_bfs_extension(benchmark, n):
    session = DuelSession(SimulatorBackend(workloads.big_tree(n)))

    def run():
        return session.eval("#/(root-->>(left,right))")

    (count,) = benchmark(run)
    assert count.value == n


@pytest.mark.benchmark(group="A2-cycle-cost")
def test_cycle_detection_on_cyclic_ring(benchmark):
    """The case the original cannot handle at all: a cyclic list."""
    from repro.target.program import TargetProgram
    from repro.target import builder
    program = TargetProgram()
    builder.linked_list(program, "L", list(range(2000)), cycle_to=0)
    session = DuelSession(SimulatorBackend(program))

    def run():
        return session.eval("#/(L-->next)")

    (count,) = benchmark(run)
    assert count.value == 2000  # each node visited exactly once


@pytest.mark.benchmark(group="A2-deep-query")
def test_paper_sortedness_query_full_table(benchmark):
    """The paper's most complex query over the whole 1024-bucket table."""
    session = DuelSession(SimulatorBackend(workloads.hash_table(fill=256)))
    expr = "hash[..1024]-->next-> if (next) scope <? next->scope"

    def run():
        return session.eval(expr)

    out = benchmark(run)
    assert len(out) == 1  # only the planted violation
