"""P1 — array-search scaling: the paper's ``x[..10000] >? 0``.

Paper §Implementation: "x[..10000] >? 0 compiles and executes in about
5 seconds on a DECStation 5000."  The absolute number is hardware; the
*shape* is linear in N (one index + compare + symbolic per element).
The three sizes below regenerate the scaling series; EXPERIMENTS.md
records measured times next to the paper's single point.
"""

import pytest

from conftest import make_array_session

SIZES = [1_000, 10_000, 50_000]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="P1-scaling")
def test_array_search_scaling(benchmark, n):
    session = make_array_session(n)
    expr = f"x[..{n}] >? 0"

    def run():
        return len(session.eval(expr))

    found = benchmark(run)
    # Sanity: roughly half the seeded values are positive.
    assert 0.4 * n < found < 0.6 * n


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="P1-compile")
def test_compile_only(benchmark, n):
    """Compilation cost is size-independent (the paper compiles once)."""
    session = make_array_session(1)
    expr = f"x[..{n}] >? 0"
    node = benchmark(session.compile, expr)
    assert node is not None


@pytest.mark.benchmark(group="P1-paper-point")
def test_paper_headline_query(benchmark):
    """The paper's exact data point: 10k elements, >? 0."""
    session = make_array_session(10_000)

    def run():
        return len(session.eval("x[..10000] >? 0"))

    found = benchmark(run)
    assert found > 0
