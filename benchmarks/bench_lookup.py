"""P2 — symbol-lookup cost: the paper's ``1..100+i`` observation.

Paper §Implementation: "most of the time in evaluating 1..100+i goes
to the 100 lookups of i."  We benchmark the same expression against a
constant-only control and verify the lookup counter records exactly one
fetch of ``i`` per generated value.
"""

import pytest


@pytest.fixture(scope="module")
def aliased_session(empty_session):
    empty_session.eval("i := 5")
    return empty_session


@pytest.mark.benchmark(group="P2-lookup")
def test_with_alias_lookups(benchmark, aliased_session):
    session = aliased_session

    def run():
        return session.eval("(1..100)+i")

    out = benchmark(run)
    assert len(out) == 100


@pytest.mark.benchmark(group="P2-lookup")
def test_constant_control(benchmark, aliased_session):
    session = aliased_session

    def run():
        return session.eval("(1..100)+5")

    out = benchmark(run)
    assert len(out) == 100


def test_lookup_count_is_one_per_value(aliased_session):
    """Not a timing: pins the paper's '100 lookups' claim exactly."""
    session = aliased_session
    before = session.lookup_count
    session.eval("(1..100)+i")
    assert session.lookup_count - before == 100


@pytest.mark.benchmark(group="P2-variable")
def test_target_variable_lookups(benchmark, hash_session):
    """Looking up a target global goes through the backend each time."""
    def run():
        return hash_session.eval("(1..100) => #/(hash[0]-->next)")

    out = benchmark(run)
    assert len(out) == 100
