"""A1 — engine ablation: Python generators vs the paper's state machine.

The paper hand-compiles coroutines into an explicit state/NOVALUE
protocol because C lacks generators.  Both engines live in this
reproduction; this benchmark quantifies the control-flow overhead of
the explicit scheme relative to native generators on the operator
subset both implement.
"""

import pytest

from repro.core.statemachine import StateMachineEvaluator
from conftest import make_array_session

EXPRESSIONS = [
    "(1..3)+(5,9)",
    "(1..100)+(1,2)",
    "x[..1000] >? 0",
    "(1..20)*(1..20)",
    "((1,5)..(5,10)) + 1",
    # Structural operators (WITH/SELECT), both engines.
    "x[..100].if (_ > 500) _",
    "((1..30)*(1..30))[[5,50,500]]",
]


@pytest.fixture(scope="module")
def rig():
    session = make_array_session(1000)
    sm = StateMachineEvaluator(session.evaluator)
    nodes = [session.compile(text) for text in EXPRESSIONS]
    return session, sm, nodes


@pytest.mark.benchmark(group="A1-engines")
def test_generator_engine(benchmark, rig):
    session, _, nodes = rig

    def run():
        total = 0
        for node in nodes:
            session.evaluator.reset()
            total += sum(1 for _ in session.evaluator.eval(node))
        return total

    total = benchmark(run)
    assert total > 0


@pytest.mark.benchmark(group="A1-engines")
def test_state_machine_engine(benchmark, rig):
    session, sm, nodes = rig

    def run():
        total = 0
        for node in nodes:
            session.evaluator.reset()
            total += len(sm.drive(node))
        return total

    total = benchmark(run)
    assert total > 0


def test_engines_produce_same_counts(rig):
    session, sm, nodes = rig
    for node in nodes:
        session.evaluator.reset()
        generator = sum(1 for _ in session.evaluator.eval(node))
        session.evaluator.reset()
        machine = len(sm.drive(node))
        assert generator == machine
