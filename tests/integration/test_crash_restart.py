"""Integration: the DUEL service survives its own death.

The crash-only durability acceptance suite.  A server running with a
``--state-dir`` is killed — in-process via
:meth:`DuelServer.simulate_crash` (fast, deterministic) and for real
via a SIGKILLed subprocess — and a fresh server pointed at the same
directory must recover:

* **identical resume keys** — every parked/active session comes back
  resumable under the key its client already holds;
* **restored session state** — aliases, governor limits, and the
  idempotency cache survive the restart;
* **exactly-once writes** — committed (``--commit-writes``) queries
  are replayed in journal order; a retried idempotency token after
  the restart is answered from the recovered cache, never re-run;
* **torn tails tolerated** — a half-written final journal record is
  truncated on startup, never a refusal to start.
"""

import io
import json
import os
import threading
import time
from types import SimpleNamespace

import pytest

from repro.bench import workloads
from repro.serve.chaos import ServerProcess, tear_tail
from repro.serve.client import DuelClient, RetryPolicy, ServeError
from repro.serve.server import DuelServer, run_server

ARRAY = 120


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def fast_retry(retries=4):
    return RetryPolicy(retries=retries, base=0.2, factor=1.5,
                       max_backoff=0.5, jitter=0.0)


def make_server(state_dir, **kwargs):
    """A durable server over the deterministic big-array target."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_depth", 16)
    kwargs.setdefault("max_clients", 8)
    kwargs.setdefault("per_client", 1)
    kwargs.setdefault("drain_timeout", 5.0)
    kwargs.setdefault("heartbeat_interval", 0.0)
    kwargs.setdefault("resume_ttl", 60.0)
    kwargs.setdefault("journal_fsync", "off")
    kwargs.setdefault("checkpoint_interval", 0.0)   # manual only
    kwargs.setdefault("commit_writes", True)
    server = DuelServer(workloads.big_array(ARRAY),
                        state_dir=str(state_dir), **kwargs)
    server.start()
    return server


def connect(port, resume_key=None):
    client = DuelClient(port=port, connect=False, timeout=10.0,
                        retry=fast_retry())
    if resume_key is not None:
        client._resume_key = resume_key
    client.connect()
    return client


def last_value(result):
    assert result.lines, f"no output lines in {result!r}"
    return result.lines[-1]


class TestCrashRecovery:
    """In-process simulated crashes (no subprocess)."""

    def crash_and_restart(self, server, state_dir, **kwargs):
        server.simulate_crash()
        return make_server(state_dir, **kwargs)

    def test_resume_key_and_session_state_survive(self, tmp_path):
        server = make_server(tmp_path / "state")
        restarted = None
        try:
            client = connect(server.port)
            key = client._resume_key
            assert key
            assert client.duel("t := x[3]").ok
            client.limits("lines", 123)
            client._teardown()              # vanish, no clean bye

            restarted = self.crash_and_restart(server, tmp_path / "state")
            assert restarted.recovered_sessions == 1

            again = connect(restarted.port, resume_key=key)
            assert again.resumed
            assert again._resume_key == key
            # The alias namespace was rebuilt by replay...
            assert again.duel("t").ok
            # ...and the governor limit set before the crash holds.
            assert again.limits()["limits"]["lines"] == 123
            again.close()
        finally:
            for s in (server, restarted):
                if s is not None:
                    s.stop()

    def test_committed_writes_replayed_exactly_once(self, tmp_path):
        server = make_server(tmp_path / "state")
        restarted = None
        try:
            client = connect(server.port)
            key = client._resume_key
            result = client.duel("x[3] = 777", idem="tok-1")
            assert result.ok
            client._teardown()

            restarted = self.crash_and_restart(server, tmp_path / "state")
            assert restarted.replayed_writes == 1

            again = connect(restarted.port, resume_key=key)
            assert again.resumed
            # The write's effect was recovered...
            assert last_value(again.duel("x[3]")) == "x[3] = 777"
            # ...and retrying its token replays from the recovered
            # cache instead of running the query a second time.
            retry = again.duel("x[3] = 777", idem="tok-1")
            assert retry.ok
            assert retry.replayed
            # An increment proves single application numerically.
            assert again.duel("x[3] = x[3] + 1", idem="tok-2").ok
            assert last_value(again.duel("x[3]")) == "x[3] = 778"
            again.close()
        finally:
            for s in (server, restarted):
                if s is not None:
                    s.stop()

    def test_checkpoint_bounds_replay_and_truncates(self, tmp_path):
        server = make_server(tmp_path / "state")
        restarted = None
        try:
            client = connect(server.port)
            key = client._resume_key
            assert client.duel("x[1] = 11", idem="w1").ok
            mark = server.checkpoint()
            assert mark and mark > 0
            # The checkpoint sealed + dropped the old segments.
            assert len(server.store.journal.segments()) == 1
            assert client.duel("x[2] = 22", idem="w2").ok
            client._teardown()

            restarted = self.crash_and_restart(server, tmp_path / "state")
            # Only the post-checkpoint write needed replaying.
            assert restarted.replayed_writes == 1

            again = connect(restarted.port, resume_key=key)
            assert again.resumed
            assert last_value(again.duel("x[1]")) == "x[1] = 11"
            assert last_value(again.duel("x[2]")) == "x[2] = 22"
            again.close()
        finally:
            for s in (server, restarted):
                if s is not None:
                    s.stop()

    def test_torn_journal_tail_is_truncated_not_fatal(self, tmp_path):
        server = make_server(tmp_path / "state")
        restarted = None
        try:
            client = connect(server.port)
            key = client._resume_key
            assert client.duel("x[1] = 11", idem="w1").ok
            assert client.duel("x[2] = 22", idem="w2").ok
            client._teardown()
            server.simulate_crash()

            # A crash mid-append: the final record loses its tail.
            segments = server.store.journal.segments()
            tear_tail(segments[-1][1], 4)

            restarted = make_server(tmp_path / "state")
            assert restarted.store.journal.recovered_torn_tail
            # Everything before the torn record recovered; the state
            # is consistent even though the tail was dropped.
            assert restarted.recovered_sessions == 1
            again = connect(restarted.port, resume_key=key)
            assert again.resumed
            assert last_value(again.duel("x[1]")) == "x[1] = 11"
            again.close()
        finally:
            for s in (server, restarted):
                if s is not None:
                    s.stop()

    def test_clean_stop_checkpoints_for_fast_restart(self, tmp_path):
        server = make_server(tmp_path / "state")
        client = connect(server.port)
        key = client._resume_key
        assert client.duel("x[4] = 44", idem="w1").ok
        client._teardown()
        # Let the server notice the vanished client and park the
        # session before the drain begins (a drain-time disconnect
        # closes instead of parking).
        assert wait_until(lambda: server.sessions.parked_count() == 1)
        server.stop()                       # clean: final checkpoint

        restarted = make_server(tmp_path / "state")
        try:
            # The shutdown checkpoint covered everything: nothing to
            # replay, yet the state is all there.
            assert restarted.replayed_writes == 0
            assert restarted.recovered_sessions == 1
            again = connect(restarted.port, resume_key=key)
            assert again.resumed
            assert last_value(again.duel("x[4]")) == "x[4] = 44"
            again.close()
        finally:
            restarted.stop()

    def test_cold_start_on_empty_state_dir(self, tmp_path):
        server = make_server(tmp_path / "fresh")
        try:
            assert server.recovered_sessions == 0
            assert server.replayed_writes == 0
            client = connect(server.port)
            assert client.duel("x[..3]").ok
            client.close()
        finally:
            server.stop()

    def test_unknown_resume_key_after_restart_gets_fresh_session(
            self, tmp_path):
        server = make_server(tmp_path / "state")
        restarted = None
        try:
            client = connect(server.port)
            client.close()                  # clean bye: sess_close
            # The bye is processed asynchronously; crash only after
            # the close made it into the journal.
            assert wait_until(lambda: any(
                record["k"] == "sess_close"
                for _, record in server.store.journal.replay()))
            restarted = self.crash_and_restart(server, tmp_path / "state")
            # The closed session is not resurrected...
            assert restarted.recovered_sessions == 0
            # ...and presenting its key just yields a fresh session.
            again = connect(restarted.port,
                            resume_key=client._resume_key)
            assert not again.resumed
            assert again.duel("x[..3]").ok
            again.close()
        finally:
            for s in (server, restarted):
                if s is not None:
                    s.stop()

    def test_client_restart_window_rides_out_the_gap(self, tmp_path):
        """duel() with a restart window survives crash + restart."""
        server = make_server(tmp_path / "state")
        restarted = {}
        try:
            client = DuelClient(port=server.port, timeout=10.0,
                                retry=fast_retry(retries=6),
                                restart_window=20.0)
            key = client._resume_key
            assert client.duel("x[5] = 55", idem="w1").ok

            def restart_later():
                time.sleep(0.5)
                restarted["server"] = make_server(tmp_path / "state",
                                                  port=server.port)

            server.simulate_crash()
            flip = threading.Thread(target=restart_later)
            flip.start()
            try:
                # Issued while the port is dead: refused dials wait
                # out the restart instead of burning retries, then
                # the resumed session answers.
                result = client.duel("x[5]")
            finally:
                flip.join()
            assert result.ok
            assert last_value(result) == "x[5] = 55"
            assert client._resume_key == key
            client.close()
        finally:
            server.stop()
            if "server" in restarted:
                restarted["server"].stop()


class TestRunServerCrashDump:
    """Satellite: an unhandled main-loop exception leaves a black box."""

    def test_server_crash_dump_and_exit_code(self, tmp_path):
        class Boom:
            def is_set(self):
                return False

            def set(self):
                pass

            def wait(self, timeout=None):
                raise RuntimeError("synthetic main-loop crash")

        ns = SimpleNamespace(
            query_log=None, dump_dir=str(tmp_path / "dumps"),
            host="127.0.0.1", port=0, workers=2, queue_depth=4,
            max_clients=4, per_client=1, drain_timeout=2.0,
            metrics_port=None, no_symbolic=True, optimize=False)
        out = io.StringIO()
        code = run_server(ns, workloads.big_array(10), {}, out,
                          stop_event=Boom())
        assert code == 1
        text = out.getvalue()
        assert "fatal: RuntimeError: synthetic main-loop crash" in text
        assert "post-mortem dump:" in text
        dumps = os.listdir(tmp_path / "dumps")
        assert len(dumps) == 1
        with open(tmp_path / "dumps" / dumps[0]) as handle:
            dump = json.load(handle)
        assert dump["reason"] == "server_crash"


class TestSigkillSubprocess:
    """The end-to-end proof: a real process, a real SIGKILL."""

    SOURCE = """\
int data[32];

int main(void) {
    return 0;
}
"""

    def test_sigkill_restart_recovers_everything(self, tmp_path):
        source = tmp_path / "target.c"
        source.write_text(self.SOURCE)
        state = tmp_path / "state"
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = ServerProcess([
            str(source), "--serve", "--port", "0",
            "--state-dir", str(state), "--commit-writes",
            "--journal-fsync", "off", "--checkpoint-interval", "0",
            "--resume-ttl", "120", "--heartbeat-interval", "0",
            "--workers", "2"], timeout=60.0, env=env)
        try:
            port = proc.start()
            client = connect(port)
            key = client._resume_key
            assert client.duel("data[7] = 99", idem="tok-7").ok
            assert client.duel("t := data[7]").ok

            proc.sigkill()
            started = time.monotonic()
            new_port = proc.restart()
            recovery = time.monotonic() - started
            assert recovery < 30.0, f"recovery took {recovery:.1f}s"
            assert any("state:" in line for line in proc.stdout_lines)

            again = connect(new_port, resume_key=key)
            assert again.resumed
            assert last_value(again.duel("data[7]")) == "data[7] = 99"
            assert last_value(again.duel("t")) == "t = 99"
            retry = again.duel("data[7] = 99", idem="tok-7")
            assert retry.ok and retry.replayed
            again.close()
        finally:
            proc.terminate()
