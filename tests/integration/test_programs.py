"""Larger mini-C programs, run end-to-end and then explored with DUEL.

These are the kind of targets the paper's users debugged: a word-count
utility, a binary search tree with deletion, and a growable vector.
Each test runs the program in the simulated inferior and then verifies
program facts *through DUEL queries* — the reproduction's whole stack
in one motion.
"""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.minic import run_program
from repro.target.stdlib import stdout_text

WORDCOUNT = r"""
struct word { char *text; int count; struct word *next; };
struct word *words;
int distinct = 0, total = 0;

void tally(char *w) {
    struct word *p;
    total++;
    for (p = words; p; p = p->next)
        if (strcmp(p->text, w) == 0) { p->count++; return; }
    p = (struct word *) malloc(sizeof(struct word));
    p->text = w; p->count = 1; p->next = words;
    words = p;
    distinct++;
}

int main(int argc, char **argv) {
    int i;
    for (i = 1; i < argc; i++)
        tally(argv[i]);
    printf("%d words, %d distinct\n", total, distinct);
    return distinct;
}
"""


class TestWordCount:
    @pytest.fixture
    def session(self):
        interp = run_program(
            WORDCOUNT,
            argv=["wc", "the", "quick", "the", "lazy", "the", "quick"])
        return DuelSession(SimulatorBackend(interp.program)), interp

    def test_program_output(self, session):
        duel, interp = session
        assert stdout_text(interp.program) == "6 words, 3 distinct\n"
        assert interp.exit_status == 3

    def test_counts_via_duel(self, session):
        duel, _ = session
        assert duel.eval_values("#/(words-->next)") == [3]
        assert duel.eval_values("+/(words-->next->count)") == [6]

    def test_find_most_frequent(self, session):
        duel, _ = session
        assert duel.eval_values(">?/(words-->next->count)") == [3]
        lines = duel.eval_lines("words-->next->(if (count == 3) text)")
        assert len(lines) == 1 and '"the"' in lines[0]

    def test_string_contents_through_pointers(self, session):
        duel, _ = session
        got = {duel.formatter.format(v)
               for v in duel.eval("words-->next->text")}
        assert got == {'"the"', '"quick"', '"lazy"'}

    def test_call_tally_from_debugger(self, session):
        duel, _ = session
        duel.eval('tally("quick")')
        assert duel.eval_values(
            "words-->next->(if (strcmp(text, \"quick\") == 0) count)") == [3]


BST = r"""
struct node { int key; struct node *left; struct node *right; };
struct node *root;
int nodes = 0;

struct node *insert(struct node *t, int key) {
    if (t == 0) {
        t = (struct node *) malloc(sizeof(struct node));
        t->key = key;
        nodes++;
        return t;
    }
    if (key < t->key) t->left = insert(t->left, key);
    else if (key > t->key) t->right = insert(t->right, key);
    return t;
}

struct node *delete_min(struct node *t, struct node **out) {
    if (t->left == 0) { *out = t; return t->right; }
    t->left = delete_min(t->left, out);
    return t;
}

struct node *remove_key(struct node *t, int key) {
    struct node *m;
    if (t == 0) return 0;
    if (key < t->key) { t->left = remove_key(t->left, key); return t; }
    if (key > t->key) { t->right = remove_key(t->right, key); return t; }
    nodes--;
    if (t->left == 0) return t->right;
    if (t->right == 0) return t->left;
    t->right = delete_min(t->right, &m);
    m->left = t->left;
    m->right = t->right;
    return m;
}

int main(void) {
    int keys[9];
    int i;
    keys[0] = 50; keys[1] = 30; keys[2] = 70; keys[3] = 20;
    keys[4] = 40; keys[5] = 60; keys[6] = 80; keys[7] = 10; keys[8] = 45;
    for (i = 0; i < 9; i++)
        root = insert(root, keys[i]);
    root = remove_key(root, 30);   /* two-child deletion */
    root = remove_key(root, 80);   /* leaf deletion */
    return nodes;
}
"""


class TestBinarySearchTree:
    @pytest.fixture
    def session(self):
        interp = run_program(BST)
        return DuelSession(SimulatorBackend(interp.program)), interp

    def test_node_accounting(self, session):
        duel, interp = session
        assert interp.exit_status == 7
        assert duel.eval_values("#/(root-->(left,right))") == [7]
        assert duel.eval_values("nodes") == [7]

    def test_deleted_keys_gone(self, session):
        duel, _ = session
        assert duel.eval_values("root-->(left,right)->key ==? 30") == []
        assert duel.eval_values("root-->(left,right)->key ==? 80") == []

    def test_bst_invariant_via_duel(self, session):
        duel, _ = session
        # Every left child key < parent key; every right child > parent.
        # Note the alias k: inside left->(...), the bare name `key`
        # would resolve to the *child* (innermost with-scope wins), so
        # the parent's key must be captured first — the paper's own
        # "using an alias requires another temporary" pattern.
        violations = duel.eval_values(
            "root-->(left,right)->(k := key => "
            "(if (left && left->key >= k) 1, "
            " if (right && right->key <= k) 1))")
        assert violations == []
        # Sanity: the same query with bare `key` DOES self-compare and
        # reports a pseudo-violation per child, demonstrating the trap.
        trap = duel.eval_values(
            "root-->(left,right)->"
            "(if (left && left->key >= key) 1,"
            " if (right && right->key <= key) 1)")
        assert len(trap) > 0

    def test_minmax(self, session):
        duel, _ = session
        assert duel.eval_values("<?/(root-->(left,right)->key)") == [10]
        assert duel.eval_values(">?/(root-->(left,right)->key)") == [70]

    def test_two_child_replacement(self, session):
        duel, _ = session
        # 30's successor (40) took its place under the root's left.
        assert duel.eval_values("root->left->key") == [40]


VECTOR = r"""
struct vec { int *data; int len; int cap; };
struct vec v;
int reallocs = 0;

void push(int value) {
    int *bigger;
    int i;
    if (v.len == v.cap) {
        v.cap = v.cap ? v.cap * 2 : 4;
        bigger = (int *) malloc(v.cap * sizeof(int));
        for (i = 0; i < v.len; i++)
            bigger[i] = v.data[i];
        if (v.data) free(v.data);
        v.data = bigger;
        reallocs++;
    }
    v.data[v.len] = value;
    v.len++;
}

int main(void) {
    int i;
    for (i = 0; i < 20; i++)
        push(i * i);
    return v.len;
}
"""


class TestVector:
    @pytest.fixture
    def session(self):
        interp = run_program(VECTOR)
        return DuelSession(SimulatorBackend(interp.program)), interp

    def test_growth_policy(self, session):
        duel, interp = session
        assert interp.exit_status == 20
        assert duel.eval_values("v.cap") == [32]
        assert duel.eval_values("reallocs") == [4]  # 4, 8, 16, 32

    def test_contents_through_heap_pointer(self, session):
        duel, _ = session
        assert duel.eval_values("v.data[..v.len]") == \
            [i * i for i in range(20)]

    def test_search_in_heap_array(self, session):
        duel, _ = session
        lines = duel.eval_lines("v.data[..v.len] >? 300")
        assert lines == ["v.data[18] = 324", "v.data[19] = 361"]

    def test_free_reuse_accounting(self, session):
        duel, interp = session
        # Exactly one live allocation (the final data block).
        assert interp.program.heap.bytes_allocated >= 32 * 4
