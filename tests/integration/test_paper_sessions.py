"""E1-E6: every worked ``gdb> duel`` session in the paper, reproduced.

Each test quotes a session from the paper and asserts our output
line-for-line.  Where the paper's own text is internally inconsistent
(two known spots, see EXPERIMENTS.md), the test encodes the consistent
reading and a comment points at the discrepancy.
"""

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import DuelMemoryError
from repro.target import builder


class TestArithmetic:
    """E1 — §Design/§Syntax constant-expression sessions."""

    def test_gdb_print_equivalence(self, empty_session):
        # gdb> duel 1 + (double)3/2   ->   2.500
        assert empty_session.eval_lines("1 + (double)3/2") == ["2.500"]

    def test_alternate_product(self, empty_session):
        # gdb> duel (1,2,5)*4+(10,200)
        assert empty_session.eval_lines("(1,2,5)*4+(10,200)") == \
            ["14 204 18 208 30 220"]

    def test_to_plus_alternate(self, empty_session):
        # gdb> duel (3,11)+(5..7)
        assert empty_session.eval_lines("(3,11)+(5..7)") == \
            ["8 9 10 16 17 18"]

    def test_design_section_example(self, empty_session):
        # §Semantics: (1..3)+(5,9) prints 6 10 7 11 8 12.
        assert empty_session.eval_lines("(1..3)+(5,9)") == ["6 10 7 11 8 12"]

    def test_to_with_generator_operands(self, empty_session):
        # (to (alternate 1 5) (alternate 5 10)) produces four runs.
        got = empty_session.eval_values("(1,5)..(5,10)")
        assert got == ([1, 2, 3, 4, 5]
                       + [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
                       + [5]
                       + [5, 6, 7, 8, 9, 10])


class TestArraySearch:
    """E2 — §Syntax array-search sessions."""

    @pytest.fixture
    def xsession(self, program):
        # Array contents chosen so the paper's exact outputs appear:
        # x[3]=7, x[18]=9, x[47]=6 are the only values in (5,10) within
        # the searched portions, and x[3] is the only 7 in x[1..3].
        values = [0] * 64
        values[3] = 7
        values[18] = 9
        values[47] = 6
        builder.int_array(program, "x", values)
        return DuelSession(SimulatorBackend(program))

    def test_range_search(self, xsession):
        # gdb> duel x[1..4,8,12..50] >? 5 <? 10
        assert xsession.eval_lines("x[1..4,8,12..50] >? 5 <? 10") == [
            "x[3] = 7",
            "x[18] = 9",
            "x[47] = 6",
        ]

    def test_equivalent_eq_formulation(self, xsession):
        # x[1..4,8,12..50] ==? (6..9) is "another formulation of the
        # same search" (order differs: ==? yields per match).
        got = xsession.eval_values("x[1..4,8,12..50] ==? (6..9)")
        assert sorted(got) == [6, 7, 9]

    def test_c_equality_prints_all(self, xsession):
        # gdb> duel x[1..3] == 7
        assert xsession.eval_lines("x[1..3] == 7") == [
            "x[1]==7 = 0",
            "x[2]==7 = 0",
            "x[3]==7 = 1",
        ]

    def test_out_of_range_values_example(self, program):
        # §Syntax: x[..10] with -9 at 3 and 120 at 8.
        values = [50, 1, 2, -9, 3, 4, 5, 6, 120, 7]
        builder.int_array(program, "x", values)
        duel = DuelSession(SimulatorBackend(program))
        # Alias formulation shows the alias name:
        assert duel.eval_lines(
            "y := x[..10] => if (y < 0 || y > 100) y") == \
            ["y = -9", "y = 120"]
        # Underscore formulation pinpoints the elements:
        assert duel.eval_lines(
            "x[..10].if (_ < 0 || _ > 100) _") == \
            ["x[3] = -9", "x[8] = 120"]
        # And the alias + explicit index variant:
        assert duel.eval_lines(
            "y := x[j := ..10] => if (y < 0 || y > 100) x[{j}]") == \
            ["x[3] = -9", "x[8] = 120"]


class TestHashTable:
    """E3 — the compiler-symbol-table sessions."""

    def test_heads_with_deep_scope(self, session):
        # gdb> duel (hash[..1024] !=? 0)->scope >? 5
        assert session.eval_lines("(hash[..1024] !=? 0)->scope >? 5") == [
            "hash[42]->scope = 7",
            "hash[529]->scope = 8",
        ]

    def test_field_alternation(self, session):
        # gdb> duel hash[1,9]->(scope,name)
        assert session.eval_lines("hash[1,9]->(scope,name)") == [
            "hash[1]->scope = 3",
            'hash[1]->name = "x"',
            "hash[9]->scope = 2",
            'hash[9]->name = "abc"',
        ]

    def test_chain_scopes(self, session):
        # gdb> duel hash[0]-->next->scope
        assert session.eval_lines("hash[0]-->next->scope") == [
            "hash[0]->scope = 4",
            "hash[0]->next->scope = 3",
            "hash[0]->next->next->scope = 2",
            "hash[0]->next->next->next->scope = 1",
        ]

    def test_sortedness_check(self, session):
        # gdb> duel hash[..1024]-->next-> if (next) scope <? next->scope
        assert session.eval_lines(
            "hash[..1024]-->next-> if (next) scope <? next->scope") == [
            "hash[287]-->next[[8]]->scope = 5",
        ]

    def test_clear_heads(self, session):
        # gdb> duel hash[0..1023]->scope = 0 ;
        assert session.eval_lines("hash[0..1023]->scope = 0 ;") == []
        assert session.eval_values(
            "(hash[..1024] !=? 0)->scope >? 0") == []

    def test_clear_via_alias_chain(self, session):
        # x:= hash[..1024] !=? 0 => y:= x->scope => y = 0
        session.eval("x2 := hash[..1024] !=? 0 => y := x2->scope => y = 0")
        assert session.eval_values("(hash[..1024] !=? 0)->scope >? 0") == []

    def test_deep_scope_names(self, session):
        # x->(if (scope > 5) name) and the _ variant agree.
        via_alias = session.eval_values(
            "x3 := hash[..1024] !=? 0 => x3->(if (scope > 5) name)")
        via_underscore = session.eval_values(
            "hash[..1024]->(if (_ && scope > 5) name)")
        assert via_alias == via_underscore
        assert len(via_alias) == 2


class TestCEquivalents:
    """E5 — the three C-style reformulations of the hash search."""

    PAPER_OUTPUT = ["hash[42]->scope = 7", "hash[529]->scope = 8"]

    def test_pure_c_loop(self, session):
        got = session.eval_values(
            "int i; for (i = 0; i < 1024; i++)"
            " if (hash[i] && hash[i]->scope > 5) hash[i]->scope")
        assert got == [7, 8]

    def test_mixed_loop_with_yield(self, session):
        got = session.eval_values(
            "int i; for (i = 0; i < 1024; i++)"
            " if (hash[i]) hash[i]->scope >? 5")
        assert got == [7, 8]

    def test_mixed_loop_with_filter(self, session):
        got = session.eval_values(
            "int i; for (i = 0; i < 1024; i++)"
            " (hash[i] !=? 0)->scope >? 5")
        assert got == [7, 8]

    def test_duel_one_liner_agrees(self, session):
        assert session.eval_lines(
            "(hash[..1024] !=? 0)->scope >? 5") == self.PAPER_OUTPUT


class TestExpansion:
    """E4 — list/tree expansion sessions."""

    def test_intro_duplicate_query(self, session):
        # L-->next->(value ==? next-->next->value)
        assert session.eval_lines(
            "L-->next->(value ==? next-->next->value)") == [
            "L-->next[[4]]->value = 27",
        ]

    def test_duplicate_positions(self, session):
        # The paper: "its 4th and 9th nodes each contain 27".
        assert session.eval_lines(
            "L-->next#i->value ==? L-->next#j->value => "
            "if (i < j) L-->next[[i,j]]->value") == [
            "L-->next[[4]]->value = 27",
            "L-->next[[9]]->value = 27",
        ]

    def test_tree_preorder(self, session):
        # Paper states "generates the nodes in a binary tree in
        # preorder"; its printed output swaps 5 and 4 — see
        # EXPERIMENTS.md E4 for the discrepancy note.
        assert session.eval_lines("root-->(left,right)->key") == [
            "root->key = 9",
            "root->left->key = 3",
            "root->left->left->key = 4",
            "root->left->right->key = 5",
            "root->right->key = 12",
        ]

    def test_path_to_five(self, session):
        # Comparison direction corrected w.r.t. the paper (its printed
        # query contradicts its printed output; see EXPERIMENTS.md).
        assert session.eval_lines(
            "root-->(if (key > 5) left else if (key < 5) right)->key") == [
            "root->key = 9",
            "root->left->key = 3",
            "root->left->right->key = 5",
        ]

    def test_count_tree(self, session):
        # gdb> duel #/(root-->(left,right)->key)   ->   5
        assert session.eval_lines("#/(root-->(left,right)->key)") == ["5"]

    def test_select_on_products(self, empty_session):
        # gdb> duel ((1..9)*(1..9))[[52,74]]
        assert empty_session.eval_lines("((1..9)*(1..9))[[52,74]]") == \
            ["48 27"]

    def test_select_on_list(self, session):
        # gdb> duel head-->next->value[[3,5]]
        assert session.eval_lines("head-->next->value[[3,5]]") == [
            "head-->next[[3]]->value = 33",
            "head-->next[[5]]->value = 29",
        ]

    def test_argv_strings(self, session):
        # argv[0..]@0 generates the strings in argv.
        assert session.eval_lines("argv[0..]@0") == [
            'argv[0] = "prog"',
            'argv[1] = "-v"',
            'argv[2] = "file.c"',
        ]


class TestForIfSessions:
    """§Syntax: for/if display sessions with {} substitution."""

    def test_if_without_braces_keeps_symbol(self, empty_session):
        empty_session.eval("int i;")
        assert empty_session.eval_lines(
            "for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5") == [
            "4+i*5 = 4",
            "4+i*5 = 19",
            "4+i*5 = 34",
        ]

    def test_braces_substitute_value(self, empty_session):
        empty_session.eval("int i;")
        assert empty_session.eval_lines(
            "for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5") == [
            "4+0*5 = 4",
            "4+3*5 = 19",
            "4+6*5 = 34",
        ]

    def test_sequence_alias(self, empty_session):
        # gdb> duel i := 1..3; i + 4   ->   i+4 = 7
        assert empty_session.eval_lines("i := 1..3; i + 4") == ["i+4 = 7"]

    def test_imply_alias(self, empty_session):
        # gdb> duel i := 1..3 => {i} + 4
        assert empty_session.eval_lines("i := 1..3 => {i} + 4") == [
            "1+4 = 5",
            "2+4 = 6",
            "3+4 = 7",
        ]


class TestPrintfSession:
    """§Semantics: function calls with generator arguments."""

    def test_printf_combinations(self, program):
        from repro.target.stdlib import stdout_text
        duel = DuelSession(SimulatorBackend(program))
        duel.eval('printf("%d %d, ", (3,4), 5..7)')
        assert stdout_text(program) == "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, "


class TestErrors:
    """E6 — the paper's error-report format."""

    def test_illegal_memory_reference(self, program):
        # Paper: ptr[..99]->val might produce
        #   Illegal memory reference in x of x->y:
        #   ptr[48] = lvalue 0x16820.
        program.declare("struct cell {int val; struct cell *next;}"
                        " *ptr[99];")
        sym = program.lookup("ptr")
        cell_ptr = program.parse_type("struct cell *")
        good = program.alloc(16)
        for i in range(99):
            program.write_value(sym.address + 8 * i, cell_ptr, good)
        program.write_value(sym.address + 8 * 48, cell_ptr, 0x16820)
        duel = DuelSession(SimulatorBackend(program))
        with pytest.raises(DuelMemoryError) as info:
            list(duel.ieval("ptr[..99]->val"))
        assert str(info.value) == (
            "Illegal memory reference in x of x->y:\n"
            "ptr[48] = lvalue 0x16820.")
