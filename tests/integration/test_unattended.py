"""The unattended-run acceptance scenario (ISSUE 4).

One session, full observability stack on, a batch holding one
truncated, one target-faulted, and one clean query.  Afterwards:

* the query log parses line by line and holds exactly one terminal
  record per query, with the right outcome and governor verdict;
* the flight recorder produced post-mortems naming the offending
  queries, the faulted one carrying its EXPLAIN profile tree;
* the metrics registry renders as valid Prometheus text reflecting
  every query, and the scrape endpoint serves the same bytes.
"""

import io
import json
import re
import urllib.request

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.exposition import MetricsServer, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.qlog import TERMINAL_EVENTS, QueryLog
from repro.obs.recorder import FlightRecorder
from repro.target import builder

BATCH = ("x[..10]",        # truncated: lines limit set to 3 below
         "x[2000000]",     # faulted: illegal memory reference
         "x[..4] >? 0")    # drained

SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.e+-]*$')
TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    root = tmp_path_factory.mktemp("unattended")
    qlog_path = root / "queries.jsonl"
    dump_dir = root / "dumps"
    dump_dir.mkdir()
    program = TargetProgram()
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    session = DuelSession(SimulatorBackend(program),
                          metrics=MetricsRegistry())
    session.qlog = QueryLog(str(qlog_path))
    session.recorder = FlightRecorder(dump_dir=str(dump_dir))
    session.governor.set_limit("lines", 3)
    out = io.StringIO()
    for text in BATCH:
        session.duel(text, out=out)
    session.qlog.close()
    return session, qlog_path, dump_dir, out.getvalue()


class TestQueryLog:
    def test_every_line_parses(self, run):
        _, qlog_path, _, _ = run
        for line in qlog_path.read_text().splitlines():
            record = json.loads(line)
            assert "ev" in record and "qid" in record

    def test_one_terminal_record_per_query(self, run):
        _, qlog_path, _, _ = run
        terminals = {}
        for line in qlog_path.read_text().splitlines():
            record = json.loads(line)
            if record["ev"] in TERMINAL_EVENTS:
                terminals.setdefault(record["qid"], []).append(record)
        assert sorted(terminals) == [1, 2, 3]
        assert all(len(records) == 1
                   for records in terminals.values())
        assert [terminals[qid][0]["ev"] for qid in (1, 2, 3)] == \
            ["truncated", "faulted", "drained"]
        assert terminals[1][0]["kind"] == "lines"
        assert terminals[1][0]["values"] == 3
        assert terminals[2][0]["error_type"] == "DuelMemoryError"
        assert terminals[3][0]["reads"] > 0

    def test_queries_carry_their_text(self, run):
        _, qlog_path, _, _ = run
        received = [json.loads(line)
                    for line in qlog_path.read_text().splitlines()
                    if json.loads(line)["ev"] == "received"]
        assert [r["text"] for r in received] == list(BATCH)


class TestPostMortems:
    def dumps(self, dump_dir):
        return [json.loads(path.read_text())
                for path in sorted(dump_dir.iterdir())]

    def test_both_bad_queries_dumped(self, run):
        _, _, dump_dir, _ = run
        artifacts = self.dumps(dump_dir)
        assert len(artifacts) == 2
        assert "truncated" in artifacts[0]["reason"]
        assert "x[..10]" in artifacts[0]["reason"]
        assert "faulted" in artifacts[1]["reason"]
        assert "x[2000000]" in artifacts[1]["reason"]

    def test_faulted_dump_names_query_with_explain_tree(self, run):
        _, _, dump_dir, _ = run
        artifact = self.dumps(dump_dir)[1]
        faulted = next(q for q in artifact["queries"]
                       if q["outcome"] == "faulted")
        assert faulted["text"] == "x[2000000]"
        assert faulted["error_type"] == "DuelMemoryError"
        ops = [span["op"] for span in faulted["explain"]]
        assert "index" in ops
        assert faulted["explain"][0]["depth"] == 0

    def test_dump_is_self_contained(self, run):
        _, _, dump_dir, _ = run
        artifact = self.dumps(dump_dir)[1]
        assert artifact["limits"]["lines"] == 3
        assert artifact["metrics"]["counters"]["queries_total"] >= 2


class TestMetrics:
    def test_prometheus_rendering_reflects_all_queries(self, run):
        session, _, _, _ = run
        text = render_prometheus(session.metrics)
        assert "duel_queries_total 3" in text
        assert re.search(r"duel_target_reads_total [1-9]", text)
        for line in text.rstrip("\n").splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line

    def test_scrape_endpoint_serves_the_registry(self, run):
        session, _, _, _ = run
        server = MetricsServer(session.metrics, port=0)
        try:
            server.start()
            with urllib.request.urlopen(server.url,
                                        timeout=5) as response:
                body = response.read().decode()
        finally:
            server.stop()
        assert body == render_prometheus(session.metrics)


class TestPartialOutput:
    def test_truncated_query_kept_its_partial_values(self, run):
        _, _, _, output = run
        assert "(stopped" in output
        # The three values the lines quota allowed are in the output.
        assert output.splitlines()[0].startswith("x[0] = 3")
