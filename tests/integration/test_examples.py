"""Every example script must run clean and print what it promises."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    out = io.StringIO()
    with redirect_stdout(out):
        spec.loader.exec_module(module)
        module.main()
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = run_example("quickstart.py")
        assert "6 10 7 11 8 12" in text
        assert "2.500" in text
        assert "x[7] = 120" in text

    def test_symtab_explore(self):
        text = run_example("symtab_explore.py")
        assert "inserted 12 symbols" in text
        assert 'hash[279]->name = "tmp"' in text
        assert "nsyms = 12" in text
        assert 'hashfn("tmp") = 279' in text

    def test_list_tree_debug(self):
        text = run_example("list_tree_debug.py")
        assert "L-->next[[4]]->value = 27" in text
        assert "root->left->right->key = 5" in text
        assert "ring->next->next->next->value = 4" in text

    def test_minic_bughunt(self):
        text = run_example("minic_bughunt.py")
        assert "scheduled 5 tasks" in text
        assert "Illegal memory reference" in text
        assert "lvalue 0xdead0000" in text

    def test_strings_argv(self):
        text = run_example("strings_argv.py")
        assert 'argv[3] = "duel"' in text
        assert "strlen(s) = 12" in text
        assert "3 5, 3 6, 3 7, 4 5, 4 6, 4 7," in text

    def test_watchpoints_assertions(self):
        text = run_example("watchpoints_assertions.py")
        assert "VIOLATION: sp = 81" in text
        assert "sp: 8 -> 81" in text
        assert "breakpoint 'stack[..8] >? 60' hits: 1" in text

    def test_all_examples_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py", "symtab_explore.py", "list_tree_debug.py",
            "minic_bughunt.py", "strings_argv.py",
            "watchpoints_assertions.py",
        }
        assert scripts == tested, "add a smoke test for new examples"
