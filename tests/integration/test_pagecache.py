"""Integration: the page cache under real sessions and a real server.

Three acceptance surfaces for PR 10:

* **advisor calibration** — the measured hit rate of a live cache
  must land near what :func:`~repro.obs.access.simulate_page_cache`
  projects for the same recorded trace at the same (page size,
  capacity) point; the ``accesses`` report's comparison section is
  only trustworthy if the model and the machine agree;
* **coherence hammer** — concurrent cached readers over a shared
  target with a committed writer never see a stale value: every
  reader's final read shows the last committed write, and no reader
  ever observes the counter move backwards;
* **epoch across restarts** — a server recovered from a checkpoint
  (whose DUELSNAP1 payload carries the memory epoch) serves
  post-recovery truth, never pre-crash cached pages.
"""

import io
import threading

import pytest

from repro import DuelSession, SimulatorBackend
from repro.bench import workloads
from repro.serve.client import DuelClient, RetryPolicy
from repro.serve.server import DuelServer
from repro.target.pagecache import PageCachePolicy

ARRAY = 400


def make_session(**kwargs):
    return DuelSession(SimulatorBackend(workloads.big_array(ARRAY)),
                       **kwargs)


# -- advisor calibration -------------------------------------------------

@pytest.mark.parametrize("page_size,capacity", [(64, 8), (256, 16)])
def test_advisor_projection_matches_measured_hit_rate(page_size,
                                                      capacity):
    """Demand mode (no speculation — the advisor's replay models
    exactly that) on a read-dominated scan: measured and projected
    hit rates agree within tolerance."""
    session = make_session(page_cache=PageCachePolicy(
        mode="demand", page_size=page_size, capacity=capacity))
    result = session.accesses(f"x[..{ARRAY}] >? 0")
    assert result["outcome"] == "done"
    report = result["cache"]
    assert report["mode"] == "demand"
    assert report["projected_hit_rate"] is not None
    assert abs(report["projection_gap"]) <= 0.15, report
    # The cache did real work on this scan, not a degenerate 0/0.
    assert report["hits"] > 0
    assert 0 < report["physical_reads"] < report["logical_reads"]


def test_cache_report_reaches_the_accesses_surface():
    session = make_session(page_cache="adaptive")
    result = session.accesses("x[..64] !=? 0")
    report = result["cache"]
    assert report["mode"] == "adaptive"
    assert report["measured_hit_rate"] > 0.5
    # And the rendered report carries the measured-vs-projected line.
    from repro.obs.access import render_report
    text = "\n".join(render_report("x[..64] !=? 0", result["access"],
                                   result.get("advisor") or [],
                                   cache=report))
    assert "page cache (adaptive" in text
    assert "advisor projection" in text


def test_per_query_stats_split_logical_and_physical():
    session = make_session(page_cache="demand")
    session.duel(f"x[..{ARRAY}] !=? 0", out=io.StringIO())
    stats = session.last_query_stats
    assert stats["reads"] > stats["physical_reads"] > 0
    assert stats["cache_hits"] + stats["cache_misses"] == stats["reads"]
    # Statements aggregate both totals per fingerprint.
    from repro.obs.statements import StatementStats
    session = make_session(page_cache="demand")
    session.statements = StatementStats()
    session.duel(f"x[..{ARRAY}] !=? 0", out=io.StringIO())
    row = session.statements.snapshot(by="physical_reads")[0]
    assert row["reads"] > row["physical_reads"] > 0
    assert row["cached_calls"] == 1
    assert row["cache_hit_rate"] > 0.5


# -- coherence hammer ----------------------------------------------------

class TestCoherenceHammer:
    READERS = 4
    WRITES = 25

    @pytest.fixture()
    def server(self):
        server = DuelServer(
            workloads.big_array(ARRAY), workers=4, max_clients=12,
            commit_writes=True,
            session_kwargs={"page_cache": PageCachePolicy(
                mode="adaptive", page_size=64, capacity=16)})
        server.start()
        try:
            yield server
        finally:
            server.stop()

    def connect(self, server):
        client = DuelClient(port=server.port, timeout=10.0,
                            retry=RetryPolicy(retries=2, base=0.05,
                                              jitter=0.0))
        client.connect()
        return client

    def read_cell(self, client):
        result = client.duel("x[7]")
        assert result.ok, result
        return int(result.lines[-1].split("=")[-1])

    def test_readers_never_see_stale_or_backward_values(self, server):
        """Cached readers vs. a committed writer: monotone observed
        values per reader, and the final read equals the last write."""
        initial = None
        stop = threading.Event()
        failures = []
        observed = [[] for _ in range(self.READERS)]

        def reader(index):
            client = self.connect(server)
            try:
                last = None
                while not stop.is_set():
                    value = self.read_cell(client)
                    if last is not None and value < last:
                        failures.append(
                            f"reader {index} saw {value} after {last}")
                        return
                    last = value
                    observed[index].append(value)
            finally:
                client.close()

        writer = self.connect(server)
        initial = self.read_cell(writer)
        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(self.READERS)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(self.WRITES):
                result = writer.duel("x[7] = x[7] + 1")
                assert result.ok, result
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        assert not any(thread.is_alive() for thread in threads)
        # Every fresh reader connection sees the final committed value
        # through its own (cold) cache; the writer's cached view
        # agrees because its own writes resynced, not flushed.
        want = initial + self.WRITES
        assert self.read_cell(writer) == want
        checker = self.connect(server)
        assert self.read_cell(checker) == want
        checker.close()
        writer.close()

    def test_restore_invalidates_reader_caches(self, server):
        """A rolled-back side-effecting query (the default for
        non-committed sessions is commit, so use an explicit failed
        drain path): snapshot restore bumps the epoch, so a warmed
        cache re-reads instead of serving the pre-restore page."""
        client = self.connect(server)
        before = self.read_cell(client)
        # A query that writes then faults: the lease settles by
        # restoring the pre-query snapshot — epoch bump — so the
        # next read must not serve the written value from cache.
        result = client.duel("(x[7] = x[7] + 100, x[999999])")
        assert result.outcome in ("faulted", "done")
        if result.outcome == "faulted":
            assert self.read_cell(client) == before
        client.close()


# -- epoch across restarts ----------------------------------------------

def test_recovered_server_serves_post_crash_truth(tmp_path):
    policy = PageCachePolicy(mode="adaptive", page_size=64, capacity=16)
    kwargs = dict(workers=2, commit_writes=True,
                  journal_fsync="off", checkpoint_interval=0.0,
                  session_kwargs={"page_cache": policy})
    server = DuelServer(workloads.big_array(ARRAY),
                        state_dir=str(tmp_path / "state"), **kwargs)
    server.start()
    restarted = None
    try:
        client = DuelClient(port=server.port, timeout=10.0)
        client.connect()
        assert client.duel("x[..32]").ok          # warm session caches
        assert client.duel("x[3] = 777").ok
        server.checkpoint()
        epoch_at_ckpt = server.sessions.program.memory.epoch
        assert epoch_at_ckpt > 0
        client._teardown()
        server.simulate_crash()

        restarted = DuelServer(workloads.big_array(ARRAY),
                               state_dir=str(tmp_path / "state"),
                               **kwargs)
        restarted.start()
        # Restore advanced the fresh program's epoch past the
        # checkpoint's, so no pre-crash page can ever be current.
        assert restarted.sessions.program.memory.epoch > epoch_at_ckpt
        again = DuelClient(port=restarted.port, timeout=10.0)
        again.connect()
        result = again.duel("x[3]")
        assert result.ok
        assert result.lines[-1] == "x[3] = 777"
        again.close()
    finally:
        server.stop()
        if restarted is not None:
            restarted.stop()
