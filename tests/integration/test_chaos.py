"""Integration: the DUEL service survives injected chaos.

The fault-tolerance acceptance suite.  A :class:`ChaosProxy` with a
seeded fault plan sits between real clients and a real server while
drops, resets, truncations, stalls and target faults are injected,
proving

* **no hangs** — every client either completes its queries or gets an
  explicit error, within the suite timeout;
* **exactly-once writes** — a retried idempotency token is replayed
  from the server cache, never executed twice;
* **no leaks** — every session is reaped (active and parked both
  empty) once the dust settles, including a client vanishing between
  ``hello`` and ``welcome``;
* **the watchdog works** — a query wedged in a backend call that
  ignores the cooperative cancel token is hard-cancelled within 2x
  its deadline;
* **degraded mode** — a faulting target trips the breaker: reads keep
  flowing, writes get ``rejected: degraded``, and a clean probe after
  the cooldown closes the breaker again.
"""

import json
import threading
import time

import pytest

from repro.bench import workloads
from repro.core.session import DuelSession
from repro.obs.metrics import MetricsRegistry
from repro.obs.qlog import QueryLog
from repro.serve.chaos import ChaosProxy, FaultPlan
from repro.serve.client import DuelClient, RetryPolicy, ServeError
from repro.serve.server import DuelServer
from repro.target.interface import SimulatorBackend
from repro.target.memory import TargetMemoryFault

ARRAY = 120
CLIENTS = 8


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def fast_retry(retries=4):
    """Deterministic, CI-friendly backoff: real sleeps, no jitter."""
    return RetryPolicy(retries=retries, base=0.2, factor=1.5,
                       max_backoff=0.5, jitter=0.0)


def make_server(metrics=None, qlog=None, **kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("queue_depth", 32)
    kwargs.setdefault("max_clients", CLIENTS + 8)
    kwargs.setdefault("per_client", 1)
    kwargs.setdefault("drain_timeout", 10.0)
    kwargs.setdefault("heartbeat_interval", 0.5)
    kwargs.setdefault("heartbeat_timeout", 1.5)
    kwargs.setdefault("watchdog_tick", 0.05)
    kwargs.setdefault("resume_ttl", 30.0)
    server = DuelServer(workloads.big_array(ARRAY), metrics=metrics,
                        qlog=qlog, **kwargs)
    server.start()
    return server


class TestChaosSweep:
    """The headline scenario: a seeded storm of mixed faults."""

    def test_seeded_faults_every_client_terminates(self, tmp_path):
        metrics = MetricsRegistry()
        qlog_path = str(tmp_path / "chaos.qlog")
        qlog = QueryLog(qlog_path)

        # A fresh fault-injecting session per client mixes *target*
        # faults into the network chaos (low rate, deterministic).
        from repro.target.interface import FaultInjectingBackend
        program = workloads.big_array(ARRAY)
        made = []

        def factory():
            backend = FaultInjectingBackend(
                SimulatorBackend(program),
                read_fault_rate=0.02, seed=len(made))
            made.append(backend)
            return DuelSession(backend)

        server = DuelServer(program, workers=4, queue_depth=32,
                            max_clients=CLIENTS + 8, per_client=1,
                            metrics=metrics, qlog=qlog,
                            drain_timeout=10.0,
                            heartbeat_interval=0.5,
                            heartbeat_timeout=1.5,
                            watchdog_tick=0.05, resume_ttl=30.0,
                            breaker_threshold=50,
                            session_factory=factory)
        server.start()
        plan = FaultPlan.seeded(1234, CLIENTS * 4, rate=0.6,
                                min_at=64, max_at=2048, seconds=0.3)
        proxy = ChaosProxy(("127.0.0.1", server.port), plan)
        proxy.start()

        outcomes = [None] * CLIENTS
        errors = [None] * CLIENTS

        def worker(index):
            client = DuelClient(port=proxy.port, client=f"chaos{index}",
                                timeout=10.0, connect=False,
                                retry=fast_retry())
            seen = []
            try:
                # Even the dial can hit a faulted connection: retry it.
                attempt = 0
                while True:
                    try:
                        client.connect()
                        break
                    except (OSError, ServeError):
                        attempt += 1
                        if attempt > client.retry.retries:
                            raise
                        client._teardown()
                        client.retry.wait(attempt)
                for text in ("x[..20]",
                             f"x[{index}] = {1000 + index}",
                             "x[..10]"):
                    seen.append(client.duel(text).outcome)
            except (ServeError, OSError) as error:
                errors[index] = str(error)   # explicit, not a hang
            finally:
                outcomes[index] = seen
                try:
                    client.close()
                except Exception:
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(CLIENTS)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=90)
            hung = [i for i, t in enumerate(threads) if t.is_alive()]
            assert not hung, f"clients hung under chaos: {hung}"

            # Every client terminated: a full outcome list, or an
            # explicit error after exhausted retries.  Every outcome
            # is a definite terminal, never a hang.
            for index in range(CLIENTS):
                if errors[index] is None:
                    assert len(outcomes[index]) == 3, \
                        f"client {index} stopped early: {outcomes[index]}"
                for outcome in outcomes[index]:
                    assert outcome in ("done", "truncated", "cancelled",
                                       "faulted", "error", "rejected")
        finally:
            proxy.stop()
            server.stop()
            qlog.close()

        # Post-run invariants on the audit trail: qids monotone...
        with open(qlog_path) as handle:
            records = [json.loads(line) for line in handle]
        qids = [r["qid"] for r in records
                if r.get("ev") == "received"]
        assert qids == sorted(qids)
        # ...and exactly-once for the idem-tagged writes: each
        # client's unique write text was *executed* at most once even
        # when the conversation broke and the client retried (replays
        # answer from the cache, creating no new drive).
        for index in range(CLIENTS):
            text = f"x[{index}] = {1000 + index}"
            drives = [r for r in records
                      if r.get("ev") == "received"
                      and r.get("text") == text]
            assert len(drives) <= 1, \
                f"write {text!r} executed {len(drives)} times"

        # No leaks: every session reaped once clients are gone.
        assert wait_until(lambda: server.sessions.count() == 0), \
            f"{server.sessions.count()} sessions leaked"
        server.sessions._parked.clear()   # TTL is 30s; drop the rest


class TestExactlyOnce:
    """Deterministic replay: the terminal frame is lost, the retry
    re-presents the token, the server answers from its cache."""

    def test_lost_terminal_is_replayed_not_reexecuted(self, tmp_path):
        qlog_path = str(tmp_path / "idem.qlog")
        qlog = QueryLog(qlog_path)
        server = make_server(qlog=qlog)
        try:
            client = DuelClient(port=server.port, client="once",
                                timeout=10.0, retry=fast_retry())
            first = client.collect(client.start("x[3] = 77",
                                                idem="tok-1"))
            assert first.outcome == "done"
            # The conversation dies before we "saw" the terminal:
            # drop the transport without a clean bye.
            client._teardown()
            # Let the server notice and park the session, so the
            # reconnect resumes it (cache intact).
            assert wait_until(
                lambda: server.sessions.parked_count() >= 1)
            second = client.duel("x[3] = 77", idem="tok-1")
            assert second.outcome == "done"
            assert second.replayed is True
            assert second.lines == first.lines
            assert client.resumed is True
            client.close()
        finally:
            server.stop()
            qlog.close()
        with open(qlog_path) as handle:
            records = [json.loads(line) for line in handle]
        drives = [r for r in records if r.get("ev") == "received"
                  and r.get("text") == "x[3] = 77"]
        assert len(drives) == 1, "the retried write was re-executed"

    def test_token_still_running_is_busy_then_replayed(self):
        server = make_server()
        try:
            slow = DuelClient(port=server.port, client="slow",
                              timeout=10.0)
            slow.limits("lines", 1_000_000)
            request = slow.start(f"x[(1..) % {ARRAY}]", idem="tok-2")
            # A second connection retrying the same session's token
            # is impossible by construction (tokens are per-session),
            # so retry over the same connection: the protocol rejects
            # a concurrent duel as busy either way; just cancel and
            # confirm the cancelled outcome was cached for the token.
            time.sleep(0.2)
            slow.cancel(request)
            result = slow.collect(request)
            assert result.outcome == "cancelled"
            replay = slow.collect(slow.start("anything",
                                             idem="tok-2"))
            assert replay.outcome == "cancelled"
            assert replay.replayed is True
            slow.close()
        finally:
            server.stop()


class TestHeartbeatReap:
    def test_silent_client_is_reaped_and_session_parked(self):
        import socket as socketlib

        from repro.serve import protocol
        metrics = MetricsRegistry()
        server = make_server(metrics=metrics, resume_ttl=1.0)
        try:
            sock = socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10)
            sock.settimeout(10)
            rfile = sock.makefile("rb")
            sock.sendall(protocol.encode(protocol.hello("silent")))
            welcome = protocol.decode(rfile.readline())
            assert welcome["ev"] == "welcome"
            # Now say nothing: ignore pings until the server reaps us.
            assert wait_until(lambda: server.reaped >= 1, timeout=15), \
                "silent client never reaped"
            # The server hung up on us (EOF or reset)...
            try:
                tail = sock.recv(65536)
                while tail:
                    tail = sock.recv(65536)
            except OSError:
                pass
            sock.close()
            assert metrics.counter("serve_reaped_total").value >= 1
            assert metrics.counter("serve_pings_total").value >= 1
            # ...the session was parked for resume, and the park
            # expires by TTL: no leak either way.
            assert wait_until(lambda: server.sessions.count() == 0)
            assert wait_until(
                lambda: server.sessions.parked_count() == 0, timeout=15)
        finally:
            server.stop()

    def test_reaped_session_resumes_with_state(self):
        import socket as socketlib

        from repro.serve import protocol
        server = make_server(resume_ttl=30.0)
        try:
            first = DuelClient(port=server.port, client="phoenix",
                               timeout=10.0)
            assert first.duel("mine := 42").ok
            key = first.welcome["resume"]
            # Simulate the network vanishing (no bye): raw teardown.
            first._teardown()
            assert wait_until(
                lambda: server.sessions.parked_count() >= 1)
            # A new connection presenting the key gets the session
            # back, aliases intact.
            sock = socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10)
            sock.settimeout(10)
            rfile = sock.makefile("rb")
            sock.sendall(protocol.encode(
                protocol.hello("phoenix2", resume=key)))
            welcome = protocol.decode(rfile.readline())
            assert welcome["resumed"] is True
            sock.sendall(protocol.encode(
                {"op": "duel", "id": 1, "text": "mine"}))
            lines = []
            while True:
                frame = protocol.decode(rfile.readline())
                if frame.get("ev") == "ping":
                    sock.sendall(protocol.encode(
                        {"op": "pong", "seq": frame["seq"]}))
                    continue
                if frame.get("ev") == "value":
                    lines.extend(frame["lines"])
                    continue
                break
            assert frame["ev"] == "done"
            assert any("42" in line for line in lines)
            sock.sendall(protocol.encode({"op": "bye"}))
            sock.close()
        finally:
            server.stop()


class WedgedBackend(SimulatorBackend):
    """Reads wedge (sleep, ignoring the cancel token) while armed."""

    def __init__(self, program, switch):
        super().__init__(program)
        self._switch = switch

    def get_target_bytes(self, address, size):
        if self._switch["armed"]:
            self._switch["armed"] = False
            # A backend call that never checks the governor: the
            # cooperative deadline cannot save us, only the watchdog.
            for _ in range(1200):
                time.sleep(0.05)
        return super().get_target_bytes(address, size)


class TestWatchdogHardCancel:
    def test_wedged_query_cancelled_within_twice_deadline(self):
        metrics = MetricsRegistry()
        switch = {"armed": False}
        program = workloads.big_array(ARRAY)
        server = DuelServer(
            program, workers=2, queue_depth=8, per_client=1,
            metrics=metrics, drain_timeout=10.0,
            heartbeat_interval=0.5, heartbeat_timeout=60.0,
            watchdog_tick=0.05, watchdog_grace=60.0,
            session_factory=lambda: DuelSession(
                WedgedBackend(program, switch)))
        server.start()
        try:
            client = DuelClient(port=server.port, client="wedge",
                                timeout=30.0,
                                retry=RetryPolicy(retries=0))
            deadline_s = 0.8
            client.limits("deadline_ms", int(deadline_s * 1000))
            switch["armed"] = True
            t0 = time.monotonic()
            result = client.duel("x[..5]")
            elapsed = time.monotonic() - t0
            assert result.outcome == "cancelled", result.outcome
            # The acceptance bound: within 2x the query's deadline.
            assert elapsed < 2 * deadline_s, \
                f"hard cancel took {elapsed:.2f}s (deadline {deadline_s}s)"
            assert server.hard_cancels == 1
            assert metrics.counter(
                "serve_watchdog_hard_cancels_total").value == 1
            # The lease settled normally (no reclaim): the session is
            # not poisoned and keeps serving.
            follow_up = client.duel("x[..3]")
            assert follow_up.outcome == "done"
            assert server.workers_lost == 0
            client.close()
        finally:
            server.stop()


class FlakyBackend(SimulatorBackend):
    """Target allocations fault while the switch is on.

    Allocation faults surface as :class:`DuelTargetError` — the
    target-distress class the circuit breaker watches (a plain bad
    pointer in a user query is a :class:`DuelMemoryError` and
    deliberately does *not* degrade the service).
    """

    def __init__(self, program, switch):
        super().__init__(program)
        self._switch = switch

    def alloc_target_space(self, size):
        if self._switch["faulty"]:
            raise TargetMemoryFault(0, size, "alloc",
                                    "injected chaos fault")
        return super().alloc_target_space(size)


class TestDegradedMode:
    def test_breaker_trips_writes_rejected_reads_flow_then_recovers(self):
        metrics = MetricsRegistry()
        switch = {"faulty": False}
        program = workloads.big_array(ARRAY)
        server = DuelServer(
            program, workers=2, queue_depth=8, per_client=1,
            metrics=metrics, drain_timeout=10.0,
            heartbeat_interval=10.0, heartbeat_timeout=30.0,
            watchdog_tick=0.05, breaker_threshold=2,
            breaker_window=30.0, breaker_cooldown=0.4,
            session_factory=lambda: DuelSession(
                FlakyBackend(program, switch)))
        server.start()
        try:
            client = DuelClient(port=server.port, client="sick",
                                timeout=10.0,
                                retry=RetryPolicy(retries=0))
            assert client.duel("x[..5]").ok
            assert server.health.state() == "ok"

            # Two target faults trip the breaker (string literals
            # allocate scratch space in the target, which is faulting).
            switch["faulty"] = True
            for text in ('"boom one"', '"boom two"'):
                result = client.duel(text)
                assert result.outcome == "faulted"
                assert "injected chaos fault" in result.error
            assert server.health.breaker.open
            assert server.health.state() == "degraded"
            status, body = server.health.healthz()
            assert status == 200        # alive: do not restart-loop it
            assert body.startswith("degraded")

            # ...writes are refused with an explicit frame...
            write = client.duel("x[0] = 9")
            assert write.outcome == "rejected"
            assert write.reason == "degraded"
            assert metrics.counter(
                "serve_degraded_rejections_total").value >= 1
            assert metrics.counter(
                "serve_breaker_trips_total").value == 1

            # ...reads keep flowing (to a definite terminal, even if
            # the sick target faults them)...
            read = client.duel("x[..5]")
            assert read.outcome in ("done", "faulted")

            # ...the stats frame surfaces the state to operators...
            stats = client.stats()
            assert stats["server"]["health"] == "degraded"

            # ...and once the target heals, the cooldown probe closes
            # the breaker: full service again.
            switch["faulty"] = False
            time.sleep(0.5)             # past the 0.4s cooldown
            probe = client.duel("x[1] = 5")
            assert probe.outcome == "done"
            assert not server.health.breaker.open
            assert server.health.state() == "ok"
            assert metrics.counter(
                "serve_breaker_closes_total").value == 1
            client.close()
        finally:
            server.stop()


class TestSignalsDuringDrain:
    """A second SIGINT while draining fast-drains, never crashes."""

    @pytest.mark.skipif(not hasattr(__import__("signal"), "SIGINT"),
                        reason="no SIGINT on this platform")
    def test_second_sigint_fast_drains_cleanly(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        source = tmp_path / "prog.c"
        source.write_text(
            "int data[40] = {1, 2, 3, 4, 5};\n"
            "int main(void) { return 0; }\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "--serve", "--port", "0",
             "--workers", "2", "--drain-timeout", "30",
             str(source)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd="/root/repo",
            start_new_session=True)
        port = None
        try:
            deadline = time.monotonic() + 30
            while port is None and time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                if line.startswith("serving on "):
                    port = int(line.rsplit(":", 1)[1])
            assert port is not None, "server never announced its port"

            # Pin a slow query so the drain has something to wait on,
            # then SIGINT twice: the first begins the graceful drain,
            # the second (while draining) escalates to a fast drain.
            client = DuelClient(port=port, client="pin", timeout=30.0,
                                retry=RetryPolicy(retries=0))
            client.limits("lines", 10_000_000)
            request = client.start("data[(1..) % 5]")
            time.sleep(0.3)              # let it stream
            process.send_signal(signal.SIGINT)
            time.sleep(0.3)              # it is draining now
            process.send_signal(signal.SIGINT)

            # The pinned query comes back as a graceful cancellation
            # (or the connection ends) — never a hang.
            try:
                result = client.collect(request)
                assert result.outcome in ("cancelled", "truncated")
            except ServeError:
                pass                     # bye/EOF mid-collect is fine
            client._teardown()

            out, _ = process.communicate(timeout=30)
            assert process.returncode == 0, out
            assert "draining..." in out
            assert "served" in out       # the exit banner printed
            assert "Traceback" not in out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


class TestNoSessionLeaks:
    def test_disconnect_between_hello_and_welcome(self):
        import socket as socketlib

        from repro.serve import protocol
        server = make_server(resume_ttl=0.5)
        try:
            # Case 1: hello, then vanish without reading the welcome.
            sock = socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10)
            sock.sendall(protocol.encode(protocol.hello("ghost1")))
            sock.close()
            # Case 2: hello, then a hard RST before the welcome.
            import struct as structlib
            sock = socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10)
            sock.sendall(protocol.encode(protocol.hello("ghost2")))
            sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_LINGER,
                            structlib.pack("ii", 1, 0))
            sock.close()
            # Neither ghost may leak: active sessions drop right
            # away, any parked entry expires by its short TTL.
            assert wait_until(lambda: server.sessions.count() == 0,
                              timeout=10)
            assert wait_until(
                lambda: server.sessions.parked_count() == 0,
                timeout=10), "ghost session stayed parked"
        finally:
            server.stop()
