"""Integration: the DUEL query service under real concurrent load.

The acceptance scenario for the serve subsystem: one loopback
:class:`DuelServer` over a shared target, at least eight concurrent
clients mixing read-only queries, side-effecting writes and runaway
generators, proving

* per-client isolation — writes and aliases never leak across
  clients, and every reader sees the pristine target;
* graceful truncation and client-initiated cancel deliver partial
  results plus the paper-style diagnostic over the wire;
* admission control answers overload with an explicit ``rejected:
  overloaded`` frame — never a hang;
* shutdown drains: admitted queries finish, clients get ``bye``.
"""

import threading
import time

import pytest

from repro.bench import workloads
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import DuelClient
from repro.serve.server import DuelServer

CLIENTS = 8
ARRAY = 200


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def server(metrics):
    booted = DuelServer(workloads.big_array(ARRAY), workers=4,
                        queue_depth=32, max_clients=CLIENTS + 4,
                        per_client=1, metrics=metrics, drain_timeout=10.0)
    booted.start()
    yield booted
    booted.stop()


def spawn(worker, count):
    """Run ``worker(index)`` on ``count`` threads; returns results."""
    barrier = threading.Barrier(count)
    results = [None] * count
    failures = []

    def run(index):
        barrier.wait()
        try:
            results[index] = worker(index)
        except Exception as error:  # pragma: no cover - failure path
            failures.append((index, error))

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures
    assert all(not t.is_alive() for t in threads), "worker hung"
    return results


class TestConcurrentMixedLoad:
    def test_eight_clients_mixed_read_write_runaway(self, server):
        """The headline scenario: isolation under genuine concurrency."""
        baseline_client = DuelClient(port=server.port, timeout=30.0)
        baseline = baseline_client.duel("x[..20]").lines
        baseline_client.close()
        assert len(baseline) == 20

        def worker(index):
            with DuelClient(port=server.port, client=f"mix{index}",
                            timeout=60.0) as client:
                outcomes = []
                for round_ in range(4):
                    role = (index + round_) % 4
                    if role == 0:        # plain read
                        result = client.duel("x[..20]")
                        assert result.ok
                        assert result.lines == baseline
                    elif role == 1:      # side-effecting write
                        result = client.duel(f"x[..20] = {1000 + index}")
                        assert result.ok
                        # The write saw itself...
                        assert all(str(1000 + index) in line
                                   for line in result.lines)
                        # ...and vanished immediately after.
                        again = client.duel("x[..20]")
                        assert again.lines == baseline
                    elif role == 2:      # private alias
                        assert client.duel(
                            f"mine{index} := {index} * 100").ok
                        result = client.duel(f"mine{index}")
                        assert result.lines == [f"{index * 100}"] \
                            or any(str(index * 100) in line
                                   for line in result.lines)
                    else:                # runaway, truncated by limits
                        result = client.duel(f"x[(1..) % {ARRAY}]")
                        assert result.outcome == "truncated"
                        assert result.kind == "lines"
                        assert len(result.lines) == 10000
                        assert "stopped" in result.diagnostic
                    outcomes.append(role)
                return outcomes

        results = spawn(worker, CLIENTS)
        assert all(len(r) == 4 for r in results)
        # The shared target survived it all unchanged.
        with DuelClient(port=server.port, timeout=30.0) as check:
            assert check.duel("x[..20]").lines == baseline

    def test_aliases_stay_private_across_clients(self, server):
        def worker(index):
            with DuelClient(port=server.port, client=f"al{index}",
                            timeout=60.0) as client:
                assert client.duel(f"token := {index + 7000}").ok
                # Everyone defined 'token'; each sees only their own.
                result = client.duel("token")
                assert result.ok
                assert any(str(index + 7000) in line
                           for line in result.lines)
                aliases = client.aliases()
                assert aliases.get("token") == str(index + 7000)
                return True

        assert all(spawn(worker, CLIENTS))


class TestCancelOverTheWire:
    def test_concurrent_cancels_keep_partials(self, server):
        def worker(index):
            with DuelClient(port=server.port, client=f"cx{index}",
                            timeout=60.0) as client:
                client.limits("lines", 1_000_000)
                request = client.start(f"x[(1..) % {ARRAY}]")
                seen = threading.Event()
                lines = []

                def on_line(line):
                    lines.append(line)
                    if len(lines) >= 32:
                        seen.set()

                box = {}

                def collect():
                    box["result"] = client.collect(request,
                                                   on_line=on_line)

                thread = threading.Thread(target=collect)
                thread.start()
                assert seen.wait(timeout=60)
                client.cancel(request)
                thread.join(timeout=60)
                assert not thread.is_alive()
                result = box["result"]
                assert result.outcome == "cancelled"
                assert result.kind == "cancel"
                assert len(result.lines) >= 32
                assert "interrupted" in result.diagnostic
                return len(result.lines)

        partials = spawn(worker, CLIENTS)
        assert all(n >= 32 for n in partials)


class TestOverloadUnderConcurrency:
    def test_overload_is_an_explicit_rejection(self, metrics):
        server = DuelServer(workloads.big_array(ARRAY), workers=1,
                            queue_depth=2, max_clients=CLIENTS + 4,
                            per_client=1, metrics=metrics,
                            drain_timeout=10.0)
        server.start()
        try:
            # Pin the only worker on a runaway bounded by a short
            # deadline (so the queued clients complete afterwards),
            # drained concurrently so the worker never blocks on an
            # unread socket.
            pin = DuelClient(port=server.port, timeout=60.0)
            pin.limits("lines", 1_000_000)
            pin.limits("deadline_ms", 5000)
            pinned = pin.start(f"x[(1..) % {ARRAY}]")
            box = {}
            drainer = threading.Thread(
                target=lambda: box.update(result=pin.collect(pinned)))
            drainer.start()
            deadline = time.monotonic() + 10
            while not (server.inflight() == 1 and server.queued() == 0) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)

            def worker(index):
                with DuelClient(port=server.port, client=f"ov{index}",
                                timeout=60.0) as client:
                    result = client.duel("x[..3]")
                    return result.outcome, result.reason

            results = spawn(worker, CLIENTS)
            outcomes = {outcome for outcome, _ in results}
            # Nobody hung: every client got a definite answer, and
            # with a depth-2 queue most were explicitly turned away.
            assert outcomes <= {"done", "rejected"}
            rejected = [r for r in results if r[0] == "rejected"]
            assert rejected, "queue never overflowed"
            assert all(reason == "overloaded" for _, reason in rejected)
            drainer.join(timeout=60)
            assert not drainer.is_alive()
            assert box["result"].outcome == "truncated"
            pin.close()
        finally:
            server.stop()
        assert metrics.counter("serve_rejected_total").value \
            >= len(rejected)


class TestDrainOnShutdown:
    def test_admitted_queries_finish_before_bye(self, metrics):
        server = DuelServer(workloads.big_array(ARRAY), workers=2,
                            queue_depth=16, max_clients=CLIENTS + 4,
                            per_client=1, metrics=metrics,
                            drain_timeout=15.0)
        server.start()
        clients = [DuelClient(port=server.port, client=f"dr{i}",
                              timeout=60.0)
                   for i in range(CLIENTS)]
        value_seen = threading.Event()
        results = {}
        byes = []

        def worker(index):
            client = clients[index]
            results[index] = client.duel(
                "x[..50]", on_line=lambda line: value_seen.set())
            frame = client.read_frame()
            while frame is not None and frame.get("ev") != "bye":
                frame = client.read_frame()
            if frame is not None:
                byes.append(index)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(CLIENTS)]
        try:
            for thread in threads:
                thread.start()
            # Only pull the plug once at least one query is provably
            # admitted (it streamed a value): drain must let it finish.
            assert value_seen.wait(timeout=30), \
                "no query ever streamed a value"
            server.stop()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert len(results) == CLIENTS
            # Every admitted query produced its terminal frame, then
            # the unsolicited shutdown bye.
            finished = 0
            for result in results.values():
                if result.outcome == "done":
                    assert len(result.lines) == 50
                    finished += 1
                else:
                    assert result.outcome in ("cancelled", "rejected")
            assert finished >= 1
            assert len(byes) == CLIENTS
        finally:
            for client in clients:
                client.close()

    def test_queries_after_drain_are_rejected(self, server):
        client = DuelClient(port=server.port, timeout=30.0)
        try:
            server._stopping = True
            result = client.duel("x[..3]")
            assert result.outcome == "rejected"
            assert result.reason == "shutting down"
        finally:
            server._stopping = False
            client.close()


class TestSharedObservability:
    def test_qlog_and_metrics_aggregate_across_clients(self, tmp_path,
                                                       metrics):
        import json

        from repro.obs.qlog import QueryLog
        path = str(tmp_path / "serve.qlog")
        qlog = QueryLog(path)
        server = DuelServer(workloads.big_array(ARRAY), workers=4,
                            queue_depth=32, max_clients=CLIENTS + 4,
                            per_client=1, metrics=metrics, qlog=qlog,
                            drain_timeout=10.0)
        server.start()
        try:
            def worker(index):
                with DuelClient(port=server.port, client=f"ob{index}",
                                timeout=60.0) as client:
                    assert client.duel("x[..10]").ok
                    assert client.duel("x[0] = 1").ok
                    return True

            assert all(spawn(worker, CLIENTS))
        finally:
            server.stop()
            qlog.close()
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        received = [r["qid"] for r in records if r["ev"] == "received"]
        # Atomic allocation: qids are exactly 1..N, in file order.
        assert received == list(range(1, 2 * CLIENTS + 1))
        drained = [r for r in records if r["ev"] == "drained"]
        assert len(drained) == 2 * CLIENTS
        assert metrics.counter("queries_total").value == 2 * CLIENTS
        assert metrics.counter("serve_outcome_done_total").value \
            == 2 * CLIENTS


class TestTracingAndStatements:
    """PR 8 acceptance: traces and statement statistics over the wire.

    Eight concurrent clients run a mixed workload against one traced,
    aggregating server.  Every query must come back with a trace id;
    the exported span tree for any of those ids must show the server
    phases wrapped around the engine's own AST spans; and the
    ``statements`` op must report per-fingerprint call counts that
    add up exactly — literal variants folded, reads and writes kept
    apart.
    """

    def test_eight_clients_traced_and_aggregated(self, tmp_path,
                                                 metrics):
        import json

        from repro.obs.reqtrace import SERVER_PHASES, TraceLog
        from repro.obs.statements import StatementStats

        path = tmp_path / "traces.jsonl"
        tracelog = TraceLog(str(path), sample=1)
        stats = StatementStats()
        server = DuelServer(workloads.big_array(ARRAY), workers=4,
                            queue_depth=32, max_clients=CLIENTS + 4,
                            per_client=1, metrics=metrics,
                            statements=stats, tracelog=tracelog,
                            drain_timeout=10.0)
        server.start()
        try:
            def worker(index):
                with DuelClient(port=server.port, client=f"tr{index}",
                                timeout=60.0) as client:
                    ids = []
                    # Two literal variants of one read shape...
                    for text in ("x[..10]", "x[..10]", "x[..5]"):
                        result = client.duel(text)
                        assert result.ok
                        assert result.trace_id
                        assert result.fingerprint
                        ids.append(result.trace_id)
                    # ...and one write shape.
                    result = client.duel("x[0] = 7")
                    assert result.ok
                    ids.append(result.trace_id)
                    return ids

            ids = spawn(worker, CLIENTS)
            all_ids = [tid for per_client in ids for tid in per_client]
            # Server-assigned ids are unique across the whole fleet.
            assert len(set(all_ids)) == 4 * CLIENTS

            with DuelClient(port=server.port, timeout=30.0) as client:
                reply = client.statements(by="calls", limit=10)
                assert reply["enabled"]
                assert reply["recorded"] == 4 * CLIENTS
                rows = {r["text"]: r for r in reply["rows"]}
                assert len(rows) == 2
                by_calls = sorted(rows.values(),
                                  key=lambda r: r["calls"])
                # x[..10] and x[..5] folded into one shape: 3 calls
                # per client; the write stayed its own shape.
                assert by_calls[0]["calls"] == CLIENTS
                assert by_calls[1]["calls"] == 3 * CLIENTS
                assert by_calls[1]["values"] == CLIENTS * (10 + 10 + 5)
                # A profiled query shows the span tree inline too.
                probe = client.duel("x[..3]", profile=True)
                assert probe.ok and probe.profile
                got = {s["name"] for s in probe.profile["spans"]}
                assert got == set(SERVER_PHASES)
                assert probe.profile["engine_spans"]
        finally:
            server.stop()
            tracelog.close()

        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        by_id = {r["trace_id"]: r for r in records
                 if r["ev"] == "request"}
        # sample=1: every fleet query's span tree was exported.
        for trace_id in all_ids:
            record = by_id[trace_id]
            names = [s["name"] for s in record["spans"]]
            for phase in SERVER_PHASES:
                assert phase in names, (trace_id, names)
            assert record["engine_spans"], trace_id
            assert record["outcome"] == "done"
            assert record["fingerprint"]
