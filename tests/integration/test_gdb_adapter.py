"""The gdb adapter must be importable (and inert) outside gdb."""

import pytest


class TestImportGuard:
    def test_module_imports_without_gdb(self):
        from repro.target import gdbadapter
        assert not gdbadapter.HAVE_GDB

    def test_backend_refuses_outside_gdb(self):
        from repro.target.gdbadapter import GdbBackend
        with pytest.raises(RuntimeError):
            GdbBackend()

    def test_command_registration_refuses_outside_gdb(self):
        from repro.target.gdbadapter import register_duel_command
        with pytest.raises(RuntimeError):
            register_duel_command()

    def test_adapter_is_a_debugger_interface(self):
        from repro.target.gdbadapter import GdbBackend
        from repro.target.interface import DebuggerInterface
        assert issubclass(GdbBackend, DebuggerInterface)
