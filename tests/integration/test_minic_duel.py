"""Integration: mini-C programs executed, then explored with DUEL.

This is the paper's actual workflow — run the program under the
debugger, stop, and interrogate live state — exercised end to end
across all three subsystems (minic -> target -> core).
"""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.minic import run_program
from repro.target.stdlib import stdout_text

SYMTAB = r"""
struct symbol { char *name; int scope; struct symbol *next; };
struct symbol *hash[64];
int nsyms = 0;

unsigned hashfn(char *s) {
    unsigned h = 0;
    int i;
    for (i = 0; s[i]; i++) h = h * 31 + s[i];
    return h % 64;
}

void insert(char *name, int scope) {
    struct symbol *p = (struct symbol *) malloc(sizeof(struct symbol));
    unsigned b = hashfn(name);
    p->name = name; p->scope = scope; p->next = hash[b];
    hash[b] = p;
    nsyms++;
}

int main(void) {
    insert("alpha", 1); insert("beta", 7); insert("gamma", 2);
    insert("delta", 9); insert("eps", 3);
    return 0;
}
"""


@pytest.fixture
def symtab():
    interp = run_program(SYMTAB)
    return interp, DuelSession(SimulatorBackend(interp.program))


class TestSymtabExploration:
    def test_count_matches_program_counter(self, symtab):
        interp, duel = symtab
        assert duel.eval_values("#/(hash[..64]-->next)") == [5]
        assert duel.eval_values("nsyms") == [5]

    def test_deep_scopes(self, symtab):
        _, duel = symtab
        got = duel.eval_values("hash[..64]-->next->scope >? 5")
        assert sorted(got) == [7, 9]

    def test_names_are_target_strings(self, symtab):
        _, duel = symtab
        lines = duel.eval_lines(
            "hash[..64]-->next->(if (scope == 9) name)")
        assert lines == [f'hash[{_bucket("delta")}]->name = "delta"']

    def test_call_program_function_from_duel(self, symtab):
        _, duel = symtab
        (b,) = duel.eval_values('hashfn("beta")')
        got = duel.eval_values(f"hash[{b}]-->next->scope ==? 7")
        assert got == [7]

    def test_mutate_then_rerun_program_function(self, symtab):
        interp, duel = symtab
        duel.eval('insert("zeta", 11)')
        assert duel.eval_values("nsyms") == [6]
        assert duel.eval_values("#/(hash[..64]-->next)") == [6]

    def test_write_through_duel_visible_to_program(self, symtab):
        interp, duel = symtab
        duel.eval("hash[..64]-->next->(if (scope > 5) scope = 0) ;")
        assert duel.eval_values("hash[..64]-->next->scope >? 5") == []


def _bucket(name: str) -> int:
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) & 0xFFFFFFFF
    return h % 64


RECURSIVE = r"""
struct frame_like { int depth; };
int maxdepth = 0;

int sink(int n) {
    int here = n;
    if (n > maxdepth) maxdepth = n;
    if (n >= 4) return here;
    return sink(n + 1);
}

int main(void) { return sink(0); }
"""


class TestProgramState:
    def test_globals_after_recursion(self):
        interp = run_program(RECURSIVE)
        duel = DuelSession(SimulatorBackend(interp.program))
        assert duel.eval_values("maxdepth") == [4]
        assert interp.exit_status == 4

    def test_matrix_program(self):
        interp = run_program(r"""
            int m[3][3];
            int main(void) {
                int i, j;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 3; j++)
                        m[i][j] = i * 3 + j;
                return 0;
            }
        """)
        duel = DuelSession(SimulatorBackend(interp.program))
        # Row-major flattening via nested generators.
        got = duel.eval_values("m[..3][..3]")
        assert got == list(range(9))
        assert duel.eval_values("+/(m[..3][..3])") == [36]

    def test_stdout_and_duel_agree(self):
        interp = run_program(r"""
            int total = 0;
            int main(void) {
                int i;
                for (i = 1; i <= 10; i++) total += i;
                printf("total=%d\n", total);
                return 0;
            }
        """)
        duel = DuelSession(SimulatorBackend(interp.program))
        assert stdout_text(interp.program) == "total=55\n"
        assert duel.eval_values("total") == [55]

    def test_frames_visible_during_breakpointed_call(self):
        # Emulate "stopped at a breakpoint": call a function that
        # inspects the stack mid-flight via a registered probe.
        interp = run_program(
            "int probe(void);"
            "int inner(int x) { int local = x * 2; probe(); return local; }"
            "int outer(int x) { int mid = x + 1; return inner(mid); }",
            call_main=False)
        captured = {}

        def probe(program):
            duel = DuelSession(SimulatorBackend(program))
            captured["depth"] = program.stack.depth
            captured["local"] = duel.eval_values("local")
            captured["frame1_mid"] = duel.eval_values("frame(1).mid")
            return 0

        interp.program.define_function("probe", "int probe(void)", probe)
        result = interp.call("outer", 5)
        assert result == 12
        # probe is native (no mini-C frame): outer + inner only.
        assert captured["depth"] == 2
        assert captured["local"] == [12]
        assert captured["frame1_mid"] == [6]
