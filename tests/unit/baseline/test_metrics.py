"""Unit tests for the DUEL-vs-C baseline machinery."""

import pytest

from repro.baseline import PAPER_QUERIES
from repro.baseline.metrics import (
    conciseness,
    expressiveness_table,
    fresh_pair,
    run_c,
    run_duel,
)


class TestConciseness:
    def test_duel_is_always_shorter(self):
        for query in PAPER_QUERIES.values():
            sizes = conciseness(query)
            assert sizes["duel"].chars < sizes["c"].chars, query.key
            assert sizes["duel"].tokens < sizes["c"].tokens, query.key

    def test_paper_scale_of_savings(self):
        # The paper's thesis: one-liners vs multi-line C.  Across the
        # suite C is at least 3x the characters.
        table = expressiveness_table()
        assert all(row["char_ratio"] >= 3.0 for row in table)

    def test_table_covers_all_queries(self):
        table = expressiveness_table()
        assert {row["query"] for row in table} == set(PAPER_QUERIES)


class TestAgreement:
    @pytest.mark.parametrize("key", sorted(PAPER_QUERIES))
    def test_both_sides_run(self, key):
        query = PAPER_QUERIES[key]
        session, interp = fresh_pair(query.workload)
        duel_values = run_duel(session, query)
        c_lines = run_c(interp, query)
        assert isinstance(duel_values, list)
        assert isinstance(c_lines, list)

    def test_hash_scope_same_findings(self):
        query = PAPER_QUERIES["hash_scope"]
        session, interp = fresh_pair("hash")
        duel_values = run_duel(session, query)
        c_lines = run_c(interp, query)
        assert len(duel_values) == len(c_lines) == 2
        assert sorted(duel_values) == sorted(
            int(line.rsplit("= ", 1)[1]) for line in c_lines)

    def test_array_positive_same_count(self):
        query = PAPER_QUERIES["array_positive"]
        session, interp = fresh_pair("array100")
        assert len(run_duel(session, query)) == len(run_c(interp, query))

    def test_list_dup_found_by_both(self):
        query = PAPER_QUERIES["list_dup"]
        session, interp = fresh_pair("dup_list")
        duel_values = run_duel(session, query)
        c_lines = run_c(interp, query)
        assert duel_values == [27]
        assert len(c_lines) == 1 and c_lines[0].endswith("contain 27")

    def test_tree_count_agrees(self):
        query = PAPER_QUERIES["tree_count"]
        session, interp = fresh_pair("tree")
        assert run_duel(session, query) == [5]
        assert run_c(interp, query) == ["5"]

    def test_buggy_paper_c_reports_every_node(self):
        # The paper's own C snippet has q = p: every node matches itself.
        from repro.baseline.queries import LIST_DUP_C_BUGGY, PairedQuery
        buggy = PairedQuery("buggy", "", "", LIST_DUP_C_BUGGY, "dup_list")
        session, interp = fresh_pair("dup_list")
        lines = run_c(interp, buggy)
        assert len(lines) == 11  # 10 self-matches + the one real pair

    def test_clear_side_effects_match(self):
        query = PAPER_QUERIES["hash_clear"]
        duel_session, _ = fresh_pair("hash")
        run_duel(duel_session, query)
        after_duel = duel_session.eval_values(
            "#/((hash[..1024] !=? 0)->scope >? 0)")
        c_session, interp = fresh_pair("hash")
        run_c(interp, query)
        after_c = c_session.eval_values(
            "#/((hash[..1024] !=? 0)->scope >? 0)")
        assert after_duel == after_c == [0]
