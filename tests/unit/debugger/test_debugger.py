"""Unit tests for DUEL-driven breakpoints, watchpoints, assertions."""

import pytest

from repro.debugger import Assertion, Breakpoint, Debugger, StopEvent, Watchpoint
from repro.debugger.debugger import StopKind, describe

COUNTER = r"""
int total = 0;
int step(int k) { total = total + k; return total; }
int main(void) {
    int i;
    for (i = 1; i <= 5; i++)
        step(i);
    return total;
}
"""

LIST_BUILDER = r"""
struct node { int v; struct node *next; } *head;
int n = 0;
void push(int v) {
    struct node *p = (struct node *) malloc(sizeof(struct node));
    p->v = v; p->next = head; head = p;
    n++;
}
int main(void) {
    push(3); push(-7); push(9);
    return n;
}
"""


class TestBreakpoints:
    def test_unconditional_hit_per_call(self):
        dbg = Debugger(COUNTER)
        bp = dbg.break_at("step")
        assert dbg.run() == 15
        assert bp.hits == 5
        assert all(s.kind is StopKind.BREAKPOINT for s in dbg.stops)

    def test_conditional_breakpoint(self):
        dbg = Debugger(COUNTER)
        bp = dbg.break_at("step", condition="total >= 6")
        dbg.run()
        # total >= 6 on entry only for the calls where total is 6, 10
        # (entries happen with total = 0,1,3,6,10).
        assert bp.hits == 2

    def test_generator_condition(self):
        dbg = Debugger(LIST_BUILDER)
        bp = dbg.break_at("push", condition="head-->next->v <? 0")
        dbg.run()
        # Fires once the list contains a negative value (last push).
        assert bp.hits == 1

    def test_handler_inspects_live_frames(self):
        seen = []

        def on_stop(event: StopEvent, session):
            seen.append(session.eval_values("k"))

        dbg = Debugger(COUNTER, on_stop=on_stop)
        dbg.break_at("step")
        dbg.run()
        assert seen == [[1], [2], [3], [4], [5]]

    def test_abort_from_handler(self):
        def on_stop(event, session):
            return "abort"

        dbg = Debugger(COUNTER, on_stop=on_stop)
        dbg.break_at("step")
        status = dbg.run()
        assert status is None
        assert len(dbg.stops) == 1

    def test_disable_and_delete(self):
        dbg = Debugger(COUNTER)
        bp = dbg.break_at("step")
        bp.enabled = False
        dbg.run()
        assert bp.hits == 0
        dbg.delete(bp)
        assert dbg.breakpoints == []
        with pytest.raises(ValueError):
            dbg.delete(bp)


class TestWatchpoints:
    def test_fires_on_each_change(self):
        dbg = Debugger(COUNTER)
        wp = dbg.watch("total")
        dbg.run()
        # total changes 5 times (1, 3, 6, 10, 15).
        assert wp.hits == 5
        changes = [s.detail for s in dbg.stops
                   if s.kind is StopKind.WATCHPOINT]
        assert changes[0] == ((0,), (1,))
        assert changes[-1] == ((10,), (15,))

    def test_watch_generator_expression(self):
        dbg = Debugger(LIST_BUILDER)
        wp = dbg.watch("#/(head-->next)")
        dbg.run()
        assert wp.hits == 3  # list length 1, 2, 3

    def test_watch_survives_invalid_intermediate_state(self):
        dbg = Debugger(LIST_BUILDER)
        dbg.watch("head->v")
        status = dbg.run()  # must not crash while head is NULL
        assert status == 3

    def test_invalid_expression_rejected_eagerly(self):
        dbg = Debugger(COUNTER)
        from repro.core.errors import DuelSyntaxError
        with pytest.raises(DuelSyntaxError):
            dbg.watch("total +")

    def test_check_interval_samples(self):
        every = Debugger(COUNTER, check_interval=1)
        every.watch("total")
        every.run()
        sampled = Debugger(COUNTER, check_interval=50)
        wp = sampled.watch("total")
        sampled.run()
        assert sampled.condition_evals < every.condition_evals


class TestAssertions:
    def test_holding_assertion_never_fires(self):
        dbg = Debugger(COUNTER)
        asrt = dbg.assert_always("total >= 0")
        dbg.run()
        assert asrt.violations == 0

    def test_violated_assertion_reports(self):
        dbg = Debugger(LIST_BUILDER)
        # The paper's canonical assertion shape: all values positive.
        asrt = dbg.assert_always("head-->next->v > 0")
        dbg.run()
        assert asrt.violations > 0
        first = next(s for s in dbg.stops
                     if s.kind is StopKind.ASSERTION)
        assert first.detail == [0]  # the failing comparison value

    def test_empty_policy(self):
        dbg = Debugger(COUNTER)
        strict = dbg.assert_always("total >? 1000", allow_empty=False)
        dbg.run()
        assert strict.violations > 0

    def test_describe(self):
        assert describe(Breakpoint("f", "x > 0")) == "break f if x > 0"
        assert describe(Watchpoint("x")) == "watch x"
        assert describe(Assertion("x > 0")) == "assert x > 0"


class TestInstrumentationCost:
    def test_condition_evals_counted(self):
        dbg = Debugger(COUNTER)
        dbg.watch("total")
        dbg.run()
        assert dbg.condition_evals > 10

    def test_uninstrumented_run_is_free(self):
        dbg = Debugger(COUNTER)
        dbg.run()
        assert dbg.condition_evals == 0
        assert dbg.stops == []

    def test_call_entry_point(self):
        dbg = Debugger(COUNTER)
        bp = dbg.break_at("step")
        assert dbg.call("step", 7) == 7
        assert bp.hits == 1
