"""Unit tests for the mini-C interpreter: real programs executing in
the simulated inferior."""

import pytest

from repro.ctype.types import INT
from repro.minic import run_program
from repro.minic.errors import MiniCRuntimeError
from repro.target.stdlib import stdout_text


def run(source, argv=None):
    return run_program(source, argv=argv)


def out(interp):
    return stdout_text(interp.program)


class TestBasics:
    def test_return_value(self):
        interp = run("int main(void) { return 6 * 7; }")
        assert interp.exit_status == 42

    def test_globals_initialised(self):
        interp = run("int x = 5; int main(void) { return x; }")
        assert interp.exit_status == 5

    def test_global_array_init(self):
        interp = run("int a[4] = {1, 2, 3};"
                     "int main(void) { return a[0]+a[1]+a[2]+a[3]; }")
        assert interp.exit_status == 6  # trailing element zeroed

    def test_struct_initializer(self):
        interp = run("struct p {int x; int y;} pt = {3, 4};"
                     "int main(void) { return pt.x * 10 + pt.y; }")
        assert interp.exit_status == 34

    def test_string_global(self):
        interp = run('char msg[] = "hey";'
                     "int main(void) { return msg[1]; }")
        assert interp.exit_status == ord("e")

    def test_printf(self):
        interp = run('int main(void) { printf("v=%d\\n", 3); return 0; }')
        assert out(interp) == "v=3\n"


class TestControlFlow:
    def test_if_else(self):
        interp = run("int main(void) { int x = 3;"
                     " if (x > 2) return 1; else return 2; }")
        assert interp.exit_status == 1

    def test_while_sum(self):
        interp = run("int main(void) { int i = 0, s = 0;"
                     " while (i < 5) { s += i; i++; } return s; }")
        assert interp.exit_status == 10

    def test_for_loop(self):
        interp = run("int main(void) { int s = 0;"
                     " for (int i = 1; i <= 4; i++) s = s + i;"
                     " return s; }")
        assert interp.exit_status == 10

    def test_do_while(self):
        interp = run("int main(void) { int n = 0;"
                     " do { n++; } while (n < 3); return n; }")
        assert interp.exit_status == 3

    def test_break_continue(self):
        interp = run("int main(void) { int s = 0;"
                     " for (int i = 0; i < 10; i++) {"
                     "   if (i == 5) break;"
                     "   if (i % 2) continue;"
                     "   s += i; } return s; }")
        assert interp.exit_status == 6  # 0 + 2 + 4

    def test_switch_fallthrough_and_default(self):
        source = ("int classify(int x) { int r = 0; switch (x) {"
                  " case 1: r += 1;"
                  " case 2: r += 2; break;"
                  " default: r = 99; } return r; }"
                  "int main(void) { return classify(%d); }")
        assert run(source % 1).exit_status == 3   # falls through 1 -> 2
        assert run(source % 2).exit_status == 2
        assert run(source % 7).exit_status == 99

    def test_ternary_and_logical(self):
        interp = run("int main(void) { int a = 0;"
                     " return (a || 3) ? 10 : 20; }")
        assert interp.exit_status == 10

    def test_logical_short_circuit(self):
        interp = run("int hit = 0;"
                     "int boom(void) { hit = 1; return 1; }"
                     "int main(void) { 0 && boom(); return hit; }")
        assert interp.exit_status == 0


class TestFunctions:
    def test_recursion(self):
        interp = run("int fib(int n) { return n < 2 ? n"
                     " : fib(n-1) + fib(n-2); }"
                     "int main(void) { return fib(10); }")
        assert interp.exit_status == 55

    def test_mutual_recursion(self):
        interp = run("int odd(int n);"
                     "int even(int n) { return n == 0 ? 1 : odd(n-1); }"
                     "int odd(int n) { return n == 0 ? 0 : even(n-1); }"
                     "int main(void) { return even(10); }")
        assert interp.exit_status == 1

    def test_locals_are_per_frame(self):
        interp = run("int depth(int n) { int local = n;"
                     " if (n > 0) depth(n - 1); return local; }"
                     "int main(void) { return depth(5); }")
        assert interp.exit_status == 5

    def test_pointer_out_parameter(self):
        interp = run("void set(int *p, int v) { *p = v; }"
                     "int main(void) { int x = 0; set(&x, 9); return x; }")
        assert interp.exit_status == 9

    def test_call_loaded_function_directly(self):
        interp = run("int triple(int x) { return 3 * x; }")
        assert interp.call("triple", 14) == 42


class TestPointersAndHeap:
    def test_malloc_linked_list(self):
        interp = run(r"""
            struct node { int v; struct node *next; };
            struct node *head;
            int main(void) {
                int i;
                struct node *n;
                for (i = 3; i > 0; i--) {
                    n = (struct node *) malloc(sizeof(struct node));
                    n->v = i * 10;
                    n->next = head;
                    head = n;
                }
                return head->v + head->next->v + head->next->next->v;
            }
        """)
        assert interp.exit_status == 60

    def test_pointer_arithmetic_walk(self):
        interp = run("int a[5] = {1, 2, 3, 4, 5};"
                     "int main(void) { int *p = a; int s = 0;"
                     " while (p < a + 5) { s += *p; p++; } return s; }")
        assert interp.exit_status == 15

    def test_array_of_strings(self):
        interp = run('char *names[2];'
                     'int main(void) { names[0] = "zero"; names[1] = "one";'
                     ' return names[1][0]; }')
        assert interp.exit_status == ord("o")

    def test_struct_member_assignment(self):
        interp = run("struct pt {int x; int y;} p;"
                     "int main(void) { p.x = 2; p.y = p.x * 5;"
                     " return p.y; }")
        assert interp.exit_status == 10

    def test_sizeof(self):
        interp = run("struct s {char c; long l;};"
                     "int main(void) { return sizeof(struct s); }")
        assert interp.exit_status == 16

    def test_enum_values(self):
        interp = run("enum e {A, B = 5, C};"
                     "int main(void) { return A + B + C; }")
        assert interp.exit_status == 11


class TestArgvAndErrors:
    def test_argv(self):
        interp = run("int main(int argc, char **argv) { return argc; }",
                     argv=["prog", "a", "b"])
        assert interp.exit_status == 3

    def test_undefined_identifier(self):
        with pytest.raises(MiniCRuntimeError):
            run("int main(void) { return nope; }")

    def test_step_limit_stops_infinite_loop(self):
        from repro.minic.runner import load_program
        interp = load_program("int main(void) { while (1) ; return 0; }")
        interp.max_steps = 10_000
        with pytest.raises(MiniCRuntimeError):
            interp.run_main()

    def test_exit_call(self):
        interp = run("int main(void) { exit(7); return 0; }")
        assert interp.exit_status == 7

    def test_no_main_is_fine_without_call(self):
        interp = run("int helper(void) { return 1; }")
        assert interp.exit_status is None


class TestStateVisibleToDebugger:
    def test_globals_land_in_data_segment(self):
        interp = run("int marker = 77; int main(void) { return 0; }")
        sym = interp.program.lookup("marker")
        assert interp.program.read_value(sym.address, INT) == 77

    def test_heap_structures_remain_after_main(self):
        interp = run(r"""
            struct node { int v; struct node *next; };
            struct node *head;
            int main(void) {
                head = (struct node *) malloc(sizeof(struct node));
                head->v = 123;
                return 0;
            }
        """)
        from repro import DuelSession, SimulatorBackend
        duel = DuelSession(SimulatorBackend(interp.program))
        assert duel.eval_values("head->v") == [123]


class TestFunctionPointers:
    def test_call_through_pointer(self):
        interp = run("int twice(int x) { return 2 * x; }"
                     "int (*fp)(int);"
                     "int main(void) { fp = &twice; return fp(21); }")
        assert interp.exit_status == 42

    def test_function_name_decays(self):
        interp = run("int inc(int x) { return x + 1; }"
                     "int (*fp)(int);"
                     "int main(void) { fp = inc; return fp(6); }")
        assert interp.exit_status == 7

    def test_dispatch_table(self):
        interp = run(r"""
            int add(int a, int b) { return a + b; }
            int sub(int a, int b) { return a - b; }
            int (*ops[2])(int, int);
            int main(void) {
                ops[0] = add;
                ops[1] = sub;
                return ops[0](10, 4) * 100 + ops[1](10, 4);
            }
        """)
        assert interp.exit_status == 1406

    def test_pointer_to_stdlib_function(self):
        interp = run("unsigned long (*len)(char *);"
                     "int main(void) { len = strlen;"
                     ' return len("seven!!");' " }")
        assert interp.exit_status == 7
