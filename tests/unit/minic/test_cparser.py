"""Unit tests for the mini-C parser."""

import pytest

from repro.minic import cast as A
from repro.minic.errors import MiniCSyntaxError
from repro.minic.parser import parse_program


def parse(source):
    return parse_program(source)


class TestGlobals:
    def test_scalar_with_initializer(self):
        unit, env = parse("int x = 5;")
        assert unit.variables[0].name == "x"
        assert unit.variables[0].init.expr.value == 5

    def test_multiple_declarators(self):
        unit, env = parse("int a, b = 2, *c;")
        assert [v.name for v in unit.variables] == ["a", "b", "c"]
        assert unit.variables[2].ctype.is_pointer

    def test_array_initializer(self):
        unit, env = parse("int a[3] = {1, 2, 3};")
        assert unit.variables[0].init.is_list
        assert len(unit.variables[0].init.items) == 3

    def test_unsized_array_completed_from_init(self):
        unit, env = parse("int a[] = {1, 2, 3, 4};")
        assert unit.variables[0].ctype.length == 4

    def test_char_array_from_string(self):
        unit, env = parse('char s[] = "abc";')
        assert unit.variables[0].ctype.length == 4  # includes NUL

    def test_struct_definition(self):
        unit, env = parse(
            "struct node {int v; struct node *next;};"
            " struct node *head;")
        assert env.structs["node"].size == 16
        assert unit.variables[0].name == "head"

    def test_typedef(self):
        unit, env = parse("typedef unsigned long size_t; size_t n;")
        assert unit.variables[0].ctype.name() == "size_t"

    def test_enum(self):
        unit, env = parse("enum state {OFF, ON = 4} s;")
        assert env.enums["state"].enumerators == {"OFF": 0, "ON": 4}

    def test_enum_constant_as_array_size(self):
        unit, env = parse("enum k {N = 6}; int a[N];")
        assert unit.variables[0].ctype.length == 6

    def test_prototype_ignored(self):
        unit, env = parse("int f(int);")
        assert unit.variables == () and unit.functions == ()


class TestFunctions:
    def test_definition(self):
        unit, env = parse("int add(int a, int b) { return a + b; }")
        func = unit.functions[0]
        assert func.name == "add"
        assert func.param_names == ("a", "b")
        assert isinstance(func.body.body[0], A.ReturnStmt)

    def test_void_params(self):
        unit, env = parse("int f(void) { return 0; }")
        assert unit.functions[0].param_names == ()

    def test_pointer_return(self):
        unit, env = parse("char *f(void) { return 0; }")
        assert unit.functions[0].ctype.result.is_pointer


class TestStatements:
    def source_body(self, body):
        unit, _ = parse("void f(void) { %s }" % body)
        return unit.functions[0].body.body

    def test_if_else(self):
        (stmt,) = self.source_body("if (x) y = 1; else y = 2;")
        assert isinstance(stmt, A.IfStmt) and stmt.els is not None

    def test_while(self):
        (stmt,) = self.source_body("while (n) n = n - 1;")
        assert isinstance(stmt, A.WhileStmt)

    def test_do_while(self):
        (stmt,) = self.source_body("do n++; while (n < 3);")
        assert isinstance(stmt, A.DoWhileStmt)

    def test_for_with_decl_init(self):
        (stmt,) = self.source_body("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt, A.ForStmt)
        assert isinstance(stmt.init, A.DeclStmt)

    def test_switch(self):
        (stmt,) = self.source_body(
            "switch (x) { case 1: a = 1; break; default: a = 2; }")
        assert isinstance(stmt, A.SwitchStmt)
        assert stmt.cases[0][0] == 1
        assert stmt.cases[1][0] is None

    def test_break_continue_return(self):
        body = self.source_body("while (1) { break; } return 3;")
        assert isinstance(body[-1], A.ReturnStmt)

    def test_local_declarations(self):
        (stmt,) = self.source_body("int i = 1, j;")
        assert isinstance(stmt, A.DeclStmt)
        assert len(stmt.decls) == 2

    def test_empty_statement(self):
        (stmt,) = self.source_body(";")
        assert isinstance(stmt, A.ExprStmt) and stmt.expr is None


class TestExpressions:
    def expr(self, text):
        unit, _ = parse("int g; void f(void) { g = %s; }" % text)
        return unit.functions[0].body.body[0].expr.value

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, A.BinExpr) and e.op == "+"
        assert isinstance(e.right, A.BinExpr) and e.right.op == "*"

    def test_ternary(self):
        assert isinstance(self.expr("a ? b : c"), A.CondExpr)

    def test_call_and_field(self):
        e = self.expr("f(p->x, q.y)")
        assert isinstance(e, A.CallExpr)
        assert isinstance(e.args[0], A.FieldExpr) and e.args[0].arrow
        assert isinstance(e.args[1], A.FieldExpr) and not e.args[1].arrow

    def test_cast(self):
        e = self.expr("(char)300")
        assert isinstance(e, A.CastExpr)

    def test_sizeof_type_and_expr(self):
        assert isinstance(self.expr("sizeof(int)"), A.SizeofExpr)
        assert isinstance(self.expr("sizeof g"), A.SizeofExpr)

    def test_address_and_deref(self):
        e = self.expr("*&g")
        assert isinstance(e, A.UnaryExpr) and e.op == "*"

    def test_string_concatenation(self):
        unit, _ = parse('char *s = "ab" "cd";')
        assert unit.variables[0].init.expr.value == b"abcd"

    def test_logical_vs_bitwise(self):
        e = self.expr("a && b | c")
        assert isinstance(e, A.LogicalExpr) and e.op == "&&"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(MiniCSyntaxError):
            parse("int x")

    def test_bad_statement(self):
        with pytest.raises(MiniCSyntaxError):
            parse("void f(void) { case 1: ; }")

    def test_unterminated_block(self):
        with pytest.raises(MiniCSyntaxError):
            parse("void f(void) { if (1) {")
