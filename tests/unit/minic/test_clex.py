"""Unit tests for the C tokenizer."""

import pytest

from repro.minic.clex import CTokenStream, tokenize_c
from repro.minic.errors import MiniCSyntaxError


def texts(source):
    return [t.text for t in tokenize_c(source) if t.kind != "eof"]


class TestTokens:
    def test_simple(self):
        assert texts("int x = 5;") == ["int", "x", "=", "5", ";"]

    def test_c_has_no_duel_tokens(self):
        # a-->b in C is (a--) > b.
        assert texts("a-->b") == ["a", "--", ">", "b"]

    def test_comments_stripped(self):
        assert texts("a /* b */ c // d\n e") == ["a", "c", "e"]

    def test_multiline_comment_tracks_lines(self):
        toks = tokenize_c("/* one\ntwo */ x")
        assert toks[0].line == 2

    def test_floats(self):
        kinds = [t.kind for t in tokenize_c("1.5 .5 2e3 1.0f")
                 if t.kind != "eof"]
        assert kinds == ["fnum"] * 4

    def test_compound_assignments(self):
        assert texts("a += 1; b <<= 2;") == \
            ["a", "+=", "1", ";", "b", "<<=", "2", ";"]

    def test_spurious_equals_split(self):
        # The op regex could glue "]=" together; it must split.
        assert texts("a[0]=1") == ["a", "[", "0", "]", "=", "1"]
        assert texts("f()=x") == ["f", "(", ")", "=", "x"]

    def test_ellipsis(self):
        assert "..." in texts("int printf(char *, ...);")

    def test_strings_and_chars(self):
        toks = tokenize_c('"a\\"b" \'c\'')
        assert [t.kind for t in toks[:-1]] == ["string", "char"]

    def test_line_numbers(self):
        toks = tokenize_c("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(MiniCSyntaxError):
            tokenize_c("a @ b")


class TestStream:
    def test_accept_expect(self):
        s = CTokenStream("( x )")
        assert s.accept("(")
        assert s.expect_name().text == "x"
        s.expect(")")
        assert s.at_end

    def test_expect_failure(self):
        s = CTokenStream("x")
        with pytest.raises(MiniCSyntaxError):
            s.expect(";")

    def test_keyword_not_identifier(self):
        s = CTokenStream("while")
        with pytest.raises(MiniCSyntaxError):
            s.expect_name()
