"""Unit tests for name resolution (fetch) and the with stack."""

import pytest

from repro.core.errors import DuelNameError
from repro.core.scope import Scope, WithEntry
from repro.core.symbolic import SymText
from repro.core.values import int_value, lvalue
from repro.ctype.types import INT
from repro.target.interface import SimulatorBackend
from repro.target.program import TargetProgram


@pytest.fixture
def program():
    return TargetProgram()


@pytest.fixture
def scope(program):
    return Scope(SimulatorBackend(program))


class TestFetchOrder:
    def test_global_variable(self, scope, program):
        program.declare("int g;")
        v = scope.fetch("g")
        assert v.is_lvalue and v.ctype is INT

    def test_alias_shadows_global(self, scope, program):
        program.declare("int g;")
        scope.alias("g", int_value(99))
        assert scope.fetch("g").value == 99

    def test_with_field_shadows_alias(self, scope, program):
        program.declare("struct s {int g;} inst;")
        scope.alias("g", int_value(1))
        sym = program.lookup("inst")
        program.write_value(sym.address, INT, 42)
        scope.push(WithEntry(lvalue(sym.ctype, sym.address, SymText("inst")),
                             arrow=False))
        v = scope.fetch("g")
        assert v.is_lvalue and v.address == sym.address

    def test_innermost_with_wins(self, scope, program):
        program.declare("struct a {int f;} ia; struct b {int f;} ib;")
        sa, sb = program.lookup("ia"), program.lookup("ib")
        scope.push(WithEntry(lvalue(sa.ctype, sa.address, SymText("ia")),
                             arrow=False))
        scope.push(WithEntry(lvalue(sb.ctype, sb.address, SymText("ib")),
                             arrow=False))
        assert scope.fetch("f").address == sb.address

    def test_outer_with_searched(self, scope, program):
        program.declare("struct a2 {int fa;} ia2; struct b2 {int fb;} ib2;")
        sa, sb = program.lookup("ia2"), program.lookup("ib2")
        scope.push(WithEntry(lvalue(sa.ctype, sa.address, SymText("ia2")),
                             arrow=False))
        scope.push(WithEntry(lvalue(sb.ctype, sb.address, SymText("ib2")),
                             arrow=False))
        assert scope.fetch("fa").address == sa.address

    def test_enum_constant(self, scope, program):
        program.declare("enum e {ALPHA = 7};")
        assert scope.fetch("ALPHA").value == 7

    def test_function_symbol(self, scope, program):
        program.define_function("f", "int f(void)", lambda p: 0)
        v = scope.fetch("f")
        assert v.func_name == "f"

    def test_frame_locals_resolve(self, scope, program):
        frame = program.stack.push("fn")
        frame.declare("local", INT)
        assert scope.fetch("local").is_lvalue

    def test_unknown_raises(self, scope):
        with pytest.raises(DuelNameError):
            scope.fetch("nope")

    def test_lookup_counter(self, scope, program):
        program.declare("int g;")
        before = scope.lookup_count
        scope.fetch("g")
        scope.fetch("g")
        assert scope.lookup_count == before + 2


class TestUnderscore:
    def test_underscore_is_with_operand(self, scope):
        scope.push(WithEntry(int_value(5, SymText("x[3]")), arrow=False))
        v = scope.fetch("_")
        assert v.value == 5
        assert v.sym.render() == "x[3]"

    def test_underscore_without_with(self, scope):
        with pytest.raises(DuelNameError):
            scope.fetch("_")


class TestAliases:
    def test_alias_sym_is_name(self, scope):
        scope.alias("k", int_value(3, SymText("1+2")))
        assert scope.fetch("k").sym.render() == "k"

    def test_unalias(self, scope):
        scope.alias("k", int_value(3))
        scope.unalias("k")
        with pytest.raises(DuelNameError):
            scope.fetch("k")

    def test_clear_aliases(self, scope):
        scope.alias("a", int_value(1))
        scope.alias("b", int_value(2))
        scope.clear_aliases()
        assert scope.aliases() == {}

    def test_is_alias(self, scope):
        scope.alias("a", int_value(1))
        assert scope.is_alias("a") and not scope.is_alias("b")


class TestFieldSymbolics:
    def test_arrow_spelling(self, scope, program):
        program.declare("struct s3 {int f;} i3;")
        sym = program.lookup("i3")
        scope.push(WithEntry(lvalue(sym.ctype, sym.address, SymText("p")),
                             arrow=True))
        assert scope.fetch("f").sym.render() == "p->f"

    def test_dot_spelling(self, scope, program):
        program.declare("struct s4 {int f;} i4;")
        sym = program.lookup("i4")
        scope.push(WithEntry(lvalue(sym.ctype, sym.address, SymText("i4")),
                             arrow=False))
        assert scope.fetch("f").sym.render() == "i4.f"

    def test_chain_entry_extends(self, scope, program):
        program.declare("struct s5 {int v; struct s5 *next;} i5;")
        sym = program.lookup("i5")
        scope.push(WithEntry(lvalue(sym.ctype, sym.address, SymText("head")),
                             arrow=True, chain=True))
        v = scope.fetch("next")
        assert v.sym.render() == "head->next"
