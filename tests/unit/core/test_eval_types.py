"""DUEL over the full C type system: unions, enums, bitfields,
typedefs, nested records, multi-dimensional arrays."""

import pytest

from repro import DuelSession, SimulatorBackend
from repro.ctype.types import DOUBLE, INT


@pytest.fixture
def duel(program):
    return DuelSession(SimulatorBackend(program))


class TestBitfields:
    @pytest.fixture
    def flags(self, program, duel):
        program.declare("struct flags {unsigned ready:1; unsigned mode:3;"
                        " unsigned count:12;} fl;")
        return duel

    def test_read_write_fields(self, flags):
        flags.eval("fl.mode = 5 ;")
        flags.eval("fl.count = 1234 ;")
        assert flags.eval_values("fl.mode") == [5]
        assert flags.eval_values("fl.count") == [1234]
        assert flags.eval_values("fl.ready") == [0]

    def test_width_wraps(self, flags):
        flags.eval("fl.mode = 9 ;")  # 3 bits: 9 & 7 == 1
        assert flags.eval_values("fl.mode") == [1]

    def test_bitfield_arithmetic(self, flags):
        flags.eval("fl.count = 100 ;")
        assert flags.eval_values("fl.count * 2 + 1") == [201]

    def test_bitfield_in_generator(self, flags):
        flags.eval("fl.mode = 3 ;")
        assert flags.eval_values("(1..5) ==? fl.mode") == [3]


class TestUnions:
    def test_members_alias_storage(self, program, duel):
        program.declare("union pun {int i; unsigned u;} p;")
        duel.eval("p.i = -1 ;")
        assert duel.eval_values("p.u") == [2**32 - 1]

    def test_union_through_pointer(self, program, duel):
        program.declare("union pun2 {int i; char c;} q;")
        duel.eval("q.i = 65 ;")
        assert duel.eval_values("(&q)->c") == [65]


class TestEnums:
    @pytest.fixture
    def colors(self, program, duel):
        program.declare("enum color {RED, GREEN = 5, BLUE} c;")
        return duel

    def test_enum_constant_lookup(self, colors):
        assert colors.eval_values("GREEN") == [5]
        assert colors.eval_values("BLUE + RED") == [6]

    def test_enum_variable_display(self, colors):
        colors.eval("c = GREEN ;")
        assert colors.eval_lines("c") == ["c = GREEN"]

    def test_enum_comparison_yield(self, colors):
        colors.eval("c = BLUE ;")
        assert colors.eval_values("c ==? BLUE") == [6]

    def test_enum_in_range(self, colors):
        assert colors.eval_values("RED..GREEN") == [0, 1, 2, 3, 4, 5]


class TestTypedefs:
    def test_cast_through_target_typedef(self, program, duel):
        program.declare("typedef unsigned char byte; int v;")
        duel.eval("v = 300 ;")
        assert duel.eval_values("(byte)v") == [44]

    def test_duel_declaration_with_typedef(self, program, duel):
        program.declare("typedef long counter_t;")
        duel.eval("counter_t n;")
        # Note (long): in C, 1 << 40 overflows int — and does here too.
        duel.eval("n = (long)1 << 40 ;")
        assert duel.eval_values("n") == [1 << 40]
        assert duel.eval_values("1 << 40") == [0]  # int wraparound, as in C

    def test_sizeof_typedef(self, program, duel):
        program.declare("typedef double matrix_t[4];")
        assert duel.eval_values("sizeof(matrix_t)") == [32]


class TestNestedRecords:
    @pytest.fixture
    def nested(self, program, duel):
        program.declare(
            "struct inner {int x; int y;};"
            "struct outer {struct inner a; struct inner b;"
            " struct outer *link;} o1, o2;")
        return duel

    def test_nested_field_chains(self, nested):
        nested.eval("o1.a.x = 1 ; o1.b.y = 2 ;")
        assert nested.eval_values("o1.a.x + o1.b.y") == [3]

    def test_pointer_into_nested(self, nested):
        nested.eval("o1.link = &o2 ; o2.a.x = 9 ;")
        assert nested.eval_values("o1.link->a.x") == [9]

    def test_with_over_inner_struct(self, nested):
        nested.eval("o1.a.x = 7 ;")
        assert nested.eval_values("o1.a.(x * 2)") == [14]

    def test_struct_copy_assignment(self, nested):
        nested.eval("o2.a.x = 41 ; o2.a.y = 42 ;")
        nested.eval("o1.a = o2.a ;")
        assert nested.eval_values("o1.a.y") == [42]


class TestArrays:
    def test_multidim(self, program, duel):
        program.declare("int m[3][4];")
        duel.eval("m[1][2] = 7 ;")
        assert duel.eval_values("m[1][2]") == [7]
        assert duel.eval_values("#/(m[..3][..4])") == [12]

    def test_array_of_structs(self, program, duel):
        program.declare("struct pt {int x; int y;} pts[4];")
        duel.eval("pts[..4].x = 5 ;")
        assert duel.eval_values("+/(pts[..4].x)") == [20]

    def test_pointer_indexing(self, program, duel):
        program.declare("int a[8]; int *p;")
        duel.eval("a[..8] = 3 ; p = &a[2] ;")
        assert duel.eval_values("p[1]") == [3]
        assert duel.eval_values("*(p + 1)") == [3]

    def test_array_decay_difference(self, program, duel):
        program.declare("int b[8];")
        assert duel.eval_values("&b[4] - &b[0]") == [4]


class TestFloats:
    def test_double_variable(self, program, duel):
        program.declare("double d;")
        duel.eval("d = 2.5 ;")
        assert duel.eval_values("d * 2") == [5.0]

    def test_mixed_arithmetic_promotes(self, program, duel):
        program.declare("float f; int i;")
        duel.eval("f = 0.5 ; i = 2 ;")
        assert duel.eval_values("f + i") == [2.5]

    def test_float_formatting(self, program, duel):
        program.declare("double e;")
        duel.eval("e = 1.5 ;")
        assert duel.eval_lines("e") == ["e = 1.500"]


class TestStrings:
    def test_string_literal_comparison_via_strcmp(self, program, duel):
        from repro.target.stdlib import install_stdlib
        install_stdlib(program)
        assert duel.eval_values('strcmp("abc", "abc")') == [0]

    def test_string_literal_is_interned(self, program, duel):
        first = duel.eval_values('"hello"')
        second = duel.eval_values('"hello"')
        assert first == second  # same target address

    def test_char_pointer_display(self, program, duel):
        program.declare("char *msg;")
        duel.eval('msg = "hey" ;')
        assert duel.eval_lines("msg") == ['msg = "hey"']

    def test_index_into_literal(self, program, duel):
        assert duel.eval_values('"abc"[1]') == [98]
