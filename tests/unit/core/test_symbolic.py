"""Unit tests for symbolic-expression construction and rendering."""

from repro.core.symbolic import (
    PREC_ADDITIVE,
    PREC_MULTIPLICATIVE,
    SymBinary,
    SymCall,
    SymCast,
    SymChain,
    SymField,
    SymIndex,
    SymText,
    SymUnary,
    chain_of,
    extend_chain,
    with_lowered_fold,
)


class TestBasics:
    def test_text(self):
        assert SymText("x").render() == "x"

    def test_binary_no_spaces(self):
        # The paper prints 4+0*5, x[1]==7 — no whitespace.
        s = SymBinary("+", SymText("4"),
                      SymBinary("*", SymText("0"), SymText("5"),
                                PREC_MULTIPLICATIVE),
                      PREC_ADDITIVE)
        assert s.render() == "4+0*5"

    def test_parenthesisation(self):
        inner = SymBinary("+", SymText("1"), SymText("2"), PREC_ADDITIVE)
        outer = SymBinary("*", inner, SymText("3"), PREC_MULTIPLICATIVE)
        assert outer.render() == "(1+2)*3"

    def test_left_assoc_no_extra_parens(self):
        inner = SymBinary("-", SymText("1"), SymText("2"), PREC_ADDITIVE)
        outer = SymBinary("-", inner, SymText("3"), PREC_ADDITIVE)
        assert outer.render() == "1-2-3"

    def test_right_operand_same_level_parenthesised(self):
        inner = SymBinary("-", SymText("2"), SymText("3"), PREC_ADDITIVE)
        outer = SymBinary("-", SymText("1"), inner, PREC_ADDITIVE)
        assert outer.render() == "1-(2-3)"

    def test_unary(self):
        assert SymUnary("-", SymText("x")).render() == "-x"
        assert SymUnary("*", SymText("p")).render() == "*p"

    def test_index(self):
        assert SymIndex(SymText("x"), SymText("3")).render() == "x[3]"

    def test_field(self):
        assert SymField(SymText("p"), "scope").render() == "p->scope"
        assert SymField(SymText("s"), "f", arrow=False).render() == "s.f"

    def test_call(self):
        s = SymCall(SymText("f"), (SymText("1"), SymText("x")))
        assert s.render() == "f(1, x)"

    def test_cast(self):
        assert SymCast("double", SymText("3")).render() == "(double)3"


class TestChains:
    def test_chain_expands_below_threshold(self):
        c = SymChain(SymText("hash[0]"), "next", 3)
        assert c.render(fold=4) == "hash[0]->next->next->next"

    def test_chain_folds_at_threshold(self):
        c = SymChain(SymText("hash[287]"), "next", 8)
        assert c.render(fold=4) == "hash[287]-->next[[8]]"

    def test_zero_count_is_base(self):
        c = SymChain(SymText("head"), "next", 0)
        assert c.render() == "head"

    def test_field_on_folded_chain(self):
        c = SymChain(SymText("hash[287]"), "next", 8)
        s = SymField(c, "scope")
        assert s.render(fold=4) == "hash[287]-->next[[8]]->scope"

    def test_fold_at_override(self):
        c = SymChain(SymText("head"), "next", 3, fold_at=2)
        assert c.render(fold=4) == "head-->next[[3]]"

    def test_extend_chain_same_field(self):
        base = SymText("head")
        c1 = extend_chain(base, "next")
        c2 = extend_chain(c1, "next")
        assert isinstance(c2, SymChain) and c2.count == 2
        assert c2.render(fold=4) == "head->next->next"

    def test_extend_chain_field_switch(self):
        c1 = extend_chain(SymText("root"), "left")
        c2 = extend_chain(c1, "right")
        assert c2.render(fold=4) == "root->left->right"

    def test_chain_of_finds_spine(self):
        c = SymChain(SymText("L"), "next", 4)
        assert chain_of(SymField(c, "value")) is c
        assert chain_of(SymText("x")) is None

    def test_with_lowered_fold_clones(self):
        c = SymChain(SymText("L"), "next", 3)
        wrapped = SymField(c, "value")
        lowered = with_lowered_fold(wrapped, 2)
        assert lowered.render(fold=4) == "L-->next[[3]]->value"
        # Original untouched.
        assert wrapped.render(fold=4) == "L->next->next->next->value"
