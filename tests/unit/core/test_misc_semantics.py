"""Remaining semantic corners: strict cycle mode, frame(), error
formatting, session switches."""

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import DuelEvalLimit, DuelSyntaxError
from repro.target import builder


class TestCycleModes:
    @pytest.fixture
    def ring_program(self):
        program = TargetProgram()
        builder.linked_list(program, "ring", [1, 2, 3], cycle_to=0)
        return program

    def test_stop_mode_terminates(self, ring_program):
        duel = DuelSession(SimulatorBackend(ring_program),
                           cycle_mode="stop")
        assert duel.eval_values("ring-->next->value") == [1, 2, 3]

    def test_strict_mode_mimics_original(self, ring_program):
        # Paper: "the current implementation does not handle cycles."
        # Strict mode reproduces that: the walk loops until the guard.
        duel = DuelSession(SimulatorBackend(ring_program),
                           cycle_mode="strict")
        duel.evaluator.options.max_expand = 1000
        with pytest.raises(DuelEvalLimit):
            duel.eval("ring-->next->value")

    def test_strict_mode_fine_on_acyclic(self, ring_program):
        builder.linked_list(ring_program, "line", [7, 8])
        duel = DuelSession(SimulatorBackend(ring_program),
                           cycle_mode="strict")
        assert duel.eval_values("line-->next->value") == [7, 8]


class TestFrameExpression:
    def test_frame_scope_lookup(self, program):
        from repro.ctype.types import INT
        outer = program.stack.push("outer")
        outer.declare("depth", INT)
        program.write_value(outer.symbols.lookup("depth").address, INT, 1)
        inner = program.stack.push("inner")
        inner.declare("depth", INT)
        program.write_value(inner.symbols.lookup("depth").address, INT, 2)
        duel = DuelSession(SimulatorBackend(program))
        # Bare name: innermost frame.
        assert duel.eval_values("depth") == [2]
        # frame(i).name: explicit frames, 0 = innermost.
        assert duel.eval_values("frame(0).depth") == [2]
        assert duel.eval_values("frame(1).depth") == [1]

    def test_frame_generator(self, program):
        from repro.ctype.types import INT
        for level in range(3):
            frame = program.stack.push(f"f{level}")
            frame.declare("lvl", INT)
            program.write_value(frame.symbols.lookup("lvl").address,
                                INT, level)
        duel = DuelSession(SimulatorBackend(program))
        # The paper's Discussion scenario: one local across all frames.
        assert duel.eval_values("frame(..3).lvl") == [2, 1, 0]

    def test_out_of_range_frames_skipped(self, program):
        duel = DuelSession(SimulatorBackend(program))
        assert duel.eval_values("frame(0..5)") == []


class TestSyntaxErrorReporting:
    def test_caret_points_at_error(self):
        with pytest.raises(DuelSyntaxError) as info:
            DuelSession(SimulatorBackend(TargetProgram())).eval("1 + $")
        message = str(info.value)
        assert "1 + $" in message
        assert "^" in message
        caret_line = message.splitlines()[-1]
        assert caret_line.index("^") == 4

    def test_unbalanced_select(self):
        with pytest.raises(DuelSyntaxError):
            DuelSession(SimulatorBackend(TargetProgram())).eval("x[[1]")


class TestSessionSwitches:
    def test_fold_threshold_configurable(self, paper):
        tight = DuelSession(SimulatorBackend(paper), fold=2)
        lines = tight.eval_lines("hash[0]-->next->scope")
        # With fold=2 even short chains use the [[k]] notation.
        assert lines[2] == "hash[0]-->next[[2]]->scope = 2"

    def test_max_steps_configurable(self, paper):
        limited = DuelSession(SimulatorBackend(paper), max_steps=50)
        with pytest.raises(DuelEvalLimit):
            limited.eval("#/(0..10000)")

    def test_float_format_configurable(self, program):
        program.declare("double d;")
        gdb_style = DuelSession(SimulatorBackend(program),
                                float_format="%g")
        gdb_style.eval("d = 2.5 ;")
        assert gdb_style.eval_lines("d") == ["d = 2.5"]
