"""Unit tests for value formatting and the session display rules."""

import io

import pytest

from repro import DuelSession, SimulatorBackend
from repro.core.format import ValueFormatter, escape_char
from repro.core.symbolic import SymText
from repro.core.values import ValueOps, lvalue, rvalue
from repro.ctype.types import CHAR, DOUBLE, INT, PointerType


@pytest.fixture
def formatter(program):
    return ValueFormatter(ValueOps(SimulatorBackend(program)),
                          float_format="%.3f")


class TestEscape:
    def test_printable(self):
        assert escape_char(ord("a")) == "a"

    def test_specials(self):
        assert escape_char(10) == "\\n"
        assert escape_char(0) == "\\000"
        assert escape_char(ord("'")) == "\\'"

    def test_octal_fallback(self):
        assert escape_char(1) == "\\001"
        assert escape_char(200) == "\\310"


class TestScalars:
    def test_int(self, formatter):
        assert formatter.format(rvalue(INT, -5, SymText("v"))) == "-5"

    def test_double_paper_style(self, formatter):
        assert formatter.format(rvalue(DOUBLE, 2.5, SymText("v"))) == "2.500"

    def test_char_with_glyph(self, formatter):
        assert formatter.format(rvalue(CHAR, 65, SymText("v"))) == "65 'A'"

    def test_null_pointer(self, formatter):
        p = rvalue(PointerType(INT), 0, SymText("p"))
        assert formatter.format(p) == "0x0"

    def test_pointer_hex(self, formatter):
        p = rvalue(PointerType(INT), 0x16820, SymText("p"))
        assert formatter.format(p) == "0x16820"

    def test_char_pointer_chases_string(self, formatter, program):
        addr = program.intern_string("duel")
        p = rvalue(PointerType(CHAR), addr, SymText("s"))
        assert formatter.format(p) == '"duel"'

    def test_char_pointer_bad_address_falls_back_to_hex(self, formatter):
        p = rvalue(PointerType(CHAR), 0x99999999, SymText("s"))
        assert formatter.format(p) == "0x99999999"

    def test_enum_by_name(self, formatter, program):
        program.declare("enum color {RED, GREEN} c;")
        e = program.types.enums["color"]
        assert formatter.format(rvalue(e, 1, SymText("c"))) == "GREEN"
        assert formatter.format(rvalue(e, 9, SymText("c"))) == "9"


class TestAggregates:
    def test_struct(self, formatter, program):
        program.declare("struct pt {int x; int y;} p;")
        sym = program.lookup("p")
        program.write_value(sym.address, INT, 3)
        program.write_value(sym.address + 4, INT, 4)
        out = formatter.format(lvalue(sym.ctype, sym.address, SymText("p")))
        assert out == "{x = 3, y = 4}"

    def test_int_array(self, formatter, program):
        from repro.target import builder
        sym = builder.int_array(program, "a", [1, 2, 3])
        out = formatter.format(lvalue(sym.ctype, sym.address, SymText("a")))
        assert out == "{1, 2, 3}"

    def test_char_array_as_string(self, formatter, program):
        (sym,) = program.declare("char buf[8];")
        program.memory.write(sym.address, b"hi\0")
        out = formatter.format(lvalue(sym.ctype, sym.address, SymText("b")))
        assert out == '"hi"'


class TestSessionDisplay:
    def test_constant_only_joined_line(self, empty_session):
        assert empty_session.eval_lines("(1..3)+(5,9)") == ["6 10 7 11 8 12"]

    def test_constant_float_paper_output(self, empty_session):
        assert empty_session.eval_lines("1 + (double)3/2") == ["2.500"]

    def test_stateful_prints_sym_equals_value(self, array_session):
        assert array_session.eval_lines("x[2]") == ["x[2] = 7"]

    def test_reduction_prints_bare_value(self, array_session):
        assert array_session.eval_lines("#/(x[..10])") == ["10"]

    def test_empty_output(self, empty_session):
        assert empty_session.eval_lines("1..0") == []

    def test_duel_prints_to_stream(self, array_session):
        out = io.StringIO()
        array_session.duel("x[2]", out=out)
        assert out.getvalue() == "x[2] = 7\n"

    def test_duel_prints_errors_not_raises(self, empty_session):
        out = io.StringIO()
        empty_session.duel("nosuch", out=out)
        assert "no symbol" in out.getvalue()

    def test_aliases_persist_across_commands(self, empty_session):
        empty_session.eval("v := 41")
        assert empty_session.eval_values("v + 1") == [42]
        empty_session.clear_aliases()
        from repro.core.errors import DuelNameError
        with pytest.raises(DuelNameError):
            empty_session.eval("v")

    def test_values_line(self, empty_session):
        assert empty_session.values_line("(1,2)+10") == "11 12"

    def test_non_symbolic_mode_prints_values(self, program):
        from repro.target import builder
        builder.int_array(program, "x", [5, -6])
        duel = DuelSession(SimulatorBackend(program), symbolic=False)
        assert duel.eval_lines("x[..2]") == ["5", "-6"]

    def test_lookup_count_increases(self, array_session):
        before = array_session.lookup_count
        array_session.eval("x[..10]")
        assert array_session.lookup_count == before + 1
