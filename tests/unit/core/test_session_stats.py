"""Session reuse: per-query stats must be zeroed between queries.

The observability PR's satellite requirement: a long-lived session
(the REPL) runs many queries through one Evaluator; governor counters
and traffic deltas must reset cleanly so identical back-to-back
queries report identical per-query stats — no leakage from the
previous query.
"""

import io

import pytest


def run(session, text):
    session.duel(text, out=io.StringIO())
    return dict(session.last_query_stats)


def strip_wall(stats):
    return {k: v for k, v in stats.items() if k != "wall_ms"}


class TestPerQueryStatsReset:
    def test_identical_queries_report_identical_stats(self, session):
        first = run(session, "x[..10] >? 5")
        second = run(session, "x[..10] >? 5")
        assert strip_wall(first) == strip_wall(second)
        assert first["steps"] > 0
        assert first["reads"] > 0

    def test_cheap_query_after_expensive_one(self, session):
        run(session, "x[..10] !=? 0")
        cheap = run(session, "x[3]")
        assert cheap["steps"] < 10
        assert cheap["reads"] < 5
        assert cheap["lines"] == 1

    def test_governor_counters_zeroed_by_reset(self, session):
        run(session, "x[..10] >? 5")
        assert session.governor.steps > 0
        session.evaluator.reset()
        governor = session.governor
        assert (governor.steps, governor.expands, governor.lines,
                governor.calls, governor.allocs) == (0, 0, 0, 0, 0)

    def test_compile_error_clears_stale_stats(self, session):
        run(session, "x[..10] >? 5")
        session.duel("x[..", out=io.StringIO())
        assert session.last_query_stats == {}

    def test_explain_and_duel_report_same_work(self, session):
        explained = None
        session.explain("x[..10] >? 5", out=io.StringIO())
        explained = dict(session.last_query_stats)
        plain = run(session, "x[..10] >? 5")
        for key in ("steps", "lines", "reads", "writes", "calls"):
            assert explained[key] == plain[key]

    def test_traced_queries_report_same_stats_as_untraced(self, session):
        untraced = run(session, "x[..10] >? 5")
        session.tracing = True
        try:
            traced = run(session, "x[..10] >? 5")
        finally:
            session.tracing = False
        assert strip_wall(untraced) == strip_wall(traced)
