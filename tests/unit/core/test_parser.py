"""Unit tests for the DUEL parser: precedence, shapes, and errors.

ASTs are pinned with the paper's LISP-like sexpr notation.
"""

import pytest

from repro.core.errors import DuelSyntaxError
from repro.core.parser import parse


def sexpr(text, **kw):
    return parse(text, **kw).sexpr()


class TestPaperAst:
    def test_paper_example_ast(self):
        # The paper's own example AST: a*5 + *b.
        assert sexpr("a*5 + *b") == (
            '(plus (multiply (name "a") (constant 5))'
            ' (indirect (name "b")))')

    def test_to_alternate(self):
        assert sexpr("(1..3)+(5,9)") == (
            "(plus (to (constant 1) (constant 3))"
            " (alternate (constant 5) (constant 9)))")

    def test_ifgt_ast(self):
        assert sexpr("x[0..99] >? 0") == (
            '(ifgt (index (name "x") (to (constant 0) (constant 99)))'
            " (constant 0))")


class TestPrecedence:
    def test_multiplicative_over_additive(self):
        assert sexpr("1+2*3") == \
            "(plus (constant 1) (multiply (constant 2) (constant 3)))"

    def test_comparison_tighter_than_to(self):
        # e1..e2 binds looser than relational operators.
        assert sexpr("1..2<3").startswith("(to (constant 1) (lt")

    def test_alternate_looser_than_to(self):
        assert sexpr("1..4,8") == \
            "(alternate (to (constant 1) (constant 4)) (constant 8))"

    def test_conditional_yield_left_assoc(self):
        assert sexpr("x >? 5 <? 10") == \
            '(iflt (ifgt (name "x") (constant 5)) (constant 10))'

    def test_define_tighter_than_imply(self):
        assert sexpr("x := 1 => y := 2 => y") == (
            '(imply (define "x" (constant 1))'
            ' (imply (define "y" (constant 2)) (name "y")))')

    def test_assignment_right_assoc(self):
        assert sexpr("a = b = 0") == (
            '(assign (name "a") (assign (name "b") (constant 0)))')

    def test_sequence_lowest(self):
        assert sexpr("a; b; c") == (
            '(sequence (sequence (name "a") (name "b")) (name "c"))')

    def test_trailing_semicolon(self):
        assert sexpr("a = 0 ;") == \
            '(sequence (assign (name "a") (constant 0)))'

    def test_question_colon_desugars_to_if(self):
        assert sexpr("a ? b : c") == '(if (name "a") (name "b") (name "c"))'

    def test_shift_vs_relational(self):
        assert sexpr("1<<2<3").startswith("(lt (shl")


class TestPostfix:
    def test_dfs_then_field(self):
        # hash[0]-->next->scope == ((hash[0]-->next)->scope)
        assert sexpr("hash[0]-->next->scope") == (
            '(witharrow (dfs (index (name "hash") (constant 0))'
            ' (name "next")) (name "scope"))')

    def test_with_general_rhs(self):
        assert sexpr("p->(a,b)") == (
            '(witharrow (name "p") (alternate (name "a") (name "b")))')

    def test_dot_with(self):
        assert sexpr("s.f") == '(with (name "s") (name "f"))'

    def test_bfs_extension(self):
        assert sexpr("p-->>next").startswith("(bfs")

    def test_select(self):
        assert sexpr("g[[2]]") == '(select (name "g") (constant 2))'

    def test_nested_brackets_split(self):
        assert sexpr("a[b[c[0]]]") == (
            '(index (name "a") (index (name "b")'
            ' (index (name "c") (constant 0))))')

    def test_index_alias(self):
        assert sexpr("L#i") == '(indexalias "i" (name "L"))'

    def test_until_with_constant(self):
        assert sexpr("argv[0..]@0") == (
            '(until (index (name "argv") (to unbounded (constant 0)))'
            " (constant 0))")

    def test_until_with_guard_expr(self):
        assert "(until" in sexpr("s[..9]@(_==0)")

    def test_postfix_incdec(self):
        assert sexpr("i++") == '(postinc (name "i"))'
        assert sexpr("--i") == '(predec (name "i"))'

    def test_call_args_at_imply_level(self):
        assert sexpr("f((3,4), 5..7)") == (
            '(call (name "f") (alternate (constant 3) (constant 4))'
            " (to (constant 5) (constant 7)))")


class TestControlExpressions:
    def test_if_as_operand(self):
        assert sexpr("4 + if (c) 5") == \
            '(plus (constant 4) (if (name "c") (constant 5)))'

    def test_if_else_chain(self):
        out = sexpr("if (a) b else if (c) d else e")
        assert out == ('(if (name "a") (name "b") (if (name "c")'
                       ' (name "d") (name "e")))')

    def test_if_body_greedy(self):
        # The body captures the comparison: if (next) scope <? next->scope
        out = sexpr("if (n) a <? b")
        assert out == '(if (name "n") (iflt (name "a") (name "b")))'

    def test_for_expression(self):
        out = sexpr("for (i = 0; i < 9; i++) i")
        assert out.startswith("(for (assign")

    def test_for_empty_clauses(self):
        assert sexpr("for (;;) 1") == "(for (constant 1))"

    def test_while_expression(self):
        assert sexpr("while (x) y") == '(while (name "x") (name "y"))'


class TestGroupsAndReductions:
    def test_group(self):
        assert sexpr("{i}*5") == \
            '(multiply (group (name "i")) (constant 5))'

    def test_count(self):
        assert sexpr("#/x") == '(count (name "x"))'

    @pytest.mark.parametrize("spelling,op", [
        ("+/", "sum"), ("*/", "product"), ("&&/", "all"),
        ("||/", "any"), ("<?/", "min"), (">?/", "max"),
    ])
    def test_apl_reductions(self, spelling, op):
        assert sexpr(f"{spelling}x") == f'({op} (name "x"))'

    def test_prefix_to(self):
        assert sexpr("..10") == "(to prefix (constant 10))"


class TestDeclarationsAndCasts:
    def test_declaration_statement(self):
        assert sexpr("int i; i") == \
            '(sequence (decl "int i;") (name "i"))'

    def test_declaration_requires_type(self):
        # a bare name is an expression, not a declaration
        assert sexpr("i") == '(name "i")'

    def test_cast(self):
        assert sexpr("(double)3/2") == \
            '(divide (cast "double" (constant 3)) (constant 2))'

    def test_struct_cast(self):
        assert sexpr("(struct s *)p") == '(cast "struct s *" (name "p"))'

    def test_typedef_cast_needs_predicate(self):
        # Without the predicate, (size_t)x parses as a call.
        assert sexpr("(size_t)(x)").startswith("(call")
        out = sexpr("(size_t)(x)", is_type_name=lambda n: n == "size_t")
        assert out == '(cast "size_t" (name "x"))'

    def test_sizeof_type(self):
        assert sexpr("sizeof(struct s)") == '(sizeof "struct s")'

    def test_sizeof_expr(self):
        assert sexpr("sizeof x") == '(sizeof (name "x"))'


class TestStrings:
    def test_string_literal(self):
        assert sexpr('"abc"') == '(string "abc")'

    def test_char_constant(self):
        assert sexpr("'\\0'") == "(constant '\\0')"


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(DuelSyntaxError):
            parse("(1 + 2")

    def test_trailing_tokens(self):
        with pytest.raises(DuelSyntaxError):
            parse("1 2")

    def test_alias_needs_name(self):
        with pytest.raises(DuelSyntaxError):
            parse("x[0] := 5")

    def test_keyword_as_expression(self):
        with pytest.raises(DuelSyntaxError):
            parse("else")

    def test_empty_input(self):
        with pytest.raises(DuelSyntaxError):
            parse("")

    def test_bad_with_operand(self):
        with pytest.raises(DuelSyntaxError):
            parse("p->5")

    def test_index_alias_needs_name(self):
        with pytest.raises(DuelSyntaxError):
            parse("x#5")
