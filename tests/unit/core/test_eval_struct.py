"""Unit tests for the structural operators: with, -->, select, #, @."""

import pytest

from repro.core.errors import DuelMemoryError, DuelTypeError


def values(session, text):
    return session.eval_values(text)


def lines(session, text):
    return session.eval_lines(text)


class TestWith:
    def test_arrow_field(self, session):
        assert values(session, "hash[42]->scope") == [7]

    def test_field_alternation(self, session):
        got = lines(session, "hash[1,9]->(scope,name)")
        assert got == [
            "hash[1]->scope = 3",
            'hash[1]->name = "x"',
            "hash[9]->scope = 2",
            'hash[9]->name = "abc"',
        ]

    def test_null_pointer_generates_nothing(self, session):
        # bucket 7 is empty in the fixture.
        assert values(session, "hash[7]->scope") == []

    def test_underscore_refers_to_operand(self, session):
        got = lines(session, "x[..10].if (_ < 0 || _ > 100) _")
        # x fixture: [3, -1, 7, 0, 12, -9, 2, 120, 5, -4]
        assert got == ["x[1] = -1", "x[5] = -9", "x[7] = 120", "x[9] = -4"]

    def test_alias_vs_underscore_output(self, session):
        # Aliased form shows the alias name, not the array element.
        got = lines(session, "y := x[..10] => if (y < 0 || y > 100) y")
        assert got[0] == "y = -1"

    def test_nested_with_scopes(self, session):
        # Inner with shadows outer for same-named fields.
        got = values(session, "hash[42]->(next->scope)")
        assert got == [2]

    def test_arrow_on_non_pointer_rejected(self, session):
        with pytest.raises(DuelTypeError):
            values(session, "x[0]->scope")

    def test_generalized_scope_falls_through(self, session):
        # Names that are not fields resolve in outer scopes.
        session.eval("k := 5")
        assert values(session, "hash[42]->(scope + k)") == [12]


class TestExpand:
    def test_list_walk(self, session):
        assert values(session, "L-->next->value")[:4] == [10, 20, 30, 40]

    def test_list_walk_count(self, session):
        assert values(session, "#/(L-->next)") == [10]

    def test_tree_preorder(self, session):
        assert values(session, "root-->(left,right)->key") == [9, 3, 4, 5, 12]

    def test_bfs_level_order(self, session):
        assert values(session, "root-->>(left,right)->key") == [9, 3, 12, 4, 5]

    def test_guided_traversal(self, session):
        got = values(session,
                     "root-->(if (key > 5) left else if (key < 5) right)"
                     "->key")
        assert got == [9, 3, 5]

    def test_null_root_empty(self, session):
        assert values(session, "hash[7]-->next") == []

    def test_dfs_symbolic_folding(self, session):
        got = lines(session, "hash[0]-->next->scope")
        assert got == [
            "hash[0]->scope = 4",
            "hash[0]->next->scope = 3",
            "hash[0]->next->next->scope = 2",
            "hash[0]->next->next->next->scope = 1",
        ]

    def test_sortedness_query_folds_deep_chain(self, session):
        got = lines(session,
                    "hash[..1024]-->next-> if (next) scope <? next->scope")
        assert got == ["hash[287]-->next[[8]]->scope = 5"]

    def test_cycle_detection_stops(self, program):
        from repro import DuelSession, SimulatorBackend
        from repro.target import builder
        builder.linked_list(program, "ring", [1, 2, 3], cycle_to=0)
        duel = DuelSession(SimulatorBackend(program))
        assert duel.eval_values("ring-->next->value") == [1, 2, 3]

    def test_invalid_pointer_terminates_walk(self, program):
        from repro import DuelSession, SimulatorBackend
        from repro.target import builder
        sym = builder.linked_list(program, "L", [1, 2, 3])
        node = program.types.structs["node"]
        from repro.ctype.types import PointerType
        ptr = PointerType(node)
        head = program.read_value(sym.address, ptr)
        second = program.read_value(head + node.field("next").offset, ptr)
        program.write_value(second + node.field("next").offset, ptr,
                            0xBAD00000)
        duel = DuelSession(SimulatorBackend(program))
        assert duel.eval_values("L-->next->value") == [1, 2]


class TestSelect:
    def test_zero_based(self, empty_session):
        assert values(empty_session, "(10..30)[[3..5]]") == [13, 14, 15]

    def test_paper_multiplication_table(self, empty_session):
        got = lines(empty_session, "((1..9)*(1..9))[[52,74]]")
        assert got == ["48 27"]

    def test_select_on_dfs_lowers_fold(self, session):
        got = lines(session, "head-->next->value[[3,5]]")
        assert got == [
            "head-->next[[3]]->value = 33",
            "head-->next[[5]]->value = 29",
        ]

    def test_out_of_range_selector_ignored(self, empty_session):
        assert values(empty_session, "(1..3)[[7]]") == []
        assert values(empty_session, "(1..3)[[-1]]") == []

    def test_unordered_selectors(self, empty_session):
        assert values(empty_session, "(10..20)[[5,2]]") == [15, 12]


class TestIndexAliasAndUntil:
    def test_index_alias_positions(self, empty_session):
        got = values(empty_session, "(5,6,7)#i => {i}")
        assert got == [0, 1, 2]

    def test_paper_duplicate_query(self, session):
        got = lines(session,
                    "L-->next#i->value ==? L-->next#j->value => "
                    "if (i < j) L-->next[[i,j]]->value")
        assert got == [
            "L-->next[[4]]->value = 27",
            "L-->next[[9]]->value = 27",
        ]

    def test_until_constant(self, session):
        assert values(session, "(1..9)@4") == [1, 2, 3]

    def test_until_guard_expression(self, session):
        assert values(session, "(1..9)@(_ > 4)") == [1, 2, 3, 4]

    def test_until_never_fires(self, empty_session):
        assert values(empty_session, "(1..3)@99") == [1, 2, 3]

    def test_argv_idiom(self, session):
        got = lines(session, "argv[0..]@0")
        assert got == ['argv[0] = "prog"', 'argv[1] = "-v"',
                       'argv[2] = "file.c"']

    def test_string_idiom(self, program):
        from repro import DuelSession, SimulatorBackend
        from repro.ctype.types import CHAR, PointerType
        sym = program.define("s", PointerType(CHAR))
        program.write_value(sym.address, PointerType(CHAR),
                            program.alloc_string("ab"))
        duel = DuelSession(SimulatorBackend(program))
        assert duel.eval_values("s[0..999]@0") == [97, 98]


class TestAssignmentThroughGenerators:
    def test_clear_all_heads(self, session):
        session.eval("hash[0..1023]->scope = 0 ;")
        assert values(session, "(hash[..1024] !=? 0)->scope >? 0") == []

    def test_alias_chain_assignment(self, session):
        session.eval("x2 := hash[..1024] !=? 0 => y2 := x2->scope => y2 = 0")
        assert values(session, "(hash[..1024] !=? 0)->scope >? 0") == []

    def test_conditional_field_update(self, session):
        session.eval("hash[..1024]-->next->(if (scope > 5) scope = 0) ;")
        assert values(session, "#/(hash[..1024]-->next->scope >? 5)") == [0]


class TestErrors:
    def test_memory_error_format(self, program):
        from repro import DuelSession, SimulatorBackend
        from repro.ctype.types import PointerType, INT
        sym = program.define("ptr", PointerType(INT))
        program.write_value(sym.address, PointerType(INT), 0x16820)
        duel = DuelSession(SimulatorBackend(program))
        with pytest.raises(DuelMemoryError) as info:
            duel.eval("*ptr")
        message = str(info.value)
        assert "Illegal memory reference" in message
        assert "ptr = lvalue 0x16820" in message

    def test_arrow_error_pattern(self, program):
        from repro import DuelSession, SimulatorBackend
        program.declare("struct cell {int val; struct cell *next;} *bad;")
        sym = program.lookup("bad")
        program.write_value(sym.address, sym.ctype, 0xDEAD)
        duel = DuelSession(SimulatorBackend(program))
        with pytest.raises(DuelMemoryError) as info:
            duel.eval("bad->val")
        assert "in x of x->y" in str(info.value)
