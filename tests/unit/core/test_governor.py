"""The query resource governor: deadlines, quotas, cancellation,
graceful truncation — and the closed state-machine budget bypass."""

import io
import time

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import (
    DuelCancelled,
    DuelEvalLimit,
    DuelTruncation,
)
from repro.core.governor import CancelToken, ResourceGovernor
from repro.core.statemachine import StateMachineEvaluator
from repro.target import builder


# -- the governor object itself -----------------------------------------

class TestGovernorApi:
    def test_defaults_and_set_limit(self):
        governor = ResourceGovernor()
        assert governor.limits["steps"] == 10_000_000
        governor.set_limit("steps", 42)
        assert governor.limits["steps"] == 42
        governor.set_limit("steps", 0)          # 0 disables
        assert governor.limits["steps"] is None

    def test_unknown_limit_rejected(self):
        with pytest.raises(ValueError):
            ResourceGovernor().set_limit("bananas", 3)
        with pytest.raises(ValueError):
            ResourceGovernor().set_policy("steps", "explode")

    def test_begin_query_resets_counters_and_token(self):
        governor = ResourceGovernor()
        governor.step()
        governor.token.trip()
        governor.begin_query()
        assert governor.steps == 0
        assert not governor.token.tripped

    def test_stats_shape(self):
        stats = ResourceGovernor().stats()
        assert set(stats) == {"steps", "expand", "lines", "calls",
                              "allocs", "symnodes", "wall_ms"}

    def test_raise_policy(self):
        governor = ResourceGovernor()
        governor.set_limit("steps", 2)
        governor.set_policy("steps", "raise")
        governor.step()
        governor.step()
        with pytest.raises(DuelEvalLimit) as info:
            governor.step()
        assert not isinstance(info.value, DuelTruncation)
        assert info.value.kind == "steps"

    def test_truncate_policy(self):
        governor = ResourceGovernor()
        governor.set_limit("steps", 1)
        governor.step()
        with pytest.raises(DuelTruncation) as info:
            governor.step()
        assert "step budget exhausted" in info.value.diagnostic(1)


class TestCancelToken:
    def test_trip_and_clear(self):
        token = CancelToken()
        assert not token.tripped
        token.trip("because")
        assert token.tripped and token.reason == "because"
        token.clear()
        assert not token.tripped

    def test_checkpoint_raises_cancelled(self):
        governor = ResourceGovernor()
        governor.token.trip()
        with pytest.raises(DuelCancelled) as info:
            governor.checkpoint()
        assert info.value.kind == "cancel"
        assert "interrupted" in info.value.diagnostic(5)


# -- wall-clock deadline ------------------------------------------------

class TestDeadline:
    def test_deadline_expiry_truncates(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              deadline_ms=1, max_steps=0, max_lines=0)
        with pytest.raises(DuelTruncation) as info:
            session.eval("#/(0..)")
        assert info.value.kind == "deadline_ms"
        assert "wall-clock deadline expired" in info.value.diagnostic(0)

    def test_deadline_off_does_not_trip(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              deadline_ms=0)
        assert session.eval_values("#/(0..5000)") == [5001]

    def test_deadline_is_per_query(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              deadline_ms=5_000)
        session.eval("1+1")
        time.sleep(0.01)                        # old stamp must not leak
        assert session.eval_values("2+2") == [4]


# -- output quota and graceful truncation -------------------------------

class TestOutputTruncation:
    def test_line_quota_keeps_partial_results(self, array_session):
        array_session.governor.set_limit("lines", 5)
        out = io.StringIO()
        array_session.duel("x[..10]", out=out)
        lines = out.getvalue().splitlines()
        assert lines[:2] == ["x[0] = 3", "x[1] = -1"]
        assert len(lines) == 6                  # 5 values + diagnostic
        assert lines[-1] == ("(stopped: 5 values, output quota "
                             "exhausted; raise with 'limits lines 10')")

    def test_constant_path_keeps_partial_line(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_lines=50)
        out = io.StringIO()
        session.duel("1..", out=out)
        first, diagnostic = out.getvalue().splitlines()
        assert first.split() == [str(i) for i in range(1, 51)]
        assert "output quota exhausted" in diagnostic

    def test_truncated_session_stays_usable(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_lines=10)
        session.duel("1..", out=io.StringIO())
        assert session.eval_values("#/(1..10)") == [10]

    def test_truncation_keeps_applied_side_effects(self, array_session):
        """Truncation is the paper's ^C: work already done stands (no
        rollback), work not yet done never happens."""
        array_session.governor.set_limit("lines", 3)
        out = io.StringIO()
        array_session.duel("x[..10] = 0", out=out)
        assert "output quota exhausted" in out.getvalue()
        array_session.governor.set_limit("lines", 10_000)
        values = array_session.eval_values("x[..10]")
        assert values[:3] == [0, 0, 0]          # applied, kept
        assert values[3:] == [0, 12, -9, 2, 120, 5, -4]  # never driven

    def test_eval_lines_raises_truncation_for_collectors(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_lines=5)
        with pytest.raises(DuelTruncation):
            session.eval_lines("0..100")


# -- target-side quotas (raise policy: rollback applies) ----------------

class TestTargetQuotas:
    def test_call_quota(self, program):
        session = DuelSession(SimulatorBackend(program))
        session.governor.set_limit("calls", 2)
        with pytest.raises(DuelEvalLimit) as info:
            session.eval('strlen("a") + strlen("bb") + strlen("ccc")')
        assert info.value.kind == "calls"

    def test_alloc_quota(self, program):
        session = DuelSession(SimulatorBackend(program))
        session.governor.set_limit("allocs", 1)
        with pytest.raises(DuelEvalLimit) as info:
            session.eval("int qa; int qb;")
        assert info.value.kind == "allocs"

    def test_symnode_budget(self, array_session):
        array_session.governor.set_limit("symnodes", 10)
        with pytest.raises(DuelEvalLimit) as info:
            array_session.eval("x[..10] + x[..10]")
        assert info.value.kind == "symnodes"


# -- cooperative cancellation mid-drive ---------------------------------

class _TrippingOut(io.StringIO):
    """An output stream that trips a cancel token after N writes."""

    def __init__(self, token, after: int):
        super().__init__()
        self.token = token
        self.after = after
        self.writes = 0

    def write(self, text: str):
        self.writes += 1
        if self.writes >= self.after:
            self.token.trip("interrupt")
        return super().write(text)


class TestCancellation:
    def test_token_trip_mid_drive_yields_partials(self, array_session):
        out = _TrippingOut(array_session.governor.token, after=4)
        array_session.duel("x[..10]", out=out)
        lines = out.getvalue().splitlines()
        assert lines[0] == "x[0] = 3"
        assert lines[-1] == "(stopped: 4 values, interrupted)"
        # ... and the session is immediately usable again.
        assert array_session.eval_values("x[0]") == [3]

    def test_cancel_is_not_rolled_back(self, array_session):
        """^C keeps already-applied effects, exactly like truncation."""
        out = _TrippingOut(array_session.governor.token, after=2)
        array_session.duel("x[..10] = 7", out=out)
        assert "interrupted" in out.getvalue()
        assert array_session.eval_values("x[0]") == [7]


# -- saved queries ride the recovering drive ----------------------------

class TestRunSaved:
    def test_run_saved_returns_partials_on_fault(self):
        """A saved query faulting mid-drive keeps the lines it made
        (the old eval_lines route raised them all away)."""
        program = TargetProgram()
        builder.linked_list(program, "L", [10, 20, 30])
        session = DuelSession(SimulatorBackend(program))
        session.save_query("walk", "L-->next->value, *(int*)0x16820")
        lines = session.run_saved("walk")
        assert lines[:3] == ["L->value = 10",
                             "L->next->value = 20",
                             "L->next->next->value = 30"]
        assert "Illegal memory reference" in "\n".join(lines[3:])

    def test_run_saved_returns_truncation_diagnostic(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_lines=3)
        session.save_query("runaway", "1..")
        lines = session.run_saved("runaway")
        assert lines[0].split() == ["1", "2", "3"]
        assert "output quota exhausted" in lines[1]

    def test_run_saved_unknown_still_raises(self):
        session = DuelSession(SimulatorBackend(TargetProgram()))
        with pytest.raises(KeyError):
            session.run_saved("missing")


# -- the state-machine engine honours the same budgets ------------------

class TestStateMachineBudget:
    def test_bypass_closed_unbounded_generator_trips(self):
        """Regression: drive() used to run ``0..`` forever — the step
        budget now applies to the explicit engine too."""
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_steps=500)
        machine = StateMachineEvaluator(session.evaluator)
        node = session.compile("0..")
        session.evaluator.reset()
        with pytest.raises(DuelEvalLimit) as info:
            machine.drive(node)
        assert info.value.kind == "steps"
        assert session.governor.steps == 501

    def test_machine_and_generator_trip_at_same_count(self, array_session):
        array_session.options.max_steps = 300
        machine = StateMachineEvaluator(array_session.evaluator)
        node = array_session.compile("x[0..9] + (0..)")
        array_session.evaluator.reset()
        with pytest.raises(DuelEvalLimit):
            for _ in array_session.evaluator.eval(node):
                pass
        generator_trip = array_session.governor.steps
        array_session.evaluator.reset()
        with pytest.raises(DuelEvalLimit):
            machine.drive(node)
        assert array_session.governor.steps == generator_trip

    def test_machine_honours_cancel_token(self):
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_steps=0, max_lines=0)
        machine = StateMachineEvaluator(session.evaluator)
        node = session.compile("0..")
        session.evaluator.reset()
        session.governor.token.trip()
        with pytest.raises(DuelCancelled):
            machine.drive(node)
