"""Unit tests for apply(): DUEL's C operator implementations."""

import pytest

from repro.core.errors import DuelMemoryError, DuelTypeError
from repro.core.ops import Apply
from repro.core.symbolic import SymText
from repro.core.values import ValueOps, int_value, lvalue, rvalue
from repro.ctype.types import (
    CHAR,
    DOUBLE,
    INT,
    LONG,
    PointerType,
    UINT,
    array_of,
)
from repro.target.interface import SimulatorBackend
from repro.target.program import TargetProgram


@pytest.fixture
def program():
    return TargetProgram()


@pytest.fixture
def apply(program):
    return Apply(ValueOps(SimulatorBackend(program)))


def num(x, ctype=INT):
    return rvalue(ctype, x, SymText(str(x)))


class TestArithmetic:
    def test_add(self, apply):
        out = apply.binary("+", num(2), num(3))
        assert out.value == 5 and out.ctype is INT

    def test_division_truncates_toward_zero(self, apply):
        assert apply.binary("/", num(-7), num(2)).value == -3
        assert apply.binary("/", num(7), num(-2)).value == -3

    def test_mod_sign_follows_dividend(self, apply):
        assert apply.binary("%", num(-7), num(2)).value == -1
        assert apply.binary("%", num(7), num(-2)).value == 1

    def test_division_by_zero(self, apply):
        with pytest.raises(DuelTypeError):
            apply.binary("/", num(1), num(0))
        with pytest.raises(DuelTypeError):
            apply.binary("%", num(1), num(0))

    def test_float_division(self, apply):
        out = apply.binary("/", num(3.0, DOUBLE), num(2))
        assert out.value == 1.5 and out.ctype is DOUBLE

    def test_overflow_wraps(self, apply):
        out = apply.binary("+", num(2**31 - 1), num(1))
        assert out.value == -2**31

    def test_unsigned_promotion(self, apply):
        out = apply.binary("+", num(2**32 - 1, UINT), num(1))
        assert out.value == 0
        assert out.ctype.name() == "unsigned int"

    def test_char_operands_promote_to_int(self, apply):
        out = apply.binary("+", num(100, CHAR), num(100, CHAR))
        assert out.value == 200 and out.ctype is INT

    def test_shifts_and_bitwise(self, apply):
        assert apply.binary("<<", num(1), num(4)).value == 16
        assert apply.binary(">>", num(-8), num(1)).value == -4
        assert apply.binary("&", num(0b1100), num(0b1010)).value == 0b1000
        assert apply.binary("|", num(1), num(4)).value == 5
        assert apply.binary("^", num(5), num(1)).value == 4

    def test_int_only_ops_reject_floats(self, apply):
        with pytest.raises(DuelTypeError):
            apply.binary("%", num(1.0, DOUBLE), num(2))


class TestComparisons:
    def test_results_are_int(self, apply):
        assert apply.binary("<", num(1), num(2)).value == 1
        assert apply.binary(">=", num(1), num(2)).value == 0
        assert apply.binary("==", num(3), num(3)).value == 1

    def test_mixed_float_int(self, apply):
        assert apply.binary("<", num(1), num(1.5, DOUBLE)).value == 1

    def test_compare_true_strips_question(self, apply):
        assert apply.compare_true(">", num(5), num(3))
        assert not apply.compare_true("<=?", num(5), num(3))


class TestPointers:
    def test_pointer_plus_int_scales(self, apply, program):
        p = rvalue(PointerType(INT), 0x1000, SymText("p"))
        out = apply.binary("+", p, num(3))
        assert out.value == 0x100C

    def test_int_plus_pointer(self, apply):
        p = rvalue(PointerType(LONG), 0x1000, SymText("p"))
        assert apply.binary("+", num(2), p).value == 0x1010

    def test_pointer_difference(self, apply):
        pa = rvalue(PointerType(INT), 0x1010, SymText("a"))
        pb = rvalue(PointerType(INT), 0x1000, SymText("b"))
        out = apply.binary("-", pa, pb)
        assert out.value == 4

    def test_pointer_comparison(self, apply):
        pa = rvalue(PointerType(INT), 0x1000, SymText("a"))
        pb = rvalue(PointerType(INT), 0x2000, SymText("b"))
        assert apply.binary("<", pa, pb).value == 1
        assert apply.binary("==", pa, num(0)).value == 0

    def test_pointer_times_int_rejected(self, apply):
        p = rvalue(PointerType(INT), 0x1000, SymText("p"))
        with pytest.raises(DuelTypeError):
            apply.binary("*", p, num(2))

    def test_deref_reads_target(self, apply, program):
        (sym,) = program.declare("int x;")
        program.write_value(sym.address, INT, 77)
        p = rvalue(PointerType(INT), sym.address, SymText("p"))
        out = apply.deref(p)
        assert out.is_lvalue
        assert apply.ops.load(out) == 77

    def test_deref_null_reports_paper_error(self, apply):
        p = rvalue(PointerType(INT), 0, SymText("ptr[48]"))
        with pytest.raises(DuelMemoryError) as info:
            apply.deref(p, pattern="x->y")
        assert "Illegal memory reference" in str(info.value)
        assert "ptr[48]" in str(info.value)

    def test_deref_array_gives_element(self, apply, program):
        (sym,) = program.declare("int a[4];")
        arr = lvalue(sym.ctype, sym.address, SymText("a"))
        out = apply.deref(arr)
        assert out.ctype is INT

    def test_addressof(self, apply, program):
        (sym,) = program.declare("int x;")
        lv = lvalue(INT, sym.address, SymText("x"))
        out = apply.addressof(lv)
        assert out.value == sym.address
        assert out.ctype == PointerType(INT)

    def test_addressof_rvalue_rejected(self, apply):
        with pytest.raises(DuelTypeError):
            apply.addressof(num(5))


class TestIndexing:
    def test_array_index(self, apply, program):
        (sym,) = program.declare("int a[4];")
        program.write_value(sym.address + 8, INT, 42)
        arr = lvalue(sym.ctype, sym.address, SymText("a"))
        out = apply.index(arr, num(2))
        assert apply.ops.load(out) == 42
        assert out.sym.render() == "a[2]"

    def test_reversed_index(self, apply, program):
        # C allows 2[a].
        (sym,) = program.declare("int a[4];")
        program.write_value(sym.address + 8, INT, 9)
        arr = lvalue(sym.ctype, sym.address, SymText("a"))
        out = apply.index(num(2), arr)
        assert apply.ops.load(out) == 9

    def test_index_non_pointer_rejected(self, apply):
        with pytest.raises(DuelTypeError):
            apply.index(num(1), num(2))

    def test_index_out_of_segment_faults(self, apply, program):
        (sym,) = program.declare("int a[4];")
        arr = lvalue(sym.ctype, sym.address, SymText("a"))
        with pytest.raises(DuelMemoryError):
            apply.index(arr, num(10**9))


class TestAssignment:
    def test_simple_assign(self, apply, program):
        (sym,) = program.declare("int x;")
        lv = lvalue(INT, sym.address, SymText("x"))
        apply.assign(lv, num(5), SymText("x=5"))
        assert program.read_value(sym.address, INT) == 5

    def test_assign_converts(self, apply, program):
        (sym,) = program.declare("char c;")
        lv = lvalue(CHAR, sym.address, SymText("c"))
        apply.assign(lv, num(300), SymText("c=300"))
        assert program.read_value(sym.address, CHAR) == 44

    def test_compound_assign(self, apply, program):
        (sym,) = program.declare("int x;")
        program.write_value(sym.address, INT, 10)
        lv = lvalue(INT, sym.address, SymText("x"))
        apply.compound_assign("+", lv, num(5), SymText("x+=5"))
        assert program.read_value(sym.address, INT) == 15

    def test_assign_to_rvalue_rejected(self, apply):
        with pytest.raises(DuelTypeError):
            apply.assign(num(1), num(2), SymText("1=2"))

    def test_incdec(self, apply, program):
        (sym,) = program.declare("int x;")
        program.write_value(sym.address, INT, 7)
        lv = lvalue(INT, sym.address, SymText("x"))
        old = apply.incdec("++", lv, postfix=True, sym=SymText("x++"))
        assert old.value == 7
        assert program.read_value(sym.address, INT) == 8
        new = apply.incdec("--", lv, postfix=False, sym=SymText("--x"))
        assert new.value == 7


class TestCastsAndSizeof:
    def test_cast_double_to_int(self, apply):
        out = apply.cast(INT, num(3.9, DOUBLE), SymText("(int)3.9"))
        assert out.value == 3 and out.ctype is INT

    def test_cast_int_to_pointer(self, apply):
        out = apply.cast(PointerType(INT), num(0x1234), SymText("c"))
        assert out.value == 0x1234

    def test_sizeof(self, apply):
        out = apply.sizeof(array_of(INT, 10), SymText("sizeof"))
        assert out.value == 40

    def test_sizeof_incomplete_rejected(self, apply):
        from repro.ctype.types import StructType
        with pytest.raises(DuelTypeError):
            apply.sizeof(StructType("inc"), SymText("sizeof"))


class TestFieldAccess:
    def test_field_through_pointer(self, apply, program):
        program.declare("struct pair {int a; int b;} p;")
        sym = program.lookup("p")
        program.write_value(sym.address + 4, INT, 11)
        ptr = rvalue(PointerType(sym.ctype), sym.address, SymText("q"))
        out = apply.field(ptr, "b", arrow=True, sym=SymText("q->b"))
        assert apply.ops.load(out) == 11

    def test_missing_field(self, apply, program):
        program.declare("struct pair2 {int a;} p2;")
        sym = program.lookup("p2")
        lv = lvalue(sym.ctype, sym.address, SymText("p2"))
        with pytest.raises(DuelTypeError):
            apply.field(lv, "zzz", arrow=False, sym=SymText("p2.zzz"))

    def test_field_on_non_record(self, apply):
        with pytest.raises(DuelTypeError):
            apply.field(num(1), "a", arrow=False, sym=SymText("1.a"))

    def test_bitfield_read_write(self, apply, program):
        program.declare("struct flags {unsigned a:3; unsigned b:5;} fl;")
        sym = program.lookup("fl")
        record = sym.ctype
        fb = record.field("b")
        from repro.core.values import DuelValue
        lv = DuelValue(ctype=fb.ctype, sym=SymText("fl.b"),
                       address=sym.address + fb.offset,
                       bit_offset=fb.bit_offset, bit_width=fb.bit_width)
        apply.assign(lv, num(21), SymText("fl.b=21"))
        assert apply.ops.load(lv) == 21
        # Neighbouring field untouched.
        fa = record.field("a")
        lva = DuelValue(ctype=fa.ctype, sym=SymText("fl.a"),
                        address=sym.address + fa.offset,
                        bit_offset=fa.bit_offset, bit_width=fa.bit_width)
        assert apply.ops.load(lva) == 0
