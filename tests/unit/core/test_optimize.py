"""Unit tests for compile-time constant folding."""

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core import nodes as N
from repro.core.optimize import fold
from repro.core.parser import parse
from repro.target import builder


def folded(text):
    return fold(parse(text))


class TestFolding:
    def test_arithmetic_collapses(self):
        node = folded("1+2*3")
        assert isinstance(node, N.Constant)
        assert node.value == 7

    def test_source_text_preserved(self):
        node = folded("1+2")
        assert node.value == 3
        assert node.text == "1+2"

    def test_index_expression(self):
        node = folded("x[1+2]")
        assert isinstance(node, N.Index)
        assert isinstance(node.index, N.Constant)
        assert node.index.value == 3

    def test_division_semantics_match_runtime(self):
        assert folded("(-7)/2").value == -3
        assert folded("(-7)%2").value == -1

    def test_division_by_zero_not_folded(self):
        node = folded("1/0")
        assert isinstance(node, N.Binary)

    def test_unary_fold(self):
        assert folded("-(5)").value == -5
        assert folded("~0").value == -1
        assert folded("!3").value == 0

    def test_comparison_fold(self):
        assert folded("2<3").value == 1

    def test_float_fold(self):
        node = folded("1.5*2.0")
        assert node.value == 3.0
        assert node.type_hint == "double"

    def test_int_overflow_wraps_like_runtime(self):
        node = folded("2147483647+1")
        assert node.value == -2**31

    def test_generators_never_folded(self):
        node = folded("1..3")
        assert isinstance(node, N.To)
        node = folded("(1,2)+3")
        assert isinstance(node, N.Binary)

    def test_names_block_folding(self):
        node = folded("x+1")
        assert isinstance(node, N.Binary)

    def test_children_of_unfoldable_nodes_folded(self):
        node = folded("f(2*3, 4+4)")
        assert all(isinstance(a, N.Constant) for a in node.args)
        assert [a.value for a in node.args] == [6, 8]

    def test_deep_nesting(self):
        node = folded("((1+2)*(3+4))-21")
        assert node.value == 0


class TestSessionIntegration:
    @pytest.fixture
    def sessions(self):
        program = TargetProgram()
        builder.int_array(program, "x", list(range(8)))
        plain = DuelSession(SimulatorBackend(program))
        opt = DuelSession(SimulatorBackend(program), optimize=True)
        return plain, opt

    @pytest.mark.parametrize("expr", [
        "1+2*3",
        "x[1+2]",
        "x[..8] >? 2+1",
        "(x[0],x[7]) * (2+3)",
        "-(4) + x[2]",
        "x[6/2] == 3",
    ])
    def test_optimized_results_identical(self, sessions, expr):
        plain, opt = sessions
        assert plain.eval_values(expr) == opt.eval_values(expr)

    def test_display_unchanged(self, sessions):
        plain, opt = sessions
        assert (plain.eval_lines("x[1+2]")
                == opt.eval_lines("x[1+2]")
                == ["x[1+2] = 3"])

    def test_fewer_steps_after_folding(self, sessions):
        plain, opt = sessions
        plain.eval("x[..8] ==? 2+2")
        plain_steps = plain.evaluator._steps
        opt.eval("x[..8] ==? 2+2")
        opt_steps = opt.evaluator._steps
        assert opt_steps < plain_steps
