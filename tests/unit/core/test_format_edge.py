"""Formatter edge cases: nested aggregates, elision, chars, strings.

Complements ``test_format_session.py`` (the paper-session happy
paths) with the boundary behaviour: nested struct/array rendering,
``MAX_AGGREGATE`` elision, ``MAX_STRING`` truncation, bitfield-free
anonymous members, enum fallbacks, and non-lvalue aggregates.
"""

import pytest

from repro import SimulatorBackend
from repro.core.format import (MAX_AGGREGATE, MAX_STRING,
                               ValueFormatter, escape_char)
from repro.core.symbolic import SymText
from repro.core.values import ValueOps, lvalue, rvalue
from repro.ctype.layout import MemberDecl, complete_struct
from repro.ctype.types import (ArrayType, CHAR, EnumType, INT,
                               PointerType)
from repro.target import builder


@pytest.fixture
def formatter(program):
    return ValueFormatter(ValueOps(SimulatorBackend(program)),
                          float_format="%.3f")


def define_struct(program, tag, members):
    record = program.types.struct_tag(tag)
    complete_struct(record, [MemberDecl(n, t) for n, t in members])
    return record


class TestNestedAggregates:
    def test_struct_in_struct(self, program, formatter):
        inner = define_struct(program, "pt", [("x", INT), ("y", INT)])
        outer = define_struct(program, "seg",
                              [("a", inner), ("b", inner)])
        symbol = program.define("s", outer)
        for offset, value in zip(range(0, 16, 4), (1, 2, 3, 4)):
            program.write_value(symbol.address + offset, INT, value)
        text = formatter.format(
            lvalue(outer, symbol.address, SymText("s")))
        assert text == "{a = {x = 1, y = 2}, b = {x = 3, y = 4}}"

    def test_array_of_structs(self, program, formatter):
        point = define_struct(program, "p2", [("x", INT), ("y", INT)])
        arr = ArrayType(point, 2)
        symbol = program.define("pts", arr)
        for offset, value in zip(range(0, 16, 4), (9, 8, 7, 6)):
            program.write_value(symbol.address + offset, INT, value)
        text = formatter.format(
            lvalue(arr, symbol.address, SymText("pts")))
        assert text == "{{x = 9, y = 8}, {x = 7, y = 6}}"

    def test_struct_with_array_member(self, program, formatter):
        rec = define_struct(program, "buf",
                            [("n", INT), ("data", ArrayType(INT, 3))])
        symbol = program.define("b", rec)
        for offset, value in zip(range(0, 16, 4), (3, 10, 20, 30)):
            program.write_value(symbol.address + offset, INT, value)
        text = formatter.format(
            lvalue(rec, symbol.address, SymText("b")))
        assert text == "{n = 3, data = {10, 20, 30}}"

    def test_non_lvalue_record_is_opaque(self, program, formatter):
        rec = define_struct(program, "op", [("x", INT)])
        assert formatter.format(rvalue(rec, None, SymText("v"))) \
            == "<struct op>"


class TestElision:
    def test_long_array_elided(self, program, formatter):
        symbol = builder.int_array(program, "big",
                                   list(range(MAX_AGGREGATE + 8)))
        text = formatter.format(
            lvalue(symbol.ctype, symbol.address, SymText("big")))
        assert text.endswith(", ...}")
        assert text.count(",") == MAX_AGGREGATE  # 24 elements + ellipsis
        assert "23" in text and "25" not in text

    def test_array_at_limit_not_elided(self, program, formatter):
        symbol = builder.int_array(program, "exact",
                                   list(range(MAX_AGGREGATE)))
        text = formatter.format(
            lvalue(symbol.ctype, symbol.address, SymText("exact")))
        assert not text.endswith(", ...}")

    def test_unsized_array_is_opaque(self, program, formatter):
        arr = ArrayType(INT, None)
        assert formatter.format(lvalue(arr, 0x1000, SymText("a"))) \
            == f"<{arr.name()}>"


class TestStrings:
    def test_char_array_prints_as_string(self, program, formatter):
        arr = ArrayType(CHAR, 6)
        symbol = program.define("word", arr)
        program.memory.write(symbol.address, b"duel\0\0")
        assert formatter.format(
            lvalue(arr, symbol.address, SymText("word"))) == '"duel"'

    def test_string_escapes(self, program, formatter):
        addr = program.intern_string('a"b\n')
        p = rvalue(PointerType(CHAR), addr, SymText("s"))
        assert formatter.format(p) == '"a\\"b\\n"'

    def test_unterminated_string_truncates(self, program, formatter):
        arr = ArrayType(CHAR, MAX_STRING + 50)
        symbol = program.define("lots", arr)
        program.memory.write(symbol.address, b"x" * (MAX_STRING + 50))
        text = formatter.format(
            lvalue(arr, symbol.address, SymText("lots")))
        assert text.endswith('"...')
        assert len(text) == MAX_STRING + 2 + 3  # quotes + ellipsis

    def test_chase_disabled_prints_hex(self, program):
        plain = ValueFormatter(ValueOps(SimulatorBackend(program)),
                               chase_strings=False)
        addr = program.intern_string("duel")
        p = rvalue(PointerType(CHAR), addr, SymText("s"))
        assert plain.format(p) == f"{addr:#x}"


class TestScalarEdges:
    def test_enum_names_and_falls_back(self, program, formatter):
        enum = EnumType("color", [("RED", 0), ("GREEN", 1)])
        assert formatter.format(rvalue(enum, 1, SymText("c"))) == "GREEN"
        assert formatter.format(rvalue(enum, 7, SymText("c"))) == "7"

    def test_void_result(self, formatter):
        assert formatter.format_raw(None, INT) == "void"

    def test_negative_char_keeps_decimal_and_glyph(self, formatter):
        from repro.ctype.types import SCHAR
        assert formatter.format(rvalue(SCHAR, -1, SymText("c"))) \
            == "-1 '\\377'"

    def test_quote_escaping_depends_on_context(self):
        assert escape_char(ord('"'), quote="'") == '\\"'
        assert escape_char(ord("'"), quote='"') == "'"
