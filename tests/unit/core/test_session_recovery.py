"""Session robustness: step budgets and the recovering duel command."""

import io

import pytest

from repro.core.errors import DuelEvalLimit, DuelMemoryError
from repro.core.session import DuelSession
from repro.target import builder
from repro.target.interface import SimulatorBackend
from repro.target.program import TargetProgram


# -- the step budget stops runaway generators ---------------------------

def test_unbounded_range_hits_step_budget():
    session = DuelSession(SimulatorBackend(TargetProgram()),
                          max_steps=10_000)
    with pytest.raises(DuelEvalLimit) as info:
        session.eval("1..")
    assert info.value.limit == 10_000
    assert info.value.kind == "steps"
    assert "exceeded 10000 generator steps" in str(info.value)


def test_step_budget_resets_between_queries():
    """The budget is per-query: a long query doesn't starve the next."""
    session = DuelSession(SimulatorBackend(TargetProgram()),
                          max_steps=10_000)
    assert len(session.eval_values("0..2999")) == 3000
    assert len(session.eval_values("0..2999")) == 3000


def test_duel_command_truncates_at_step_budget_and_recovers():
    session = DuelSession(SimulatorBackend(TargetProgram()),
                          max_steps=1_000)
    out = io.StringIO()
    session.duel("1..", out=out)                 # must terminate
    text = out.getvalue()
    # Partial values survive, the diagnostic names the limit and the
    # remedy, and the session stays usable.
    assert text.startswith("1 2 3 ")
    assert "step budget exhausted" in text
    assert "raise with 'limits steps 2000'" in text
    assert session.eval_values("#/(1..10)") == [10]


def test_nested_runaway_generator_is_bounded(array_session):
    array_session.options.max_steps = 5_000
    with pytest.raises(DuelEvalLimit):
        array_session.eval("x[..10] + (0..)")


# -- lazy drive: partial results before mid-query errors ----------------

def test_ieval_lines_is_lazy(array_session):
    lines = array_session.ieval_lines("x[..10]")
    assert next(lines) == "x[0] = 3"
    assert next(lines) == "x[1] = -1"


def test_duel_prints_partials_before_memory_error():
    program = TargetProgram()
    builder.linked_list(program, "L", [10, 20, 30])
    # Break the last node's next pointer to an unmapped address.
    session = DuelSession(SimulatorBackend(program))
    node_p = session.evaluator.parse_type("struct node *")
    third = session.eval_values("L->next->next")[0]
    next_off = program.types.structs["node"].field("next").offset
    program.write_value(third + next_off, node_p, 0x16820)
    out = io.StringIO()
    session.duel("L->next->next->next->value", out=out)
    assert out.getvalue() == (
        "Illegal memory reference in x of x->y:\n"
        "L->next->next->next = lvalue 0x16820.\n")
    # Partial results stream for generator walks over the same break.
    out = io.StringIO()
    session.duel("L-->next->value", out=out)
    lines = out.getvalue().splitlines()
    assert lines[:3] == ["L->value = 10",
                         "L->next->value = 20",
                         "L->next->next->value = 30"]


def test_syntax_errors_are_printed_not_raised(empty_session):
    out = io.StringIO()
    empty_session.duel("x +* 3", out=out)
    assert out.getvalue()                        # some report came out
    assert empty_session.eval_values("1+2") == [3]


def test_failed_declaration_rolls_back_alias(array_session):
    """A query mixing a declaration with a faulting read leaves no
    half-made target allocation behind."""
    program = array_session.backend.program
    before = program.heap.bytes_allocated
    out = io.StringIO()
    array_session.duel("int i; i = x[2000000]", out=out)
    assert "Illegal memory reference" in out.getvalue()
    assert program.heap.bytes_allocated == before


def test_string_cache_invalidated_on_rollback(program):
    """Rolled-back string literals are re-placed, not dangled."""
    from repro.target.interface import FaultInjectingBackend
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_calls=True)
    session = DuelSession(backend)
    out = io.StringIO()
    session.duel('strcmp("duel", "duel")', out=out)   # faults, rolls back
    assert "target call failed" in out.getvalue()
    assert session.evaluator._string_cache == {}
    # The literal works again once calls stop failing.
    backend._fail_calls = False
    assert session.eval_values('strcmp("duel", "duel")') == [0]
