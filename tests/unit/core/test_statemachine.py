"""Unit tests for the paper's explicit state-machine engine."""

import pytest

from repro.core.errors import DuelError
from repro.core.statemachine import NOVALUE, StateMachineEvaluator


@pytest.fixture
def engines(array_session):
    sm = StateMachineEvaluator(array_session.evaluator)
    return array_session, sm


def drive(engines, text):
    session, sm = engines
    node = session.compile(text)
    return [session.evaluator.ops.load(v) for v in sm.drive(node)]


class TestPaperListings:
    def test_constant(self, engines):
        assert drive(engines, "5") == [5]

    def test_plus_with_generators(self, engines):
        # The paper's worked example of the numbered PLUS listing.
        assert drive(engines, "(1..3)+(5,9)") == [6, 10, 7, 11, 8, 12]

    def test_alternate(self, engines):
        assert drive(engines, "1,2,5") == [1, 2, 5]

    def test_to_with_generator_bounds(self, engines):
        got = drive(engines, "(1,5)..(5,10)")
        assert got == (list(range(1, 6)) + list(range(1, 11))
                       + [5] + list(range(5, 11)))

    def test_ifgt(self, engines):
        assert drive(engines, "x[..10] >? 0") == [3, 7, 12, 2, 120, 5]

    def test_andand(self, engines):
        assert drive(engines, "(1,0,2) && (7,8)") == [7, 8, 7, 8]

    def test_if(self, engines):
        assert drive(engines, "if ((1,0,1)) 5 else 6") == [5, 6, 5]

    def test_imply(self, engines):
        assert drive(engines, "(1..3) => 9") == [9, 9, 9]

    def test_sequence(self, engines):
        assert drive(engines, "(1,2); 7") == [7]

    def test_unary(self, engines):
        assert drive(engines, "-(1..3)") == [-1, -2, -3]

    def test_prefix_to(self, engines):
        assert drive(engines, "..4") == [0, 1, 2, 3]


class TestProtocol:
    def test_restart_after_novalue(self, engines):
        # "If eval is called again ... the entire evaluation process
        # starts over because state has been reset to 0."
        session, sm = engines
        node = session.compile("(1..2)+(10,20)")
        first = [session.evaluator.ops.load(v) for v in sm.drive(node)]
        second = [session.evaluator.ops.load(v) for v in sm.drive(node)]
        assert first == second == [11, 21, 12, 22]

    def test_eval_returns_novalue_at_end(self, engines):
        session, sm = engines
        node = session.compile("7")
        assert session.evaluator.ops.load(sm.eval(node)) == 7
        assert sm.eval(node) is NOVALUE
        # And starts over:
        assert session.evaluator.ops.load(sm.eval(node)) == 7

    def test_unsupported_operator_rejected(self, engines):
        session, sm = engines
        node = session.compile("#/(1..3)")  # reductions are generator-only
        assert not sm.supports(node)
        with pytest.raises(DuelError):
            sm.drive(node)

    def test_supports_reports_subset(self, engines):
        session, sm = engines
        assert sm.supports(session.compile("(1..3)+x[0]"))
        assert sm.supports(session.compile("L-->next->value"))
        assert not sm.supports(session.compile("f(1)"))


class TestStructuralOperators:
    """The WITH/DFS/SELECT/DEFINE machines (paper listings) against the
    generator engine on the paper's own queries."""

    @pytest.fixture
    def rig(self, session):
        return session, StateMachineEvaluator(session.evaluator)

    @pytest.mark.parametrize("expr", [
        "hash[42]->scope",
        "hash[1,9]->(scope,name)",
        "(hash[..1024] !=? 0)->scope >? 5",
        "hash[0]-->next->scope",
        "root-->(left,right)->key",
        "root-->>(left,right)->key",
        "L-->next->value[[3,5]]",
        "L-->next->(value ==? next-->next->value)",
        "hash[..1024]-->next-> if (next) scope <? next->scope",
        "x[..10].if (_ < 0 || _ > 100) _",
        "y := x[..10] => if (y < 0 || y > 100) y",
        "(10..30)[[3..5]]",
        "root-->(if (key > 5) left else if (key < 5) right)->key",
    ])
    def test_agrees_with_generator_engine(self, rig, expr):
        session, sm = rig
        node = session.compile(expr)
        ops = session.evaluator.ops
        session.evaluator.reset()
        generator = [(ops.load(v), v.sym.render())
                     for v in session.evaluator.eval(node)]
        session.evaluator.reset()
        machine = [(ops.load(v), v.sym.render()) for v in sm.drive(node)]
        assert generator == machine

    def test_assignment_through_generators(self, rig):
        session, sm = rig
        sm.drive(session.compile("x[1..3] = 0"))
        assert session.eval_values("x[1..3]") == [0, 0, 0]

    def test_scope_balanced_after_drive(self, rig):
        session, sm = rig
        before = session.evaluator.scope.with_depth
        sm.drive(session.compile("hash[1,9]->(scope,name)"))
        assert session.evaluator.scope.with_depth == before

    def test_while_machine(self, rig):
        session, sm = rig
        session.eval("x[0] = 3 ;")
        out = sm.drive(session.compile("while (x[0]) x[0] = x[0] - 1"))
        # Three iterations ran; assignment results are lvalues, so
        # loading after the run reads the final store (same as the
        # generator engine when values are collected before loading).
        assert len(out) == 3
        assert session.eval_values("x[0]") == [0]
