"""Unit tests for the DUEL lexer."""

import pytest

from repro.core.errors import DuelSyntaxError
from repro.core.lexer import Token, TokenStream, tokenize, unescape


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "eof"]


class TestNumbers:
    def test_int(self):
        assert kinds("42") == ["num"]

    def test_hex(self):
        assert texts("0xFF") == ["0xFF"]

    def test_float(self):
        assert kinds("1.5") == ["fnum"]
        assert kinds("1.") == ["fnum"]
        assert kinds(".5") == ["fnum"]
        assert kinds("1e3") == ["fnum"]
        assert kinds("1.5e-2") == ["fnum"]

    def test_range_vs_float(self):
        # The critical case: 1..3 must NOT lex "1." as a float.
        assert texts("1..3") == ["1", "..", "3"]
        assert kinds("1..3") == ["num", "op", "num"]

    def test_unbounded_range(self):
        assert texts("0..") == ["0", ".."]

    def test_suffixes(self):
        assert texts("10UL 3u 7ll") == ["10UL", "3u", "7ll"]


class TestOperators:
    @pytest.mark.parametrize("op", [
        "..", "-->", "->", "[[", "]]", "==?", "!=?", "<=?", ">=?",
        "<?", ">?", ":=", "=>", "#/", "+/", "&&/", "||/", "<?/", ">?/",
        "<<=", ">>=", "<<", ">>", "&&", "||", "++", "--", "-->>",
    ])
    def test_multichar(self, op):
        assert texts(f"a {op} b")[1] == op

    def test_longest_match(self):
        assert texts("a-->b") == ["a", "-->", "b"]
        assert texts("a-->>b") == ["a", "-->>", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a--") == ["a", "--"]

    def test_select_brackets(self):
        assert texts("x[[1]]") == ["x", "[[", "1", "]]"]

    def test_nested_index_produces_double_bracket(self):
        # a[b[0]] lexes the tail as "]]"; the parser splits it.
        assert texts("a[b[0]]")[-1] == "]]"

    def test_reduction_tokens(self):
        assert texts("#/x") == ["#/", "x"]
        assert texts("e#i") == ["e", "#", "i"]

    def test_bad_character(self):
        with pytest.raises(DuelSyntaxError):
            tokenize("a $ b")


class TestComments:
    def test_double_hash_comment(self):
        assert texts("1 + 2 ## the rest is ignored .. --> $") == ["1", "+", "2"]


class TestLiterals:
    def test_char(self):
        toks = tokenize("'a'")
        assert toks[0].kind == "char"

    def test_char_escapes(self):
        assert unescape(r"\n") == "\n"
        assert unescape(r"\0") == "\0"
        assert unescape(r"\x41") == "A"
        assert unescape(r"\101") == "A"
        assert unescape(r"\\") == "\\"

    def test_string(self):
        toks = tokenize('"hello\\n"')
        assert toks[0].kind == "string"

    def test_unterminated_string(self):
        with pytest.raises(DuelSyntaxError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(DuelSyntaxError):
            tokenize("'a")


class TestNames:
    def test_identifiers(self):
        assert kinds("foo _bar x9") == ["name"] * 3

    def test_underscore_alone(self):
        assert texts("_") == ["_"]


class TestTokenStream:
    def test_positions_for_slicing(self):
        source = "int i; i + 1"
        stream = TokenStream(source)
        first = stream.next()
        assert source[first.start:first.end] == "int"

    def test_split_rbracket(self):
        stream = TokenStream("a[b[0]]")
        toks = []
        while not stream.at_end:
            tok = stream.peek()
            if tok.is_op("]]"):
                toks.append(stream.expect("]").text)
            else:
                toks.append(stream.next().text)
        assert toks == ["a", "[", "b", "[", "0", "]", "]"]

    def test_expect_mismatch_raises(self):
        stream = TokenStream("a b")
        stream.next()
        with pytest.raises(DuelSyntaxError):
            stream.expect(")")
