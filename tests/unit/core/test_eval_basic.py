"""Unit tests for the generator evaluator: scalar operators and
generator control (the paper's §Semantics operator catalogue)."""

import pytest

from repro.core.errors import DuelEvalLimit, DuelNameError, DuelTypeError


def values(session, text):
    return session.eval_values(text)


class TestConstantsAndArithmetic:
    def test_constant(self, empty_session):
        assert values(empty_session, "5") == [5]

    def test_float_arithmetic(self, empty_session):
        assert values(empty_session, "1 + (double)3/2") == [2.5]

    def test_char_constant(self, empty_session):
        assert values(empty_session, "'A'") == [65]

    def test_hex(self, empty_session):
        assert values(empty_session, "0x10 + 1") == [17]

    def test_unary_ops(self, empty_session):
        assert values(empty_session, "-(3)") == [-3]
        assert values(empty_session, "!0") == [1]
        assert values(empty_session, "~0") == [-1]

    def test_conditional_expression(self, empty_session):
        assert values(empty_session, "1 ? 10 : 20") == [10]
        assert values(empty_session, "0 ? 10 : 20") == [20]


class TestTo:
    def test_inclusive_range(self, empty_session):
        assert values(empty_session, "1..5") == [1, 2, 3, 4, 5]

    def test_empty_range(self, empty_session):
        assert values(empty_session, "3..2") == []

    def test_prefix_form(self, empty_session):
        assert values(empty_session, "..4") == [0, 1, 2, 3]

    def test_generator_operands(self, empty_session):
        # (to (alternate 1 5) (alternate 5 10)) from the paper.
        got = values(empty_session, "(1,5)..(5,10)")
        assert got == (list(range(1, 6)) + list(range(1, 11))
                       + [5] + list(range(5, 11)))

    def test_negative_range(self, empty_session):
        assert values(empty_session, "-2..1") == [-2, -1, 0, 1]

    def test_non_integer_bound_rejected(self, empty_session):
        with pytest.raises(DuelTypeError):
            values(empty_session, "1..2.5")

    def test_unbounded_guarded_by_until(self, empty_session):
        assert values(empty_session, "(5..)@8") == [5, 6, 7]

    def test_runaway_unbounded_hits_step_limit(self, empty_session):
        empty_session.options.max_steps = 10_000
        with pytest.raises(DuelEvalLimit):
            values(empty_session, "#/(0..)")


class TestAlternate:
    def test_order(self, empty_session):
        assert values(empty_session, "1,2,5") == [1, 2, 5]

    def test_paper_product(self, empty_session):
        assert values(empty_session, "(1,2,5)*4+(10,200)") == \
            [14, 204, 18, 208, 30, 220]

    def test_paper_sum(self, empty_session):
        assert values(empty_session, "(1..3)+(5,9)") == [6, 10, 7, 11, 8, 12]
        assert values(empty_session, "(3,11)+(5..7)") == [8, 9, 10, 16, 17, 18]


class TestCompareYield:
    def test_yields_left_operand(self, array_session):
        # x = [3, -1, 7, 0, 12, -9, 2, 120, 5, -4]
        assert values(array_session, "x[..10] >? 0") == [3, 7, 12, 2, 120, 5]

    def test_chained_range_check(self, array_session):
        assert values(array_session, "x[..10] >? 5 <? 10") == [7]

    def test_eq_yield(self, array_session):
        assert values(array_session, "x[..10] ==? (5..7)") == [7, 5]

    def test_ne_yield(self, empty_session):
        assert values(empty_session, "(1,2,3) !=? 2") == [1, 3]

    def test_c_comparison_unchanged(self, array_session):
        assert values(array_session, "x[1..3] == 7") == [0, 1, 0]


class TestLogical:
    def test_andand_generator_semantics(self, empty_session):
        # e2's values for each non-zero e1 value.
        assert values(empty_session, "(1,0,2) && (7,8)") == [7, 8, 7, 8]

    def test_andand_c_equivalent_when_scalar(self, empty_session):
        assert values(empty_session, "1 && 5") == [5]
        assert values(empty_session, "0 && 5") == []

    def test_oror(self, empty_session):
        assert values(empty_session, "(0,3) || (9,10)") == [9, 10, 1]

    def test_lognot(self, empty_session):
        assert values(empty_session, "!(0,1,2)") == [1, 0, 0]


class TestIf:
    def test_if_filters(self, empty_session):
        assert values(empty_session, "if (1) (2,3)") == [2, 3]
        assert values(empty_session, "if (0) (2,3)") == []

    def test_if_else(self, empty_session):
        assert values(empty_session, "if (0) 1 else (8,9)") == [8, 9]

    def test_if_generator_condition(self, empty_session):
        # For each non-zero cond value -> then; zero -> else.
        assert values(empty_session, "if ((1,0,1)) 5 else 6") == [5, 6, 5]


class TestSequenceImply:
    def test_sequence_discards_left(self, empty_session):
        assert values(empty_session, "(1,2,3); 9") == [9]

    def test_trailing_semicolon_side_effects_only(self, array_session):
        assert values(array_session, "x[0] = 99 ;") == []
        assert values(array_session, "x[0]") == [99]

    def test_imply_repeats_right(self, empty_session):
        assert values(empty_session, "(1..3) => 7") == [7, 7, 7]

    def test_imply_with_alias(self, empty_session):
        assert values(empty_session, "i := 1..3 => {i} + 4") == [5, 6, 7]


class TestWhileFor:
    def test_for_loop(self, empty_session):
        empty_session.eval("int i;")
        got = values(empty_session, "for (i = 0; i < 4; i++) i*10")
        assert got == [0, 10, 20, 30]

    def test_paper_for_with_if(self, empty_session):
        empty_session.eval("int i;")
        got = values(empty_session,
                     "for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5")
        assert got == [4, 19, 34]

    def test_while_loop(self, empty_session):
        empty_session.eval("int n;")
        empty_session.eval("n = 3 ;")
        got = values(empty_session, "while (n) n = n - 1")
        assert got == [2, 1, 0]


class TestDefineAndDecl:
    def test_define_aliases_each_value(self, empty_session):
        assert values(empty_session, "i := (4,5)") == [4, 5]
        # After draining, the alias holds the last value.
        assert values(empty_session, "i") == [5]

    def test_define_preserves_lvalue(self, array_session):
        array_session.eval("b := x[5]")
        array_session.eval("b = 123 ;")
        assert values(array_session, "x[5]") == [123]

    def test_declaration_allocates_target_space(self, empty_session):
        empty_session.eval("int i;")
        empty_session.eval("i = 41 ;")
        assert values(empty_session, "i + 1") == [42]

    def test_declaration_produces_no_values(self, empty_session):
        assert empty_session.eval("int j;") == []

    def test_paper_sequence_alias(self, empty_session):
        assert values(empty_session, "i := 1..3; i + 4") == [7]

    def test_unknown_name(self, empty_session):
        with pytest.raises(DuelNameError):
            values(empty_session, "nosuchvar")


class TestCalls:
    def test_combinations(self, empty_session, program):
        calls = []
        program.define_function("probe", "int probe(int, int)",
                                lambda p, a, b: calls.append((a, b)) or 0)
        empty_session.eval("probe((3,4), 5..7)")
        assert calls == [(3, 5), (3, 6), (3, 7), (4, 5), (4, 6), (4, 7)]

    def test_paper_printf(self, empty_session, program):
        from repro.target.stdlib import stdout_text
        empty_session.eval('printf("%d %d, ", (3,4), 5..7)')
        assert stdout_text(program) == "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, "

    def test_return_value_typed(self, empty_session, program):
        program.define_function("f", "int f(void)", lambda p: 5)
        assert values(empty_session, "f() * 2") == [10]

    def test_call_non_function_rejected(self, empty_session):
        with pytest.raises(DuelTypeError):
            values(empty_session, "(1)(2)")


class TestGroupsReductions:
    def test_count(self, empty_session):
        assert values(empty_session, "#/(1..10)") == [10]
        assert values(empty_session, "#/(1..0)") == [0]

    def test_sum_product(self, empty_session):
        assert values(empty_session, "+/(1..4)") == [10]
        assert values(empty_session, "*/(1..4)") == [24]

    def test_min_max(self, empty_session):
        assert values(empty_session, "<?/(3,1,2)") == [1]
        assert values(empty_session, ">?/(3,1,2)") == [3]

    def test_all_any(self, empty_session):
        assert values(empty_session, "&&/(1,2,3)") == [1]
        assert values(empty_session, "&&/(1,0,3)") == [0]
        assert values(empty_session, "||/(0,0,2)") == [1]
        assert values(empty_session, "||/(0,0)") == [0]

    def test_empty_reductions(self, empty_session):
        assert values(empty_session, "+/(1..0)") == [0]
        assert values(empty_session, "*/(1..0)") == [1]

    def test_group_passthrough(self, empty_session):
        assert values(empty_session, "{1+2}") == [3]


class TestSizeofCast:
    def test_sizeof_type(self, empty_session):
        assert values(empty_session, "sizeof(long)") == [8]

    def test_sizeof_expression(self, array_session):
        assert values(array_session, "sizeof x") == [40]

    def test_cast_in_expression(self, empty_session):
        assert values(empty_session, "(char)300") == [44]

    def test_cast_with_target_struct(self, session):
        # struct symbol exists in the paper workload.
        got = values(session, "sizeof(struct symbol)")
        assert got == [24]
