"""Unit tests for the command-line front end."""

import io

import pytest

from repro.cli import main

SYMTAB = r"""
int values[4] = {5, -2, 9, 0};
int total = 0;
int main(void) {
    int i;
    for (i = 0; i < 4; i++) total += values[i];
    printf("total=%d\n", total);
    return 0;
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SYMTAB)
    return str(path)


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    status = main(args, stdin=io.StringIO(stdin_text), out=out)
    return status, out.getvalue()


class TestExprMode:
    def test_single_expression(self, source):
        status, text = run_cli(["--expr", "values[..4] >? 0", source])
        assert status == 0
        assert "values[0] = 5" in text
        assert "values[2] = 9" in text

    def test_program_output_shown(self, source):
        status, text = run_cli(["-e", "total", source])
        assert "total=12" in text        # the program's printf
        assert "total = 12" in text      # DUEL's answer
        assert "[program exited with status 0]" in text

    def test_multiple_expressions(self, source):
        status, text = run_cli(["-e", "1..3", "-e", "total", source])
        assert "1 2 3" in text and "total = 12" in text

    def test_error_printed_not_raised(self, source):
        status, text = run_cli(["-e", "nosuchvar", source])
        assert status == 0
        assert "no symbol 'nosuchvar'" in text

    def test_no_symbolic_flag(self, source):
        status, text = run_cli(["--no-symbolic", "-e", "values[0]", source])
        assert "\n5\n" in text

    def test_missing_file(self):
        status, text = run_cli(["-e", "1", "/nonexistent.c"])
        assert status == 1 and "error:" in text

    def test_bad_program(self, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text("int main(void) { return }")
        status, text = run_cli(["-e", "1", str(path)])
        assert status == 1


class TestRepl:
    def test_session_flow(self, source):
        status, text = run_cli([source], stdin_text=(
            "total\n"
            "x := 2\n"
            "x * 10\n"
            "aliases\n"
            "quit\n"))
        assert status == 0
        assert "total = 12" in text
        assert "x*10 = 20" in text
        assert "x := 2" in text

    def test_help_and_clear(self, source):
        status, text = run_cli([source], stdin_text=(
            "help\nclear\naliases\nquit\n"))
        assert "DUEL REPL commands" in text
        assert "(no aliases)" in text

    def test_symbolic_toggle(self, source):
        status, text = run_cli([source], stdin_text=(
            "symbolic off\nvalues[0]\nsymbolic on\nvalues[0]\nquit\n"))
        lines = text.splitlines()
        assert "5" in lines
        assert "values[0] = 5" in lines

    def test_empty_output_marker(self, source):
        status, text = run_cli([source], stdin_text="1..0\nquit\n")
        assert "(no values)" in text

    def test_calculator_mode_without_program(self):
        status, text = run_cli([], stdin_text="(1..3)+(5,9)\nquit\n")
        assert "6 10 7 11 8 12" in text

    def test_eof_terminates(self, source):
        status, text = run_cli([source], stdin_text="total\n")
        assert status == 0


class TestHistoryAndSaved:
    def test_history_command(self, source):
        status, text = run_cli([source], stdin_text=(
            "1+1\ntotal\nhistory\nquit\n"))
        assert "  0  1+1" in text
        assert "  1  total" in text

    def test_save_and_reissue(self, source):
        status, text = run_cli([source], stdin_text=(
            "save tot total\n"
            "!tot\n"
            "quit\n"))
        assert "saved 'tot'" in text
        assert "total = 12" in text

    def test_save_validates(self, source):
        status, text = run_cli([source], stdin_text=(
            "save bad total +\nquit\n"))
        assert "saved" not in text

    def test_unknown_saved_query(self, source):
        status, text = run_cli([source], stdin_text="!nope\nquit\n")
        assert "no saved query" in text

    def test_save_usage_message(self, source):
        status, text = run_cli([source], stdin_text="save onlyname\nquit\n")
        assert "usage: save" in text


class TestSessionHistoryApi:
    def test_history_dedupes_consecutive(self, source):
        from repro import DuelSession, SimulatorBackend, TargetProgram
        session = DuelSession(SimulatorBackend(TargetProgram()))
        session.eval("1+1")
        session.eval("1+1")
        session.eval("2+2")
        assert session.history == ["1+1", "2+2"]

    def test_run_saved(self):
        from repro import DuelSession, SimulatorBackend, TargetProgram
        session = DuelSession(SimulatorBackend(TargetProgram()))
        session.save_query("sum", "+/(1..10)")
        assert session.run_saved("sum") == ["55"]
        import pytest as _pytest
        with _pytest.raises(KeyError):
            session.run_saved("missing")


class TestSymbolicCommandParsing:
    def test_bare_symbolic_prints_usage(self, source):
        status, text = run_cli([source], stdin_text="symbolic\nquit\n")
        assert "usage: symbolic on|off" in text

    def test_garbage_argument_prints_usage(self, source):
        """'symbolic banana' used to silently *enable* symbolics."""
        status, text = run_cli([source], stdin_text=(
            "symbolic off\nsymbolic banana\nvalues[0]\nquit\n"))
        assert "usage: symbolic on|off" in text
        # The bad argument must not have flipped the mode back on.
        assert "\n5\n" in text
        assert "values[0] = 5" not in text


class TestLimitsCommand:
    def test_show(self, source):
        status, text = run_cli([source], stdin_text="limits\nquit\n")
        assert "steps" in text and "deadline_ms" in text
        assert "truncate" in text

    def test_set_and_truncate(self, source):
        status, text = run_cli([], stdin_text=(
            "limits steps 12\n"
            "1..\n"
            "quit\n"))
        assert "limits steps 12" in text
        assert "step budget exhausted" in text
        assert "raise with 'limits steps 24'" in text

    def test_set_off(self, source):
        status, text = run_cli([], stdin_text=(
            "limits deadline_ms off\nlimits\nquit\n"))
        assert "limits deadline_ms off" in text

    def test_bad_name_reported(self, source):
        status, text = run_cli([], stdin_text="limits bananas 3\nquit\n")
        assert "unknown limit" in text

    def test_usage(self, source):
        status, text = run_cli([], stdin_text="limits steps\nquit\n")
        assert "usage: limits" in text


class TestStatsFooter:
    def test_stats_toggle_and_footer(self, source):
        status, text = run_cli([source], stdin_text=(
            "stats on\ntotal\nstats off\ntotal\nquit\n"))
        assert "stats on" in text
        footers = [l for l in text.splitlines() if l.startswith("[steps=")]
        assert len(footers) == 1
        assert "lookups=" in footers[0] and "wall=" in footers[0]

    def test_stats_usage(self, source):
        status, text = run_cli([source], stdin_text="stats maybe\nquit\n")
        assert "usage: stats on|off" in text


class TestLimitFlags:
    def test_max_steps_flag(self):
        status, text = run_cli(["--max-steps", "20", "-e", "1.."])
        assert status == 0
        assert "step budget exhausted" in text

    def test_max_lines_flag(self):
        status, text = run_cli(["--max-lines", "5", "-e", "0..100"])
        assert "output quota exhausted" in text
        assert "raise with 'limits lines 10'" in text

    def test_deadline_flag(self):
        status, text = run_cli(["--deadline-ms", "1", "--max-steps", "0",
                                "--max-lines", "0", "-e", "#/(0..)"])
        assert "wall-clock deadline expired" in text

    def test_default_limits_terminate_unbounded_query(self):
        """Acceptance: `duel 1..` under default limits terminates with
        partials, a diagnostic, and a still-usable session."""
        status, text = run_cli([], stdin_text="1..\n+/(1..3)\nquit\n")
        assert status == 0
        lines = text.splitlines()
        assert lines[0].startswith("1 2 3 ")
        assert "(stopped: 10000 values, output quota exhausted" in text
        assert "6" in lines[-1]                  # session still works


class TestSigint:
    def test_handler_trips_token(self):
        import signal as _signal
        from repro.cli import sigint_handler
        from repro import DuelSession, SimulatorBackend, TargetProgram
        session = DuelSession(SimulatorBackend(TargetProgram()))
        handler = sigint_handler(session.governor.token)
        handler(_signal.SIGINT, None)
        assert session.governor.token.tripped

    def test_repl_sigint_mid_drive_prints_partials(self):
        """A real SIGINT during an unbounded drive: partial results and
        an (interrupted) line, no traceback, REPL continues."""
        import signal as _signal
        import threading
        from repro.cli import repl
        from repro import DuelSession, SimulatorBackend, TargetProgram
        # Unlimited output/steps; a 10s deadline only as a backstop so
        # a lost signal fails the assertion instead of hanging CI.
        session = DuelSession(SimulatorBackend(TargetProgram()),
                              max_steps=0, max_lines=0,
                              deadline_ms=10_000)
        out = io.StringIO()
        timer = threading.Timer(
            0.15, lambda: _signal.raise_signal(_signal.SIGINT))
        timer.start()
        try:
            status = repl(session, stdin=io.StringIO("1..\n+/(1..3)\nquit\n"),
                          out=out)
        finally:
            timer.cancel()
        assert status == 0
        text = out.getvalue()
        assert "interrupted)" in text
        assert text.splitlines()[0].startswith("1 2 3 ")
        assert "6" in text                       # next query still ran

    def test_repl_restores_previous_handler(self, source):
        import signal as _signal
        before = _signal.getsignal(_signal.SIGINT)
        run_cli([source], stdin_text="quit\n")
        assert _signal.getsignal(_signal.SIGINT) is before


class TestOptimizeFlag:
    def test_optimize_flag_same_output(self, source):
        plain_status, plain_text = run_cli(["-e", "values[1+1]", source])
        opt_status, opt_text = run_cli(
            ["--optimize", "-e", "values[1+1]", source])
        assert plain_text == opt_text
        assert "values[1+1] = 9" in opt_text
