"""Unit tests for the command-line front end."""

import io

import pytest

from repro.cli import main

SYMTAB = r"""
int values[4] = {5, -2, 9, 0};
int total = 0;
int main(void) {
    int i;
    for (i = 0; i < 4; i++) total += values[i];
    printf("total=%d\n", total);
    return 0;
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SYMTAB)
    return str(path)


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    status = main(args, stdin=io.StringIO(stdin_text), out=out)
    return status, out.getvalue()


class TestExprMode:
    def test_single_expression(self, source):
        status, text = run_cli(["--expr", "values[..4] >? 0", source])
        assert status == 0
        assert "values[0] = 5" in text
        assert "values[2] = 9" in text

    def test_program_output_shown(self, source):
        status, text = run_cli(["-e", "total", source])
        assert "total=12" in text        # the program's printf
        assert "total = 12" in text      # DUEL's answer
        assert "[program exited with status 0]" in text

    def test_multiple_expressions(self, source):
        status, text = run_cli(["-e", "1..3", "-e", "total", source])
        assert "1 2 3" in text and "total = 12" in text

    def test_error_printed_not_raised(self, source):
        status, text = run_cli(["-e", "nosuchvar", source])
        assert status == 0
        assert "no symbol 'nosuchvar'" in text

    def test_no_symbolic_flag(self, source):
        status, text = run_cli(["--no-symbolic", "-e", "values[0]", source])
        assert "\n5\n" in text

    def test_missing_file(self):
        status, text = run_cli(["-e", "1", "/nonexistent.c"])
        assert status == 1 and "error:" in text

    def test_bad_program(self, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text("int main(void) { return }")
        status, text = run_cli(["-e", "1", str(path)])
        assert status == 1


class TestRepl:
    def test_session_flow(self, source):
        status, text = run_cli([source], stdin_text=(
            "total\n"
            "x := 2\n"
            "x * 10\n"
            "aliases\n"
            "quit\n"))
        assert status == 0
        assert "total = 12" in text
        assert "x*10 = 20" in text
        assert "x := 2" in text

    def test_help_and_clear(self, source):
        status, text = run_cli([source], stdin_text=(
            "help\nclear\naliases\nquit\n"))
        assert "DUEL REPL commands" in text
        assert "(no aliases)" in text

    def test_symbolic_toggle(self, source):
        status, text = run_cli([source], stdin_text=(
            "symbolic off\nvalues[0]\nsymbolic on\nvalues[0]\nquit\n"))
        lines = text.splitlines()
        assert "5" in lines
        assert "values[0] = 5" in lines

    def test_empty_output_marker(self, source):
        status, text = run_cli([source], stdin_text="1..0\nquit\n")
        assert "(no values)" in text

    def test_calculator_mode_without_program(self):
        status, text = run_cli([], stdin_text="(1..3)+(5,9)\nquit\n")
        assert "6 10 7 11 8 12" in text

    def test_eof_terminates(self, source):
        status, text = run_cli([source], stdin_text="total\n")
        assert status == 0


class TestHistoryAndSaved:
    def test_history_command(self, source):
        status, text = run_cli([source], stdin_text=(
            "1+1\ntotal\nhistory\nquit\n"))
        assert "  0  1+1" in text
        assert "  1  total" in text

    def test_save_and_reissue(self, source):
        status, text = run_cli([source], stdin_text=(
            "save tot total\n"
            "!tot\n"
            "quit\n"))
        assert "saved 'tot'" in text
        assert "total = 12" in text

    def test_save_validates(self, source):
        status, text = run_cli([source], stdin_text=(
            "save bad total +\nquit\n"))
        assert "saved" not in text

    def test_unknown_saved_query(self, source):
        status, text = run_cli([source], stdin_text="!nope\nquit\n")
        assert "no saved query" in text

    def test_save_usage_message(self, source):
        status, text = run_cli([source], stdin_text="save onlyname\nquit\n")
        assert "usage: save" in text


class TestSessionHistoryApi:
    def test_history_dedupes_consecutive(self, source):
        from repro import DuelSession, SimulatorBackend, TargetProgram
        session = DuelSession(SimulatorBackend(TargetProgram()))
        session.eval("1+1")
        session.eval("1+1")
        session.eval("2+2")
        assert session.history == ["1+1", "2+2"]

    def test_run_saved(self):
        from repro import DuelSession, SimulatorBackend, TargetProgram
        session = DuelSession(SimulatorBackend(TargetProgram()))
        session.save_query("sum", "+/(1..10)")
        assert session.run_saved("sum") == ["55"]
        import pytest as _pytest
        with _pytest.raises(KeyError):
            session.run_saved("missing")


class TestOptimizeFlag:
    def test_optimize_flag_same_output(self, source):
        plain_status, plain_text = run_cli(["-e", "values[1+1]", source])
        opt_status, opt_text = run_cli(
            ["--optimize", "-e", "values[1+1]", source])
        assert plain_text == opt_text
        assert "values[1+1] = 9" in opt_text
