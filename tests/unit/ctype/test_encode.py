"""Unit tests for value <-> byte codecs."""

import pytest

from repro.ctype.encode import (
    EncodeError,
    decode_value,
    encode_value,
    extract_bitfield,
    insert_bitfield,
)
from repro.ctype.types import (
    BOOL,
    CHAR,
    DOUBLE,
    EnumType,
    FLOAT,
    INT,
    LDOUBLE,
    LONG,
    PointerType,
    StructType,
    TypedefType,
    UCHAR,
    UINT,
    VOID,
)


class TestScalarRoundtrips:
    @pytest.mark.parametrize("ctype,value", [
        (INT, 0), (INT, 42), (INT, -42), (INT, 2**31 - 1), (INT, -2**31),
        (UINT, 2**32 - 1), (LONG, -2**63), (CHAR, -1), (UCHAR, 255),
        (DOUBLE, 3.25), (FLOAT, 0.5), (BOOL, 1),
    ])
    def test_roundtrip(self, ctype, value):
        assert decode_value(encode_value(value, ctype), ctype) == value

    def test_little_endian(self):
        assert encode_value(1, INT) == b"\x01\x00\x00\x00"
        assert encode_value(0x0102, INT)[:2] == b"\x02\x01"

    def test_negative_twos_complement(self):
        assert encode_value(-2, INT) == b"\xfe\xff\xff\xff"

    def test_pointer_roundtrip(self):
        p = PointerType(INT)
        raw = encode_value(0xDEADBEEF, p)
        assert len(raw) == 8
        assert decode_value(raw, p) == 0xDEADBEEF

    def test_enum_roundtrip(self):
        e = EnumType("e")
        assert decode_value(encode_value(-5, e), e) == -5

    def test_long_double_slot(self):
        raw = encode_value(2.5, LDOUBLE)
        assert len(raw) == 16
        assert decode_value(raw, LDOUBLE) == 2.5

    def test_typedef_transparent(self):
        td = TypedefType("myint", INT)
        assert decode_value(encode_value(7, td), td) == 7

    def test_overflow_wraps_on_encode(self):
        raw = encode_value(2**32 + 3, UINT)
        assert decode_value(raw, UINT) == 3

    def test_bool_normalises(self):
        assert decode_value(encode_value(17, BOOL), BOOL) == 1


class TestErrors:
    def test_void_rejected(self):
        with pytest.raises(EncodeError):
            encode_value(1, VOID)
        with pytest.raises(EncodeError):
            decode_value(b"\x00", VOID)

    def test_record_rejected(self):
        with pytest.raises(EncodeError):
            encode_value(1, StructType("s"))

    def test_short_read_rejected(self):
        with pytest.raises(EncodeError):
            decode_value(b"\x01", INT)


class TestBitfields:
    def test_extract_unsigned(self):
        unit = 0b1011_0110
        assert extract_bitfield(unit, 1, 3, signed=False) == 0b011
        assert extract_bitfield(unit, 4, 4, signed=False) == 0b1011

    def test_extract_signed_sign_extends(self):
        assert extract_bitfield(0b111, 0, 3, signed=True) == -1
        assert extract_bitfield(0b011, 0, 3, signed=True) == 3

    def test_insert_preserves_neighbours(self):
        unit = 0xFFFF
        updated = insert_bitfield(unit, 4, 4, 0)
        assert updated == 0xFF0F

    def test_insert_extract_roundtrip(self):
        unit = insert_bitfield(0, 5, 6, 37)
        assert extract_bitfield(unit, 5, 6, signed=False) == 37

    def test_insert_masks_overflow(self):
        unit = insert_bitfield(0, 0, 3, 0xFF)
        assert unit == 0b111
