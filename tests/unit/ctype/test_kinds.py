"""Unit tests for the primitive catalogue (kinds.py)."""

import pytest

from repro.ctype.kinds import (
    INTEGER_KINDS,
    Kind,
    PRIMITIVES,
    PRIMITIVES_ILP32,
    int_bounds,
    wrap_int,
)


class TestCatalogue:
    def test_lp64_sizes(self):
        assert PRIMITIVES[Kind.CHAR].size == 1
        assert PRIMITIVES[Kind.SHORT].size == 2
        assert PRIMITIVES[Kind.INT].size == 4
        assert PRIMITIVES[Kind.LONG].size == 8
        assert PRIMITIVES[Kind.LLONG].size == 8
        assert PRIMITIVES[Kind.FLOAT].size == 4
        assert PRIMITIVES[Kind.DOUBLE].size == 8

    def test_ilp32_long_is_narrower(self):
        assert PRIMITIVES_ILP32[Kind.LONG].size == 4
        assert PRIMITIVES_ILP32[Kind.ULONG].size == 4

    def test_alignment_is_natural(self):
        for kind, info in PRIMITIVES.items():
            if kind is Kind.VOID:
                continue
            assert info.align == info.size

    def test_signedness(self):
        assert PRIMITIVES[Kind.CHAR].signed
        assert not PRIMITIVES[Kind.UCHAR].signed
        assert PRIMITIVES[Kind.INT].signed
        assert not PRIMITIVES[Kind.ULLONG].signed

    def test_rank_ordering(self):
        assert (PRIMITIVES[Kind.CHAR].rank
                < PRIMITIVES[Kind.SHORT].rank
                < PRIMITIVES[Kind.INT].rank
                < PRIMITIVES[Kind.LONG].rank
                < PRIMITIVES[Kind.LLONG].rank
                < PRIMITIVES[Kind.FLOAT].rank)

    def test_integer_kinds_excludes_floats_and_void(self):
        assert Kind.INT in INTEGER_KINDS
        assert Kind.DOUBLE not in INTEGER_KINDS
        assert Kind.VOID not in INTEGER_KINDS


class TestBounds:
    def test_int_bounds(self):
        assert int_bounds(Kind.INT) == (-2**31, 2**31 - 1)
        assert int_bounds(Kind.UINT) == (0, 2**32 - 1)
        assert int_bounds(Kind.CHAR) == (-128, 127)
        assert int_bounds(Kind.UCHAR) == (0, 255)

    def test_bounds_reject_floats(self):
        with pytest.raises(ValueError):
            int_bounds(Kind.DOUBLE)

    def test_bounds_reject_void(self):
        with pytest.raises(ValueError):
            int_bounds(Kind.VOID)


class TestWrap:
    def test_wrap_identity_in_range(self):
        assert wrap_int(42, Kind.INT) == 42
        assert wrap_int(-42, Kind.INT) == -42

    def test_wrap_signed_overflow(self):
        assert wrap_int(2**31, Kind.INT) == -2**31
        assert wrap_int(2**31 - 1, Kind.INT) == 2**31 - 1
        assert wrap_int(-2**31 - 1, Kind.INT) == 2**31 - 1

    def test_wrap_unsigned_modulo(self):
        assert wrap_int(-1, Kind.UINT) == 2**32 - 1
        assert wrap_int(2**32 + 5, Kind.UINT) == 5

    def test_wrap_char(self):
        assert wrap_int(255, Kind.CHAR) == -1
        assert wrap_int(255, Kind.UCHAR) == 255
        assert wrap_int(256, Kind.UCHAR) == 0
