"""Unit tests for struct/union layout, including bit-fields."""

import pytest

from repro.ctype.layout import (
    MemberDecl,
    align_up,
    layout_struct,
    layout_union,
    make_struct,
    make_union,
)
from repro.ctype.types import (
    CHAR,
    DOUBLE,
    INT,
    LONG,
    PointerType,
    SHORT,
    UINT,
)


class TestAlignUp:
    def test_basic(self):
        assert align_up(0, 4) == 0
        assert align_up(1, 4) == 4
        assert align_up(4, 4) == 4
        assert align_up(5, 8) == 8

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(3, 0)


class TestStructLayout:
    def test_packing_with_padding(self):
        # char, int -> int aligned to 4.
        fields, size, align = layout_struct(
            [MemberDecl("c", CHAR), MemberDecl("i", INT)])
        assert [f.offset for f in fields] == [0, 4]
        assert size == 8 and align == 4

    def test_tail_padding(self):
        # int, char -> size rounds to 8? no: max align 4 -> size 8.
        fields, size, align = layout_struct(
            [MemberDecl("i", INT), MemberDecl("c", CHAR)])
        assert size == 8 and align == 4

    def test_pointer_alignment(self):
        fields, size, align = layout_struct(
            [MemberDecl("c", CHAR), MemberDecl("p", PointerType(CHAR))])
        assert fields[1].offset == 8
        assert size == 16 and align == 8

    def test_paper_symbol_struct(self):
        # struct symbol { char *name; int scope; struct symbol *next; }
        s = make_struct("symbol", [
            MemberDecl("name", PointerType(CHAR)),
            MemberDecl("scope", INT),
            MemberDecl("next", PointerType(CHAR)),
        ])
        assert s.field("name").offset == 0
        assert s.field("scope").offset == 8
        assert s.field("next").offset == 16
        assert s.size == 24

    def test_empty_struct(self):
        fields, size, align = layout_struct([])
        assert fields == [] and size == 0 and align == 1

    def test_nested_struct_member(self):
        inner = make_struct("in", [MemberDecl("d", DOUBLE)])
        fields, size, align = layout_struct(
            [MemberDecl("c", CHAR), MemberDecl("s", inner)])
        assert fields[1].offset == 8
        assert align == 8


class TestBitfields:
    def test_pack_into_one_unit(self):
        fields, size, align = layout_struct([
            MemberDecl("a", UINT, 3),
            MemberDecl("b", UINT, 5),
            MemberDecl("c", UINT, 24),
        ])
        assert all(f.offset == 0 for f in fields)
        assert [f.bit_offset for f in fields] == [0, 3, 8]
        assert size == 4

    def test_overflow_starts_new_unit(self):
        fields, size, align = layout_struct([
            MemberDecl("a", UINT, 30),
            MemberDecl("b", UINT, 5),
        ])
        assert fields[0].offset == 0
        assert fields[1].offset == 4
        assert fields[1].bit_offset == 0
        assert size == 8

    def test_zero_width_closes_unit(self):
        fields, size, align = layout_struct([
            MemberDecl("a", UINT, 3),
            MemberDecl("", UINT, 0),
            MemberDecl("b", UINT, 3),
        ])
        named = [f for f in fields if f.name]
        assert named[0].offset == 0
        assert named[1].offset == 4

    def test_bitfield_then_plain_member(self):
        fields, size, align = layout_struct([
            MemberDecl("a", UINT, 3),
            MemberDecl("x", INT),
        ])
        assert fields[1].offset == 4
        assert size == 8

    def test_width_out_of_range(self):
        with pytest.raises(TypeError):
            layout_struct([MemberDecl("a", UINT, 33)])

    def test_non_integer_bitfield(self):
        with pytest.raises(TypeError):
            layout_struct([MemberDecl("a", DOUBLE, 3)])

    def test_short_base_unit(self):
        fields, size, align = layout_struct([
            MemberDecl("a", SHORT, 9),
            MemberDecl("b", SHORT, 9),  # 9+9 > 16: new unit
        ])
        assert fields[0].offset == 0
        assert fields[1].offset == 2
        assert size == 4


class TestUnionLayout:
    def test_union_size_is_max(self):
        u = make_union("u", [
            MemberDecl("c", CHAR),
            MemberDecl("l", LONG),
            MemberDecl("i", INT),
        ])
        assert u.size == 8
        assert all(u.field(n).offset == 0 for n in ("c", "l", "i"))

    def test_union_alignment_padding(self):
        fields, size, align = layout_union([
            MemberDecl("c3", CHAR), MemberDecl("i", INT),
        ])
        assert size == 4 and align == 4

    def test_union_with_bitfield(self):
        fields, size, align = layout_union([
            MemberDecl("bits", UINT, 7),
            MemberDecl("whole", UINT),
        ])
        assert size == 4
        assert fields[0].bit_offset == 0
