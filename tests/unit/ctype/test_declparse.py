"""Unit tests for the C declaration parser."""

import pytest

from repro.ctype.declparse import DeclError, DeclParser, TypeEnv, parse_type
from repro.ctype.types import (
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    UnionType,
)


@pytest.fixture
def parser():
    return DeclParser()


class TestSimpleDeclarations:
    def test_int(self, parser):
        decls = parser.parse("int x;")
        assert decls[0].name == "x"
        assert decls[0].ctype.name() == "int"

    def test_multiple_declarators(self, parser):
        decls = parser.parse("int a, *b, c[3];")
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert decls[1].ctype == PointerType(decls[0].ctype)
        assert isinstance(decls[2].ctype, ArrayType)

    def test_specifier_orders(self, parser):
        assert parser.parse("unsigned long x;")[0].ctype.name() == "unsigned long"
        assert parser.parse("long unsigned y;")[0].ctype.name() == "unsigned long"
        assert parser.parse("long long z;")[0].ctype.name() == "long long"

    def test_storage_classes_ignored(self, parser):
        decls = parser.parse("static int x; extern char y;")
        assert len(decls) == 2

    def test_const_volatile_ignored(self, parser):
        assert parser.parse("const int x;")[0].ctype.name() == "int"

    def test_bad_combo_rejected(self, parser):
        with pytest.raises(DeclError):
            parser.parse("long float x;")

    def test_missing_semicolon(self, parser):
        with pytest.raises(DeclError):
            parser.parse("int x")


class TestDerivedTypes:
    def test_pointer_chain(self, parser):
        t = parser.parse("char **argv;")[0].ctype
        assert t == PointerType(PointerType(parser.parse("char c;")[0].ctype))

    def test_array_of_arrays(self, parser):
        t = parser.parse("int m[2][3];")[0].ctype
        assert isinstance(t, ArrayType) and t.length == 2
        assert isinstance(t.element, ArrayType) and t.element.length == 3
        assert t.size == 24

    def test_array_size_expression(self, parser):
        t = parser.parse("int x[4*256];")[0].ctype
        assert t.length == 1024

    def test_function_pointer(self, parser):
        decls = parser.parse("int (*handler)(int, char *);")
        t = decls[0].ctype
        assert isinstance(t, PointerType)
        assert isinstance(t.target, FunctionType)
        assert len(t.target.params) == 2

    def test_prototype(self, parser):
        t = parser.parse("int f(double, char);")[0].ctype
        assert isinstance(t, FunctionType)
        assert t.result.name() == "int"

    def test_varargs_prototype(self, parser):
        t = parser.parse("int printf(char *, ...);")[0].ctype
        assert t.varargs

    def test_array_param_decays(self, parser):
        t = parser.parse("int f(int a[10]);")[0].ctype
        assert isinstance(t.params[0], PointerType)


class TestRecords:
    def test_paper_declaration(self, parser):
        decls = parser.parse(
            "struct symbol { char *name; int scope;"
            " struct symbol *next; } *hash[1024];")
        hash_t = decls[0].ctype
        assert isinstance(hash_t, ArrayType) and hash_t.length == 1024
        sym = parser.env.structs["symbol"]
        assert sym.size == 24
        assert sym.field("next").ctype.target is sym

    def test_forward_reference(self, parser):
        parser.parse("struct a { struct b *link; };")
        assert not parser.env.structs["b"].is_complete
        parser.parse("struct b { int x; };")
        assert parser.env.structs["b"].is_complete

    def test_union(self, parser):
        parser.parse("union u { int i; double d; } v;")
        assert isinstance(parser.env.unions["u"], UnionType)
        assert parser.env.unions["u"].size == 8

    def test_bitfields(self, parser):
        parser.parse("struct flags { unsigned a:1; unsigned b:2; int :0;"
                     " unsigned c:3; };")
        flags = parser.env.structs["flags"]
        a, b, c = flags.field("a"), flags.field("b"), flags.field("c")
        assert (a.bit_offset, a.bit_width) == (0, 1)
        assert (b.bit_offset, b.bit_width) == (1, 2)
        assert c.offset > a.offset  # :0 closed the unit

    def test_anonymous_inner_struct(self, parser):
        parser.parse("struct outer { int tag; struct { int x; int y; }; };")
        outer = parser.env.structs["outer"]
        assert outer.field("x") is not None
        assert outer.field("x").offset == 4

    def test_tag_only_declaration(self, parser):
        assert parser.parse("struct list { int v; };") == []
        assert parser.env.structs["list"].is_complete


class TestEnums:
    def test_auto_numbering(self, parser):
        parser.parse("enum color { RED, GREEN = 5, BLUE } c;")
        e = parser.env.enums["color"]
        assert e.enumerators == {"RED": 0, "GREEN": 5, "BLUE": 6}

    def test_enum_constant_in_array_size(self, parser):
        parser.parse("enum sizes { BIG = 10 };")
        t = parser.parse("int x[BIG];")[0].ctype
        assert t.length == 10


class TestTypedefs:
    def test_typedef_then_use(self, parser):
        parser.parse("typedef unsigned long size_t;")
        t = parser.parse("size_t n;")[0].ctype
        assert t.name() == "size_t"
        assert t.strip_typedefs().name() == "unsigned long"

    def test_typedef_pointer(self, parser):
        parser.parse("typedef struct node *nodep;")
        t = parser.parse("nodep head;")[0].ctype
        assert t.strip_typedefs().is_pointer


class TestParseType:
    def test_simple(self):
        assert parse_type("int").name() == "int"
        assert parse_type("double *").is_pointer

    def test_abstract_declarators(self):
        t = parse_type("int *[3]")
        assert isinstance(t, ArrayType)
        assert isinstance(t.element, PointerType)

    def test_struct_pointer(self):
        env = TypeEnv()
        DeclParser(env).parse("struct s { int x; };")
        t = parse_type("struct s *", env)
        assert t.target is env.structs["s"]

    def test_trailing_junk_rejected(self):
        with pytest.raises(DeclError):
            parse_type("int x")

    def test_function_pointer_type(self):
        t = parse_type("void (*)(int)")
        assert isinstance(t, PointerType)
        assert t.target.is_function
