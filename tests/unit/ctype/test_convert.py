"""Unit tests for C conversions (promotions, UAC, value conversion)."""

import pytest

from repro.ctype.convert import (
    ConversionError,
    common_pointer_type,
    convert_value,
    integer_promote,
    is_null_constant,
    usual_arithmetic_conversions as uac,
)
from repro.ctype.types import (
    BOOL,
    CHAR,
    DOUBLE,
    EnumType,
    FLOAT,
    INT,
    LONG,
    PointerType,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
)


class TestPromotion:
    def test_sub_int_promotes_to_int(self):
        assert integer_promote(CHAR) is INT
        assert integer_promote(SHORT) is INT
        assert integer_promote(UCHAR) is INT
        assert integer_promote(USHORT) is INT
        assert integer_promote(BOOL) is INT

    def test_int_and_up_unchanged(self):
        assert integer_promote(INT) is INT
        assert integer_promote(UINT).kind == UINT.kind
        assert integer_promote(LONG) is LONG

    def test_enum_promotes_to_int(self):
        assert integer_promote(EnumType("e")) is INT


class TestUsualArithmetic:
    def test_same_type(self):
        assert uac(INT, INT) is INT

    def test_chars_promote_then_int(self):
        assert uac(CHAR, CHAR) is INT

    def test_float_wins(self):
        assert uac(INT, DOUBLE) is DOUBLE
        assert uac(FLOAT, LONG) is FLOAT
        assert uac(FLOAT, DOUBLE) is DOUBLE

    def test_rank_wins_same_signedness(self):
        assert uac(INT, LONG) is LONG
        assert uac(UINT, ULONG) is ULONG

    def test_unsigned_higher_rank_wins(self):
        assert uac(INT, ULONG) is ULONG

    def test_signed_wider_wins(self):
        # long can represent all of unsigned int -> long.
        assert uac(UINT, LONG) is LONG

    def test_equal_rank_mixed_goes_unsigned(self):
        assert uac(INT, UINT).name() == "unsigned int"

    def test_non_arithmetic_rejected(self):
        with pytest.raises(ConversionError):
            uac(PointerType(INT), INT)


class TestConvertValue:
    def test_float_to_int_truncates(self):
        assert convert_value(3.9, DOUBLE, INT) == 3
        assert convert_value(-3.9, DOUBLE, INT) == -3

    def test_int_to_float(self):
        assert convert_value(7, INT, DOUBLE) == 7.0

    def test_narrowing_wraps(self):
        assert convert_value(257, INT, CHAR) == 1
        assert convert_value(-1, INT, UCHAR) == 255

    def test_to_bool(self):
        assert convert_value(42, INT, BOOL) == 1
        assert convert_value(0, INT, BOOL) == 0

    def test_pointer_to_int_and_back(self):
        p = PointerType(INT)
        assert convert_value(0x1234, p, ULONG) == 0x1234
        assert convert_value(0x1234, ULONG, p) == 0x1234

    def test_to_void_discards(self):
        assert convert_value(5, INT, VOID) is None

    def test_enum_roundtrip(self):
        e = EnumType("e", [("A", 1)])
        assert convert_value(1, e, INT) == 1
        assert convert_value(7, INT, e) == 7


class TestPointerHelpers:
    def test_common_pointer_prefers_non_void(self):
        pi = PointerType(INT)
        pv = PointerType(VOID)
        assert common_pointer_type(pv, pi) is pi
        assert common_pointer_type(pi, pv) is pi

    def test_null_constant(self):
        assert is_null_constant(0, INT)
        assert not is_null_constant(1, INT)
        assert not is_null_constant(0, PointerType(INT))
