"""Unit tests for the CType hierarchy."""

import pytest

from repro.ctype.layout import MemberDecl, make_struct, make_union
from repro.ctype.types import (
    ArrayType,
    CHAR,
    DOUBLE,
    EnumType,
    FunctionType,
    INT,
    LONG,
    PointerType,
    StructType,
    TypedefType,
    UINT,
    VOID,
    array_of,
    pointer_to,
)


class TestClassification:
    def test_int_is_integer_and_arithmetic(self):
        assert INT.is_integer and INT.is_arithmetic and INT.is_scalar
        assert not INT.is_pointer and not INT.is_float

    def test_double_is_float(self):
        assert DOUBLE.is_float and DOUBLE.is_arithmetic
        assert not DOUBLE.is_integer

    def test_void(self):
        assert VOID.is_void
        assert not VOID.is_arithmetic

    def test_pointer(self):
        p = pointer_to(INT)
        assert p.is_pointer and p.is_scalar
        assert p.size == 8 and p.align == 8
        assert p.target is INT

    def test_array(self):
        a = array_of(INT, 10)
        assert a.is_array and not a.is_scalar
        assert a.size == 40
        assert a.decay() == PointerType(INT)

    def test_incomplete_array_size_raises(self):
        with pytest.raises(TypeError):
            _ = array_of(INT, None).size

    def test_function_type(self):
        f = FunctionType(INT, (pointer_to(CHAR),), varargs=True)
        assert f.is_function
        with pytest.raises(TypeError):
            _ = f.size


class TestNames:
    def test_primitive_names(self):
        assert INT.name() == "int"
        assert UINT.name() == "unsigned int"
        assert str(LONG) == "long"

    def test_derived_names(self):
        assert pointer_to(INT).name() == "int *"
        assert array_of(pointer_to(CHAR), 4).name() == "char * [4]"

    def test_record_names(self):
        assert StructType("symbol").name() == "struct symbol"
        assert StructType(None).name() == "struct <anonymous>"


class TestRecords:
    def test_incomplete_record_rejects_fields(self):
        s = StructType("fwd")
        assert not s.is_complete
        with pytest.raises(TypeError):
            _ = s.fields
        with pytest.raises(TypeError):
            _ = s.size

    def test_completion_and_lookup(self):
        s = make_struct("pair", [MemberDecl("a", INT), MemberDecl("b", INT)])
        assert s.is_complete
        assert s.field("a").offset == 0
        assert s.field("b").offset == 4
        assert s.field("missing") is None
        assert s.field_names() == ["a", "b"]

    def test_double_completion_rejected(self):
        s = make_struct("once", [MemberDecl("a", INT)])
        with pytest.raises(TypeError):
            s.complete([], 0, 1)

    def test_anonymous_member_lookup(self):
        inner = make_union(None, [MemberDecl("i", INT),
                                  MemberDecl("d", DOUBLE)])
        outer = make_struct("holder", [
            MemberDecl("tag", INT),
            MemberDecl("", inner),
        ])
        f = outer.field("d")
        assert f is not None
        assert f.offset == 8  # after tag + padding to double alignment
        assert "d" in outer.field_names()

    def test_self_referential_struct(self):
        node = StructType("node")
        make = [MemberDecl("value", INT), MemberDecl("next", pointer_to(node))]
        from repro.ctype.layout import complete_struct
        complete_struct(node, make)
        assert node.size == 16
        assert node.field("next").ctype.target is node


class TestEnum:
    def test_enum_is_int_like(self):
        e = EnumType("color", [("RED", 0), ("BLUE", 5)])
        assert e.is_integer
        assert e.size == 4
        assert e.name_of(5) == "BLUE"
        assert e.name_of(99) is None


class TestTypedef:
    def test_typedef_delegates(self):
        td = TypedefType("size_t", UINT)
        assert td.is_integer
        assert td.size == 4
        assert td.name() == "size_t"
        assert td.strip_typedefs() is UINT

    def test_nested_typedef_strips_fully(self):
        inner = TypedefType("a_t", INT)
        outer = TypedefType("b_t", inner)
        assert outer.strip_typedefs() is INT

    def test_typedef_of_record(self):
        s = make_struct("s", [MemberDecl("x", INT)])
        td = TypedefType("S", s)
        assert td.is_record
        assert td.size == s.size
