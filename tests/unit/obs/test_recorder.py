"""Flight recorder: bounded memory, dump triggers, post-mortem shape."""

import io
import json
import os

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import (DuelMemoryError, DuelNameError,
                               DuelSyntaxError, DuelTargetError)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DUMP_VERSION, FlightRecorder, should_dump
from repro.target import builder


def array_session(**kwargs):
    program = TargetProgram()
    builder.int_array(program, "x", [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    return DuelSession(SimulatorBackend(program),
                       metrics=MetricsRegistry(), **kwargs)


class TestBoundedMemory:
    def test_holds_at_most_capacity_after_many_records(self):
        recorder = FlightRecorder(capacity=5)
        for index in range(5 + 13):
            recorder.record({"qid": index})
        assert len(recorder.entries) == 5
        assert recorder.recorded == 18
        assert [e["qid"] for e in recorder.entries] == list(range(13, 18))

    def test_recorder_bounded_after_n_plus_k_session_queries(self):
        """The recorder holds ≤ N queries after N+k runs — driven
        through the real session, not synthetic records."""
        capacity = 4
        session = array_session()
        session.recorder = FlightRecorder(capacity=capacity)
        out = io.StringIO()
        for index in range(capacity + 7):
            session.duel(f"x[{index % 10}]", out=out)
        recorder = session.recorder
        assert len(recorder.entries) == capacity
        assert recorder.recorded == capacity + 7
        assert [e["text"] for e in recorder.entries] == \
            [f"x[{i % 10}]" for i in range(7, 11)]

    def test_event_ring_clipped_per_entry(self):
        recorder = FlightRecorder(capacity=2, ring_capacity=3)
        recorder.record({"qid": 1,
                         "events": [["pull", i] for i in range(10)]})
        (entry,) = recorder.entries
        assert entry["events"] == [["pull", 7], ["pull", 8], ["pull", 9]]
        assert entry["events_clipped"] is True

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestShouldDump:
    def test_triggers(self):
        assert should_dump("truncated")
        assert should_dump("cancelled")
        assert should_dump("faulted", DuelTargetError("boom"))
        assert should_dump("faulted",
                           DuelMemoryError("x", "x->y", "x", "0x0"))

    def test_non_triggers(self):
        assert not should_dump("drained")
        assert not should_dump("rejected", DuelSyntaxError("bad"))
        assert not should_dump("faulted", DuelNameError("typo"))


class TestDump:
    def test_requires_a_directory(self):
        recorder = FlightRecorder()
        with pytest.raises(ValueError):
            recorder.dump("manual")

    def test_artifact_is_self_contained(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=str(tmp_path),
                                  clock=lambda: 99.0)
        recorder.record({"qid": 1, "text": "x[0]", "outcome": "drained"})
        session = array_session()
        path = recorder.dump("unit test", metrics=session.metrics,
                             governor=session.governor)
        artifact = json.loads(open(path).read())
        assert artifact["version"] == DUMP_VERSION
        assert artifact["reason"] == "unit test"
        assert artifact["dumped_at"] == 99.0
        assert artifact["queries"] == [
            {"qid": 1, "text": "x[0]", "outcome": "drained"}]
        assert "counters" in artifact["metrics"]
        assert artifact["limits"]["steps"] == 10_000_000
        assert artifact["policies"]["steps"] == "truncate"

    def test_dump_files_are_sequenced(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        first = recorder.dump("one")
        second = recorder.dump("two")
        assert first.endswith("duel-postmortem-0001.json")
        assert second.endswith("duel-postmortem-0002.json")
        assert recorder.dumps == 2

    def test_explicit_directory_overrides_configured(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path / "a"))
        path = recorder.dump("manual", dump_dir=str(tmp_path / "b"))
        assert os.path.dirname(path) == str(tmp_path / "b")


class TestSessionAutoDump:
    def run_queries(self, session, *texts):
        out = io.StringIO()
        for text in texts:
            session.duel(text, out=out)
        return out.getvalue()

    def test_truncation_dumps_with_explain_tree(self, tmp_path):
        session = array_session()
        session.recorder = FlightRecorder(dump_dir=str(tmp_path))
        session.governor.set_limit("lines", 2)
        self.run_queries(session, "x[..10]")
        dumps = sorted(os.listdir(tmp_path))
        assert len(dumps) == 1
        artifact = json.loads((tmp_path / dumps[0]).read_text())
        assert "truncated" in artifact["reason"]
        assert "x[..10]" in artifact["reason"]
        (query,) = artifact["queries"]
        assert query["outcome"] == "truncated"
        assert query["kind"] == "lines"
        # The recorder implies tracing: the entry carries the full
        # per-node profile tree (preorder, depth included).
        ops = [span["op"] for span in query["explain"]]
        assert "index" in ops and "to" in ops
        assert query["explain"][0]["depth"] == 0
        assert query["events"]         # and a tail of pull/yield events
        assert artifact["limits"]["lines"] == 2

    def test_memory_fault_dumps(self, tmp_path):
        session = array_session()
        session.recorder = FlightRecorder(dump_dir=str(tmp_path))
        self.run_queries(session, "x[0]", "x[2000000]")
        dumps = os.listdir(tmp_path)
        assert len(dumps) == 1
        artifact = json.loads((tmp_path / dumps[0]).read_text())
        assert "faulted" in artifact["reason"]
        assert artifact["queries"][-1]["error_type"] == "DuelMemoryError"
        # The clean query rides along in the window for context.
        assert [q["outcome"] for q in artifact["queries"]] == \
            ["drained", "faulted"]

    def test_plain_user_errors_do_not_dump(self, tmp_path):
        session = array_session()
        session.recorder = FlightRecorder(dump_dir=str(tmp_path))
        self.run_queries(session, "nosuchname", "x[", "x[0]")
        assert os.listdir(tmp_path) == []
        assert [e["outcome"] for e in session.recorder.entries] == \
            ["faulted", "drained"]      # rejected parses never record

    def test_no_dump_dir_records_but_never_dumps(self, tmp_path):
        session = array_session()
        session.recorder = FlightRecorder()
        session.governor.set_limit("lines", 2)
        self.run_queries(session, "x[..10]")
        assert len(session.recorder.entries) == 1
        assert session.recorder.dumps == 0

    def test_recorder_off_costs_nothing_visible(self):
        session = array_session()
        assert session.recorder is None
        self.run_queries(session, "x[0]")
        assert session.last_trace is None      # no implied tracer


class TestPinnedRecords:
    def test_pin_survives_window_rollover(self):
        recorder = FlightRecorder(capacity=4, clock=lambda: 1000.0)
        recorder.pin("slow_query", {"trace": {"trace_id": "t1"}})
        for index in range(20):
            recorder.record({"text": f"q{index}", "outcome": "drained"})
        assert len(recorder.entries) == 4
        assert len(recorder.pinned) == 1
        pinned = recorder.pinned[0]
        assert pinned["pin_reason"] == "slow_query"
        assert pinned["pinned_at"] == 1000.0
        assert pinned["trace"]["trace_id"] == "t1"

    def test_pin_capacity_is_bounded(self):
        recorder = FlightRecorder(pin_capacity=3)
        for index in range(10):
            recorder.pin("slow_query", {"n": index})
        assert [p["n"] for p in recorder.pinned] == [7, 8, 9]

    def test_dump_includes_pinned(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.record({"text": "q", "outcome": "drained"})
        recorder.pin("slow_query", {"trace": {"trace_id": "t9"}})
        path = recorder.dump("test")
        artifact = json.loads(open(path).read())
        assert len(artifact["pinned"]) == 1
        assert artifact["pinned"][0]["trace"]["trace_id"] == "t9"
        assert artifact["queries"][0]["text"] == "q"

    def test_empty_pins_dump_as_empty_list(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        artifact = json.loads(open(recorder.dump("test")).read())
        assert artifact["pinned"] == []
