"""Memory-access observatory: tracer ring, profiles, classification,
the prefetch advisor's cache simulation, and the JSONL export."""

import io
import json

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.access import (ADVISOR_CAPACITIES, ADVISOR_PAGE_SIZES,
                              PATTERNS, AccessLog, AccessTracer,
                              _merge_intervals, advise, classify_pattern,
                              compact_profile, profile_records,
                              render_report, simulate_page_cache)
from repro.target import builder
from repro.target.interface import AccessTracingBackend


def reads(addresses, size=4):
    """Synthetic read records at the given addresses."""
    return [("r", address, size, -1) for address in addresses]


def sequential(n, base=0, size=4):
    return reads(range(base, base + n * size, size), size=size)


# -- the tracer ring ----------------------------------------------------

class TestAccessTracer:
    def test_records_accesses_in_order(self):
        tracer = AccessTracer()
        tracer.on_access("r", 100, 4)
        tracer.on_access("w", 200, 8)
        assert tracer.accesses() == [("r", 100, 4), ("w", 200, 8)]
        assert tracer.reads == 1
        assert tracer.writes == 1
        assert tracer.total_bytes == 12

    def test_ring_bounds_memory_and_counts_drops(self):
        tracer = AccessTracer(capacity=4)
        for i in range(10):
            tracer.on_access("r", i * 4, 4)
        assert len(tracer.records()) == 4
        assert tracer.dropped == 6
        # The tail survives, the head is gone.
        assert tracer.accesses()[0] == ("r", 24, 4)
        # Cumulative counters survive rollover.
        assert tracer.reads == 10
        assert tracer.total_bytes == 40
        assert tracer.profile()["dropped"] == 6

    def test_span_defaults_to_minus_one_without_engine_tracer(self):
        tracer = AccessTracer()
        tracer.on_access("r", 0, 4)
        assert tracer.records() == [("r", 0, 4, -1)]


class TestAccessTracingBackend:
    def backend(self, tracer=None):
        program = TargetProgram()
        builder.int_array(program, "x", [1, 2, 3])
        return AccessTracingBackend(SimulatorBackend(program), tracer)

    def test_passes_reads_and_writes_through(self):
        backend = self.backend()
        inner = backend.inner
        address = inner.get_target_variable("x").address
        assert backend.get_target_bytes(address, 4) == \
            inner.get_target_bytes(address, 4)
        backend.put_target_bytes(address, b"\x2a\x00\x00\x00")
        assert inner.get_target_bytes(address, 4)[0] == 0x2A

    def test_streams_accesses_to_tracer(self):
        tracer = AccessTracer()
        backend = self.backend(tracer)
        address = backend.get_target_variable("x").address
        backend.get_target_bytes(address, 4)
        backend.put_target_bytes(address + 4, b"zz")
        assert tracer.accesses() == [("r", address, 4),
                                     ("w", address + 4, 2)]

    def test_no_tracer_means_no_recording(self):
        backend = self.backend()
        address = backend.get_target_variable("x").address
        backend.get_target_bytes(address, 4)
        assert backend.tracer is None

    def test_delegates_other_backend_methods(self):
        backend = self.backend()
        assert backend.get_target_variable("x") is not None
        assert backend.frames_count() == backend.inner.frames_count()


# -- interval arithmetic ------------------------------------------------

class TestMergeIntervals:
    def test_empty(self):
        assert _merge_intervals([]) == 0

    def test_disjoint(self):
        assert _merge_intervals([(0, 4), (8, 12)]) == 8

    def test_overlapping_counted_once(self):
        assert _merge_intervals([(0, 8), (4, 12)]) == 12

    def test_contained_and_duplicate(self):
        assert _merge_intervals([(0, 16), (4, 8), (0, 16)]) == 16

    def test_unsorted_input(self):
        assert _merge_intervals([(20, 24), (0, 4), (4, 8)]) == 12


# -- classification -----------------------------------------------------

class TestClassification:
    def classify(self, records):
        return profile_records(records)["pattern"]

    def test_sequential_scan(self):
        assert self.classify(sequential(64)) == "sequential"

    def test_sequential_survives_inplace_rereads(self):
        # The evaluator double-loads every cell: zero deltas must not
        # dilute the dominant stride (the BENCH P3 shape).
        records = []
        for address in range(0, 256, 4):
            records += [("r", address, 4, -1)] * 2
        profile = profile_records(records)
        assert profile["pattern"] == "sequential"
        assert profile["inplace_rereads"] == 64
        assert profile["dominant_share"] == 1.0

    def test_strided_scan(self):
        # One 4-byte field out of every 32-byte struct slot.
        assert self.classify(reads(range(0, 32 * 64, 32))) == "strided"

    def test_pointer_chase(self):
        # Irregular hops, every address touched exactly once.
        addresses, address = [], 0
        for i in range(64):
            addresses.append(address)
            address += 40 + (i * 7919) % 1000
        assert self.classify(reads(addresses)) == "pointer-chase"

    def test_random_with_revisits(self):
        addresses = [(i * 7919) % 32 * 64 for i in range(128)]
        profile = profile_records(reads(addresses))
        assert profile["pattern"] == "random"
        assert profile["revisit_ratio"] > 0.05

    def test_scalar_for_tiny_queries(self):
        assert self.classify(reads([0, 8, 64])) == "scalar"
        assert self.classify([]) == "scalar"

    def test_patterns_vocabulary_is_closed(self):
        for records in (sequential(32), reads(range(0, 2048, 32)), []):
            assert self.classify(records) in PATTERNS

    def test_classify_pattern_direct(self):
        from collections import Counter
        assert classify_pattern(Counter({4: 10}), 10, 4, 0.0) \
            == "sequential"
        assert classify_pattern(Counter({32: 10}), 10, 4, 0.0) \
            == "strided"
        assert classify_pattern(Counter({-4: 10}), 10, 4, 0.0) \
            == "strided"          # backwards scan is regular, not seq
        assert classify_pattern(Counter({4: 1}), 1, 4, 0.0) == "scalar"


class TestProfileRecords:
    def test_byte_accounting(self):
        records = sequential(10) + sequential(10)     # full re-read
        profile = profile_records(records)
        assert profile["reads"] == 20
        assert profile["total_bytes"] == 80
        assert profile["unique_bytes"] == 40
        assert profile["reread_ratio"] == 0.5

    def test_page_accounting(self):
        profile = profile_records(sequential(64), page_size=64)
        assert profile["unique_pages"] == 4
        assert profile["page_locality"] == 16.0
        assert profile["page_size"] == 64

    def test_page_size_validated(self):
        with pytest.raises(ValueError):
            profile_records([], page_size=0)

    def test_access_spanning_a_page_boundary(self):
        profile = profile_records([("r", 60, 8, -1)], page_size=64)
        assert profile["unique_pages"] == 2

    def test_top_spans_attribution(self):
        records = [("r", i * 4, 4, 7) for i in range(10)] + \
                  [("r", 1000, 4, 3)]
        profile = profile_records(records)
        assert profile["top_spans"][0] == [7, 10]

    def test_stride_histogram_is_bounded(self):
        addresses, address = [], 0
        for i in range(100):
            address += i + 1                  # all distinct strides
            addresses.append(address)
        profile = profile_records(reads(addresses))
        assert len(profile["stride_histogram"]) == 8

    def test_compact_profile_keys(self):
        compact = compact_profile(profile_records(sequential(32)))
        assert set(compact) == {"accesses", "unique_bytes",
                                "unique_pages", "page_size",
                                "reread_ratio", "pattern"}


# -- the prefetch advisor -----------------------------------------------

class TestPageCacheSimulation:
    def test_sequential_scan_hits_within_page(self):
        # 16 reads per 64B page: 1 miss + 15 hits each.
        result = simulate_page_cache(sequential(64), 64, 4)
        assert result["misses"] == 4
        assert result["hits"] == 60
        assert result["hit_rate"] == round(60 / 64, 4)
        assert result["fetched_bytes"] == 4 * 64

    def test_lru_eviction(self):
        # Cycle over 3 pages with capacity 2: every touch misses.
        records = reads([0, 64, 128] * 4, size=4)
        result = simulate_page_cache(records, 64, 2)
        assert result["hits"] == 0
        assert result["misses"] == 12

    def test_capacity_large_enough_caches_the_working_set(self):
        records = reads([0, 64, 128] * 4, size=4)
        result = simulate_page_cache(records, 64, 3)
        assert result["misses"] == 3
        assert result["hits"] == 9

    def test_empty_trace(self):
        result = simulate_page_cache([], 64, 4)
        assert result["hit_rate"] == 0.0

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            simulate_page_cache([], 0, 4)
        with pytest.raises(ValueError):
            simulate_page_cache([], 64, 0)


class TestAdvise:
    def test_sweeps_the_full_grid(self):
        advice = advise(sequential(256))
        assert len(advice) == \
            len(ADVISOR_PAGE_SIZES) * len(ADVISOR_CAPACITIES)
        seen = {(entry["page_size"], entry["capacity"])
                for entry in advice}
        assert (64, 4) in seen and (4096, 32) in seen

    def test_best_projection_first(self):
        advice = advise(sequential(256))
        rates = [entry["hit_rate"] for entry in advice]
        assert rates == sorted(rates, reverse=True)

    def test_ties_break_to_smaller_footprint(self):
        # A tiny trace every configuration serves equally well.
        advice = advise(reads([0, 0, 0, 0]))
        best = advice[0]
        assert best["page_size"] * best["capacity"] == \
            min(e["page_size"] * e["capacity"] for e in advice)


class TestRenderReport:
    def test_report_lines(self):
        records = sequential(64)
        lines = render_report("x[..64] !=? 0", profile_records(records),
                              advise(records))
        text = "\n".join(lines)
        assert "accesses: x[..64] !=? 0" in text
        assert "pattern: sequential" in text
        assert "dominant stride +4" in text
        assert "prefetch advisor" in text
        assert "projected best:" in text

    def test_dropped_records_flagged(self):
        profile = profile_records(sequential(8))
        profile["dropped"] = 5
        lines = render_report("q", profile, [])
        assert any("dropped 5" in line for line in lines)

    def test_empty_profile_renders(self):
        lines = render_report("q", profile_records([]), [])
        assert "pattern: scalar" in "\n".join(lines)


# -- the JSONL export ---------------------------------------------------

class TestAccessLog:
    def test_export_writes_jsonl(self):
        buffer = io.StringIO()
        log = AccessLog(buffer)
        log.export({"ev": "access", "text": "x[0]"})
        log.export({"ev": "access", "text": "x[1]"})
        log.close()
        lines = buffer.getvalue().splitlines()
        assert [json.loads(line)["text"] for line in lines] == \
            ["x[0]", "x[1]"]
        assert log.exported == 2

    def test_head_sampling_is_counter_based(self):
        log = AccessLog(io.StringIO(), sample=3)
        coins = [log.sample_next() for _ in range(9)]
        assert coins == [False, False, True] * 3

    def test_sample_one_admits_everything(self):
        log = AccessLog(io.StringIO())
        assert all(log.sample_next() for _ in range(5))

    def test_sample_validated(self):
        with pytest.raises(ValueError):
            AccessLog(io.StringIO(), sample=0)

    def test_owns_and_closes_path_streams(self, tmp_path):
        path = tmp_path / "acc.jsonl"
        log = AccessLog(path)
        log.export({"ev": "access"})
        log.close()
        assert log._stream.closed
        assert json.loads(path.read_text())["ev"] == "access"


# -- session wiring -----------------------------------------------------

def array_session(n=256, qlog=None, statements=None):
    program = TargetProgram()
    builder.int_array(program, "x", list(range(n)))
    session = DuelSession(SimulatorBackend(program))
    session.qlog = qlog
    if statements is not None:
        session.statements = statements
    return session


class TestSessionAccesses:
    def test_accesses_reports_a_classified_profile(self):
        session = array_session()
        result = session.accesses("x[..256] !=? 0")
        assert result["outcome"] == "done"
        profile = result["access"]
        assert profile["pattern"] == "sequential"
        assert profile["reads"] >= 256
        assert profile["unique_pages"] >= 16
        assert result["fingerprint"]

    def test_accesses_carries_the_advisor_sweep(self):
        session = array_session()
        result = session.accesses("x[..256] !=? 0")
        advice = result["advisor"]
        assert len({entry["page_size"] for entry in advice}) >= 2
        assert advice[0]["hit_rate"] >= advice[-1]["hit_rate"]

    def test_accesses_on_compile_error(self):
        session = array_session()
        result = session.accesses("x[")
        assert result["outcome"] == "error"
        assert "access" not in result

    def test_untraced_queries_pay_no_tracer(self):
        session = array_session()
        session.duel("x[..8]", out=io.StringIO())
        assert session.last_access is None
        assert session.evaluator.backend.tracer is None

    def test_accesslog_sampling_drives_export(self):
        buffer = io.StringIO()
        session = array_session()
        session.accesslog = AccessLog(buffer, sample=2)
        out = io.StringIO()
        session.duel("x[..4]", out=out)       # coin 1: skipped
        session.duel("x[..4]", out=out)       # coin 2: profiled
        records = [json.loads(line)
                   for line in buffer.getvalue().splitlines()]
        assert len(records) == 1
        assert records[0]["ev"] == "access"
        assert records[0]["profile"]["reads"] > 0
        assert records[0]["outcome"] == "drained"

    def test_qlog_terminal_record_carries_compact_profile(self):
        from repro.obs.qlog import QueryLog
        qbuf = io.StringIO()
        session = array_session(qlog=QueryLog(qbuf, clock=lambda: 0.0))
        session.accesses("x[..16]")
        terminal = [json.loads(line)
                    for line in qbuf.getvalue().splitlines()][-1]
        assert terminal["ev"] == "drained"
        assert terminal["access"]["pattern"] == "sequential"
        assert set(terminal["access"]) == {"accesses", "unique_bytes",
                                           "unique_pages", "page_size",
                                           "reread_ratio", "pattern"}

    def test_statements_aggregate_profiles_per_fingerprint(self):
        from repro.obs.statements import StatementStats
        stats = StatementStats()
        session = array_session(statements=stats)
        session.accesses("x[..256] !=? 0")
        session.accesses("x[..256] !=? 0")
        (row,) = stats.snapshot()
        assert row["profiles"] == 2
        assert row["pattern"] == "sequential"
        assert row["page_locality"] > 1
        assert row["reads_per_value"] > 0
