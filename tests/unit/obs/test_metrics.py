"""Metrics registry: primitives, aggregation, session integration."""

import io
import json

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.metrics import (DEFAULT_MS_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry, registry)
from repro.target import builder


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_histogram_counts_and_overflow(self):
        h = Histogram([1.0, 10.0])
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        assert h.counts == [2, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.minimum == 0.5 and h.maximum == 100.0
        assert h.mean == pytest.approx(106.2 / 4)

    def test_histogram_quantiles_interpolate(self):
        h = Histogram([10.0, 20.0])
        for _ in range(10):
            h.observe(5.0)            # all in the first bucket
        assert 0.0 < h.quantile(0.5) <= 10.0
        assert h.quantile(1.0) == 10.0
        assert Histogram().quantile(0.5) == 0.0   # empty

    def test_histogram_as_dict_elides_empty_buckets(self):
        h = Histogram(DEFAULT_MS_BUCKETS)
        h.observe(0.3)
        record = h.as_dict()
        assert record["count"] == 1
        assert record["buckets"] == [[0.5, 1]]
        assert "p50" in record and "p95" in record


class TestRegistry:
    def test_create_on_first_use(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_record_query_folds_governor_stats(self):
        m = MetricsRegistry()
        stats = {"steps": 100, "expand": 3, "lines": 10, "calls": 1,
                 "allocs": 0, "symnodes": 42, "wall_ms": 1.5}
        m.record_query(stats, traffic={"reads": 7, "writes": 2},
                       phases={"parse": 0.1, "eval": 1.2})
        m.record_query(stats)
        assert m.counter("queries_total").value == 2
        assert m.counter("governor_steps_total").value == 200
        assert m.counter("target_reads_total").value == 7
        assert m.histogram("query_wall_ms").count == 2
        assert m.histogram("phase_parse_ms").count == 1

    def test_cache_rate(self):
        m = MetricsRegistry()
        assert m.cache_rate("string_cache") == 0.0
        m.counter("string_cache_hits").inc(3)
        m.counter("string_cache_misses").inc(1)
        assert m.cache_rate("string_cache") == pytest.approx(0.75)

    def test_snapshot_round_trips_through_json(self):
        m = MetricsRegistry()
        m.counter("a").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(3.0)
        snap = json.loads(m.to_json())
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_describe_lists_everything(self):
        m = MetricsRegistry()
        m.counter("queries_total").inc()
        m.histogram("query_wall_ms").observe(0.5)
        rows = m.describe()
        assert any("queries_total" in row for row in rows)
        assert any("query_wall_ms" in row for row in rows)

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_process_registry_is_shared(self):
        assert registry() is registry()


def isolated_session():
    program = TargetProgram()
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    return DuelSession(SimulatorBackend(program),
                       metrics=MetricsRegistry())


class TestSessionIntegration:
    def test_queries_accumulate(self):
        session = isolated_session()
        session.duel("x[..10] >? 5", out=io.StringIO())
        session.duel("x[3]", out=io.StringIO())
        m = session.metrics
        assert m.counter("queries_total").value == 2
        assert m.counter("governor_steps_total").value > 0
        assert m.counter("target_reads_total").value > 0
        assert m.histogram("query_wall_ms").count == 2
        for phase in ("parse", "eval", "format"):
            assert m.histogram(f"phase_{phase}_ms").count == 2

    def test_string_cache_counters_flow_through(self):
        session = isolated_session()
        session.duel('"abc"', out=io.StringIO())
        session.duel('"abc"', out=io.StringIO())
        m = session.metrics
        assert m.counter("string_cache_misses").value >= 1
        assert m.counter("string_cache_hits").value >= 1
        assert 0.0 < m.cache_rate("string_cache") < 1.0

    def test_sessions_default_to_process_registry(self, program):
        session = DuelSession(SimulatorBackend(program))
        assert session.metrics is registry()
