"""Metrics registry: primitives, aggregation, session integration."""

import io
import json

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.metrics import (DEFAULT_MS_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry, registry)
from repro.target import builder


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_histogram_counts_and_overflow(self):
        h = Histogram([1.0, 10.0])
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        assert h.counts == [2, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.minimum == 0.5 and h.maximum == 100.0
        assert h.mean == pytest.approx(106.2 / 4)

    def test_histogram_quantiles_interpolate(self):
        h = Histogram([10.0, 20.0])
        for _ in range(10):
            h.observe(5.0)            # all in the first bucket
        assert 0.0 < h.quantile(0.5) <= 10.0
        assert h.quantile(1.0) == 10.0
        assert Histogram().quantile(0.5) == 0.0   # empty

    def test_histogram_as_dict_elides_empty_buckets(self):
        h = Histogram(DEFAULT_MS_BUCKETS)
        h.observe(0.3)
        record = h.as_dict()
        assert record["count"] == 1
        assert record["buckets"] == [[0.5, 1]]
        assert "p50" in record and "p95" in record


class TestHistogramEdges:
    """Boundary behaviour the exposition layer depends on."""

    def test_quantile_of_empty_histogram_is_zero(self):
        h = Histogram()
        for q in (0.01, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 0.0
        assert h.mean == 0.0
        assert h.minimum is None and h.maximum is None

    def test_observation_exactly_on_bound_is_inclusive(self):
        """Bounds are *inclusive* upper bounds (Prometheus ``le``
        semantics): a value equal to a bound lands in that bucket,
        never the next one."""
        h = Histogram([1.0, 10.0, 100.0])
        for value in (1.0, 10.0, 100.0):
            h.observe(value)
        assert h.counts == [1, 1, 1]
        assert h.overflow == 0
        # Strictly above the last bound overflows.
        h.observe(100.0000001)
        assert h.overflow == 1

    def test_snapshot_json_round_trip_preserves_histogram(self):
        m = MetricsRegistry()
        h = m.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 3.0, 99.0):
            h.observe(value)
        snap = json.loads(json.dumps(m.snapshot()))
        record = snap["histograms"]["h"]
        assert record["count"] == 4
        assert record["sum"] == pytest.approx(103.5)
        assert record["min"] == 0.5 and record["max"] == 99.0
        assert record["buckets"] == [[1.0, 2], [10.0, 1]]
        assert record["overflow"] == 1


class TestRegistry:
    def test_create_on_first_use(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_record_query_folds_governor_stats(self):
        m = MetricsRegistry()
        stats = {"steps": 100, "expand": 3, "lines": 10, "calls": 1,
                 "allocs": 0, "symnodes": 42, "wall_ms": 1.5}
        m.record_query(stats, traffic={"reads": 7, "writes": 2},
                       phases={"parse": 0.1, "eval": 1.2})
        m.record_query(stats)
        assert m.counter("queries_total").value == 2
        assert m.counter("governor_steps_total").value == 200
        assert m.counter("target_reads_total").value == 7
        assert m.histogram("query_wall_ms").count == 2
        assert m.histogram("phase_parse_ms").count == 1

    def test_cache_rate(self):
        m = MetricsRegistry()
        assert m.cache_rate("string_cache") == 0.0
        m.counter("string_cache_hits").inc(3)
        m.counter("string_cache_misses").inc(1)
        assert m.cache_rate("string_cache") == pytest.approx(0.75)

    def test_snapshot_round_trips_through_json(self):
        m = MetricsRegistry()
        m.counter("a").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(3.0)
        snap = json.loads(m.to_json())
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_describe_lists_everything(self):
        m = MetricsRegistry()
        m.counter("queries_total").inc()
        m.histogram("query_wall_ms").observe(0.5)
        rows = m.describe()
        assert any("queries_total" in row for row in rows)
        assert any("query_wall_ms" in row for row in rows)

    def test_describe_is_globally_name_sorted(self):
        """``metrics`` output must be stable regardless of metric kind
        or creation order, so transcripts diff cleanly."""
        m = MetricsRegistry()
        m.histogram("zz_wall_ms").observe(1.0)     # created first ...
        m.counter("aa_total").inc()
        m.gauge("mm_limit").set(5)
        names = [row.split()[0] for row in m.describe()]
        assert names == ["aa_total", "mm_limit", "zz_wall_ms"]
        # And the ordering is insensitive to insertion order.
        other = MetricsRegistry()
        other.gauge("mm_limit").set(5)
        other.histogram("zz_wall_ms").observe(1.0)
        other.counter("aa_total").inc()
        assert [row.split()[0] for row in other.describe()] == names

    def test_iteration_views_are_sorted_copies(self):
        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a").inc()
        view = m.counters()
        assert list(view) == ["a", "b"]
        view["c"] = Counter()                       # mutating the copy ...
        assert list(m.counters()) == ["a", "b"]     # ... changes nothing

    def test_reset(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_process_registry_is_shared(self):
        assert registry() is registry()


def isolated_session():
    program = TargetProgram()
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    return DuelSession(SimulatorBackend(program),
                       metrics=MetricsRegistry())


class TestSessionIntegration:
    def test_queries_accumulate(self):
        session = isolated_session()
        session.duel("x[..10] >? 5", out=io.StringIO())
        session.duel("x[3]", out=io.StringIO())
        m = session.metrics
        assert m.counter("queries_total").value == 2
        assert m.counter("governor_steps_total").value > 0
        assert m.counter("target_reads_total").value > 0
        assert m.histogram("query_wall_ms").count == 2
        for phase in ("parse", "eval", "format"):
            assert m.histogram(f"phase_{phase}_ms").count == 2

    def test_string_cache_counters_flow_through(self):
        session = isolated_session()
        session.duel('"abc"', out=io.StringIO())
        session.duel('"abc"', out=io.StringIO())
        m = session.metrics
        assert m.counter("string_cache_misses").value >= 1
        assert m.counter("string_cache_hits").value >= 1
        assert 0.0 < m.cache_rate("string_cache") < 1.0

    def test_sessions_default_to_process_registry(self, program):
        session = DuelSession(SimulatorBackend(program))
        assert session.metrics is registry()
