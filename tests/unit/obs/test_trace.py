"""Tracing layer: spans, ring buffer, JSONL export, engine hooks."""

import io
import json

import pytest

from repro import DuelSession, SimulatorBackend
from repro.core.statemachine import StateMachineEvaluator
from repro.obs.trace import (JsonlSink, NodeSpan, QueryTracer,
                             RingBufferSink, TraceSink, node_label)


def trace_generator(session, text, sink=None):
    """Drive ``text`` on the generator engine under a fresh tracer."""
    node = session.compile(text)
    session.evaluator.reset()
    tracer = QueryTracer(sink)
    tracer.begin(node, text)
    session.evaluator.set_tracer(tracer)
    try:
        values = list(session.evaluator.eval(node))
    finally:
        tracer.finish()
        session.evaluator.set_tracer(None)
    return node, tracer, values


def trace_machine(session, text, sink=None):
    """Drive ``text`` on the state-machine engine under a tracer."""
    node = session.compile(text)
    session.evaluator.reset()
    tracer = QueryTracer(sink)
    tracer.begin(node, text)
    session.evaluator.set_tracer(tracer)
    try:
        machine = StateMachineEvaluator(session.evaluator)
        values = list(machine.drive(node))
    finally:
        tracer.finish()
        session.evaluator.set_tracer(None)
    return node, tracer, values


class TestNodeSpans:
    def test_preorder_indices(self, session):
        node = session.compile("x[..10] >? 5")
        tracer = QueryTracer()
        tracer.begin(node, "x[..10] >? 5")
        assert [s.index for s in tracer.spans] == \
            list(range(len(tracer.spans)))
        assert tracer.spans[0].depth == 0
        assert all(s.depth > 0 for s in tracer.spans[1:])

    def test_labels_carry_symbolic_form(self, session):
        node = session.compile("x[3] + 5")
        tracer = QueryTracer()
        tracer.begin(node, "")
        labels = [s.label for s in tracer.spans]
        assert any("x" in label for label in labels)
        assert any("5" in label for label in labels)
        assert node_label(node) == tracer.spans[0].label

    def test_root_counts_pulls_and_yields(self, session):
        node, tracer, values = trace_generator(session, "x[..10] >? 5")
        root = tracer.span_for(node)
        assert values  # 7, 12, 120
        assert root.yields == len(values)
        # One pull per value plus the final exhausted pull.
        assert root.pulls == len(values) + 1
        assert root.time_ns > 0
        assert tracer.total_ns() == root.time_ns

    def test_reads_attributed_to_active_span(self, session):
        node, tracer, values = trace_generator(session, "x[..10] >? 5")
        assert sum(s.reads for s in tracer.spans) > 0

    def test_as_dict_shape(self):
        span = NodeSpan(3, "index", "index", 1)
        span.pulls, span.yields, span.time_ns = 4, 2, 1000
        record = span.as_dict()
        assert record == {"i": 3, "op": "index", "label": "index",
                          "depth": 1, "pulls": 4, "yields": 2,
                          "ns": 1000, "reads": 0, "writes": 0,
                          "calls": 0}


class TestRingBufferSink:
    def test_records_pull_yield_stream(self, session):
        sink = RingBufferSink()
        node, tracer, values = trace_generator(session, "(1..3)", sink)
        events = tracer.events()
        assert events[0] == ("pull", 0)
        assert events.count(("yield", 0)) == 3
        assert sink.queries == 1
        assert sink.dropped == 0

    def test_ring_drops_oldest(self):
        sink = RingBufferSink(capacity=4)
        for index in range(10):
            sink.emit("pull", index)
        assert sink.dropped == 6
        assert list(sink.events) == [("pull", i) for i in range(6, 10)]
        sink.clear()
        assert not sink.events and sink.dropped == 0

    def test_exactly_at_capacity_drops_nothing(self):
        sink = RingBufferSink(capacity=4)
        for index in range(4):
            sink.emit("pull", index)
        assert sink.dropped == 0
        assert list(sink.events) == [("pull", i) for i in range(4)]

    def test_one_past_capacity_evicts_exactly_one(self):
        sink = RingBufferSink(capacity=4)
        for index in range(5):
            sink.emit("pull", index)
        assert sink.dropped == 1
        assert list(sink.events) == [("pull", i) for i in range(1, 5)]

    def test_base_sink_drops_everything(self, session):
        node, tracer, values = trace_generator(session, "(1..3)",
                                               TraceSink())
        assert tracer.events() == []       # not a ring buffer
        assert tracer.span_for(node).yields == 3


class TestJsonlSink:
    def test_schema(self, session):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        trace_generator(session, "(1..3)+(5,9)", sink)
        records = [json.loads(line)
                   for line in buffer.getvalue().splitlines()]
        header = records[0]
        assert header["ev"] == "query"
        assert header["q"] == 1
        assert header["text"] == "(1..3)+(5,9)"
        assert [n["i"] for n in header["nodes"]] == \
            list(range(len(header["nodes"])))
        kinds = {r["ev"] for r in records}
        assert kinds == {"query", "pull", "yield", "span"}
        spans = [r for r in records if r["ev"] == "span"]
        assert len(spans) == len(header["nodes"])
        assert spans[0]["yields"] == 6     # the paper's six values
        for event in records[1:]:
            assert event["q"] == 1

    def test_query_numbers_increment(self, session):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        trace_generator(session, "(1..2)", sink)
        trace_generator(session, "(3..4)", sink)
        headers = [json.loads(line)
                   for line in buffer.getvalue().splitlines()
                   if '"query"' in line]
        assert [h["q"] for h in headers] == [1, 2]

    def test_close_only_closes_owned_streams(self, tmp_path):
        buffer = io.StringIO()
        JsonlSink(buffer).close()
        assert not buffer.closed
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert path.exists()

    def test_flush_pushes_records_to_disk(self, tmp_path, session):
        """``flush`` makes every record visible without closing — the
        hook interrupt handling relies on (base sinks no-op it)."""
        TraceSink().flush()                # harmless on the base class
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        trace_generator(session, "(1..3)", sink)
        sink.flush()
        lines = path.read_text().splitlines()
        assert any('"span"' in line for line in lines)
        sink.close()


class TestEngineHooks:
    """The SM bracket hooks must mirror the generator wrapper."""

    def test_same_span_totals(self, session):
        _, gen, gen_values = trace_generator(session, "x[..10] >? 5")
        _, sm, sm_values = trace_machine(session, "x[..10] >? 5")
        assert [v.sym.render(6) for v in gen_values] == \
            [v.sym.render(6) for v in sm_values]
        assert [(s.pulls, s.yields) for s in gen.spans] == \
            [(s.pulls, s.yields) for s in sm.spans]

    def test_same_event_stream(self, session):
        _, gen, _ = trace_generator(session, "head-->next->value",
                                    RingBufferSink())
        _, sm, _ = trace_machine(session, "head-->next->value",
                                 RingBufferSink())
        assert gen.events() == sm.events()

    def test_error_unwinds_stack(self, session):
        node = session.compile("*(int*)0")
        session.evaluator.reset()
        tracer = QueryTracer()
        tracer.begin(node, "")
        session.evaluator.set_tracer(tracer)
        try:
            with pytest.raises(Exception):
                list(session.evaluator.eval(node))
        finally:
            session.evaluator.set_tracer(None)
        assert tracer._stack == []


class TestSessionTracing:
    def test_trace_on_keeps_last_trace(self, session):
        session.tracing = True
        out = io.StringIO()
        session.duel("x[..10] >? 5", out=out)
        assert session.last_trace is not None
        assert session.last_trace.spans[0].yields == 3
        events = session.last_trace.events()
        assert events and events[0] == ("pull", 0)

    def test_trace_off_records_nothing(self, session):
        out = io.StringIO()
        session.duel("x[..10] >? 5", out=out)
        assert session.last_trace is None
        assert session.evaluator.tracer is None

    def test_tracer_detached_after_query(self, session):
        session.tracing = True
        session.duel("x[3]", out=io.StringIO())
        assert session.evaluator.tracer is None
        assert session.evaluator.backend.tracer is None


class TestJsonlSinkFsync:
    def test_fsync_called_on_end_query(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr("os.fsync", lambda fd: synced.append(fd))
        sink = JsonlSink(str(tmp_path / "trace.jsonl"), fsync=True)
        sink.begin_query("x[0]", [])
        sink.end_query([])
        sink.close()
        assert len(synced) >= 2            # end_query + close

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr("os.fsync", lambda fd: synced.append(fd))
        sink = JsonlSink(str(tmp_path / "trace.jsonl"))
        sink.begin_query("x[0]", [])
        sink.end_query([])
        sink.close()
        assert synced == []

    def test_fsync_tolerates_in_memory_streams(self):
        sink = JsonlSink(io.StringIO(), fsync=True)
        sink.begin_query("x[0]", [])
        sink.end_query([])
        sink.close()
