"""Prometheus exposition: text-format validity and the scrape server."""

import io
import re
import urllib.error
import urllib.request

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.exposition import (CONTENT_TYPE, MetricsServer, _number,
                                  render_prometheus, sanitize)
from repro.obs.metrics import MetricsRegistry
from repro.target import builder

# One sample or # TYPE comment per line — the subset of the v0.0.4
# grammar this renderer emits.
SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.e+-]*$')
TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("queries_total").inc(3)
    registry.gauge("governor_steps_limit").set(10_000_000)
    hist = registry.histogram("query_wall_ms",
                              buckets=(0.5, 1.0, 5.0, 25.0))
    for value in (0.2, 0.5, 0.7, 3.0, 100.0):
        hist.observe(value)
    return registry


class TestRenderFormat:
    def test_every_line_is_valid(self):
        text = render_prometheus(populated_registry())
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE duel_queries_total counter" in text
        assert "\nduel_queries_total 3\n" in text
        assert "\nduel_governor_steps_limit 10000000\n" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(populated_registry())
        # observations 0.2, 0.5 → le=0.5 (inclusive); 0.7 → le=1;
        # 3.0 → le=5; 100.0 only in +Inf.
        assert 'duel_query_wall_ms_bucket{le="0.5"} 2' in text
        assert 'duel_query_wall_ms_bucket{le="1"} 3' in text
        assert 'duel_query_wall_ms_bucket{le="5"} 4' in text
        assert 'duel_query_wall_ms_bucket{le="25"} 4' in text
        assert 'duel_query_wall_ms_bucket{le="+Inf"} 5' in text
        assert "duel_query_wall_ms_count 5" in text
        assert "duel_query_wall_ms_sum 104.4" in text

    def test_inf_bucket_equals_count(self):
        text = render_prometheus(populated_registry())
        inf = re.search(r'_bucket\{le="\+Inf"\} (\d+)', text).group(1)
        count = re.search(r"_count (\d+)", text).group(1)
        assert inf == count == "5"

    def test_output_is_deterministic(self):
        a = render_prometheus(populated_registry())
        b = render_prometheus(populated_registry())
        assert a == b

    def test_custom_prefix(self):
        text = render_prometheus(populated_registry(), prefix="repro_")
        assert text.startswith("# TYPE repro_")
        assert "duel_" not in text

    def test_sanitize(self):
        assert sanitize("cache.hit-rate") == "cache_hit_rate"
        assert sanitize("1weird") == "_1weird"
        assert sanitize("already_fine:ok") == "already_fine:ok"

    def test_number_rendering(self):
        assert _number(7) == "7"
        assert _number(7.0) == "7"
        assert _number(0.1) == "0.1"
        assert _number(True) == "1"

    def test_session_metrics_render(self):
        """The real registry, after real queries, renders cleanly."""
        program = TargetProgram()
        builder.int_array(program, "x", list(range(10)))
        session = DuelSession(SimulatorBackend(program),
                              metrics=MetricsRegistry())
        for text in ("x[..5]", "x[0] >? -1"):
            session.duel(text, out=io.StringIO())
        rendered = render_prometheus(session.metrics)
        assert "duel_queries_total 2" in rendered
        for line in rendered.rstrip("\n").splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_scrape_roundtrip(self):
        registry = populated_registry()
        server = MetricsServer(registry, port=0)
        try:
            port = server.start()
            assert port > 0
            status, headers, body = fetch(server.url)
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            assert body.decode() == render_prometheus(registry)
        finally:
            server.stop()

    def test_scrapes_see_live_totals(self):
        registry = populated_registry()
        server = MetricsServer(registry, port=0)
        try:
            server.start()
            _, _, before = fetch(server.url)
            registry.counter("queries_total").inc()
            _, _, after = fetch(server.url)
            assert b"duel_queries_total 3" in before
            assert b"duel_queries_total 4" in after
        finally:
            server.stop()

    def test_healthz_and_unknown_paths(self):
        server = MetricsServer(populated_registry(), port=0)
        try:
            port = server.start()
            status, _, body = fetch(f"http://127.0.0.1:{port}/healthz")
            assert (status, body) == (200, b"ok\n")
            try:
                fetch(f"http://127.0.0.1:{port}/nope")
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected 404")
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_returns_same_port(self):
        server = MetricsServer(populated_registry(), port=0)
        try:
            port = server.start()
            assert server.start() == port    # second start is a no-op
        finally:
            server.stop()
            server.stop()                    # and stop tolerates repeats
