"""Prometheus exposition: text-format validity and the scrape server."""

import io
import re
import urllib.error
import urllib.request

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.obs.exposition import (CONTENT_TYPE, MetricsServer, _number,
                                  escape_label_value,
                                  render_prometheus, sanitize)
from repro.obs.metrics import MetricsRegistry
from repro.obs.statements import StatementStats
from repro.target import builder

# One sample or # TYPE comment per line — the subset of the v0.0.4
# grammar this renderer emits.
SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.e+-]*$')
TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("queries_total").inc(3)
    registry.gauge("governor_steps_limit").set(10_000_000)
    hist = registry.histogram("query_wall_ms",
                              buckets=(0.5, 1.0, 5.0, 25.0))
    for value in (0.2, 0.5, 0.7, 3.0, 100.0):
        hist.observe(value)
    return registry


class TestRenderFormat:
    def test_every_line_is_valid(self):
        text = render_prometheus(populated_registry())
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE duel_queries_total counter" in text
        assert "\nduel_queries_total 3\n" in text
        assert "\nduel_governor_steps_limit 10000000\n" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(populated_registry())
        # observations 0.2, 0.5 → le=0.5 (inclusive); 0.7 → le=1;
        # 3.0 → le=5; 100.0 only in +Inf.
        assert 'duel_query_wall_ms_bucket{le="0.5"} 2' in text
        assert 'duel_query_wall_ms_bucket{le="1"} 3' in text
        assert 'duel_query_wall_ms_bucket{le="5"} 4' in text
        assert 'duel_query_wall_ms_bucket{le="25"} 4' in text
        assert 'duel_query_wall_ms_bucket{le="+Inf"} 5' in text
        assert "duel_query_wall_ms_count 5" in text
        assert "duel_query_wall_ms_sum 104.4" in text

    def test_inf_bucket_equals_count(self):
        text = render_prometheus(populated_registry())
        inf = re.search(r'_bucket\{le="\+Inf"\} (\d+)', text).group(1)
        count = re.search(r"_count (\d+)", text).group(1)
        assert inf == count == "5"

    def test_output_is_deterministic(self):
        a = render_prometheus(populated_registry())
        b = render_prometheus(populated_registry())
        assert a == b

    def test_custom_prefix(self):
        text = render_prometheus(populated_registry(), prefix="repro_")
        assert text.startswith("# TYPE repro_")
        assert "duel_" not in text

    def test_sanitize(self):
        assert sanitize("cache.hit-rate") == "cache_hit_rate"
        assert sanitize("1weird") == "_1weird"
        assert sanitize("already_fine:ok") == "already_fine:ok"

    def test_number_rendering(self):
        assert _number(7) == "7"
        assert _number(7.0) == "7"
        assert _number(0.1) == "0.1"
        assert _number(True) == "1"

    def test_session_metrics_render(self):
        """The real registry, after real queries, renders cleanly."""
        program = TargetProgram()
        builder.int_array(program, "x", list(range(10)))
        session = DuelSession(SimulatorBackend(program),
                              metrics=MetricsRegistry())
        for text in ("x[..5]", "x[0] >? -1"):
            session.duel(text, out=io.StringIO())
        rendered = render_prometheus(session.metrics)
        assert "duel_queries_total 2" in rendered
        for line in rendered.rstrip("\n").splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_scrape_roundtrip(self):
        registry = populated_registry()
        server = MetricsServer(registry, port=0)
        try:
            port = server.start()
            assert port > 0
            status, headers, body = fetch(server.url)
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            assert body.decode() == render_prometheus(registry)
        finally:
            server.stop()

    def test_scrapes_see_live_totals(self):
        registry = populated_registry()
        server = MetricsServer(registry, port=0)
        try:
            server.start()
            _, _, before = fetch(server.url)
            registry.counter("queries_total").inc()
            _, _, after = fetch(server.url)
            assert b"duel_queries_total 3" in before
            assert b"duel_queries_total 4" in after
        finally:
            server.stop()

    def test_healthz_and_unknown_paths(self):
        server = MetricsServer(populated_registry(), port=0)
        try:
            port = server.start()
            status, _, body = fetch(f"http://127.0.0.1:{port}/healthz")
            assert (status, body) == (200, b"ok\n")
            try:
                fetch(f"http://127.0.0.1:{port}/nope")
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected 404")
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_returns_same_port(self):
        server = MetricsServer(populated_registry(), port=0)
        try:
            port = server.start()
            assert server.start() == port    # second start is a no-op
        finally:
            server.stop()
            server.stop()                    # and stop tolerates repeats


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_escapes_before_quote(self):
        # A raw \" must become \\\" — escaping order matters.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_plain_text_passes_through(self):
        shape = "(index (name data) (to prefix (const ?)))"
        assert escape_label_value(shape) == shape

    def test_fingerprint_text_renders_scrapeable(self):
        """A query shape full of quotes/backslashes survives exposition."""
        stats = StatementStats()
        stats.record("abcd", 'say("a\\b\nc")', outcome="done",
                     wall_ms=1.0)
        body = render_prometheus(MetricsRegistry(),
                                 collectors=(stats.prometheus_lines,))
        line = next(ln for ln in body.splitlines()
                    if ln.startswith("duel_stmt_calls_total{"))
        # The label block must close and the sample value must parse:
        # an unescaped quote or newline would break both.
        assert line.endswith("} 1")
        assert "\n" not in line


class TestInfBucketEdgeCases:
    def test_zero_observations_renders_zero_everywhere(self):
        registry = MetricsRegistry()
        registry.histogram("empty_ms", buckets=(1.0, 5.0))
        text = render_prometheus(registry)
        assert 'duel_empty_ms_bucket{le="1"} 0' in text
        assert 'duel_empty_ms_bucket{le="5"} 0' in text
        assert 'duel_empty_ms_bucket{le="+Inf"} 0' in text
        assert "duel_empty_ms_sum 0" in text
        assert "duel_empty_ms_count 0" in text

    def test_zero_observation_lines_are_grammatical(self):
        registry = MetricsRegistry()
        registry.histogram("empty_ms", buckets=(1.0, 5.0))
        for line in render_prometheus(registry).rstrip().splitlines():
            assert TYPE_LINE.match(line) or SAMPLE.match(line), line

    def test_only_overflow_observations(self):
        registry = MetricsRegistry()
        registry.histogram("spill_ms", buckets=(1.0,)).observe(99.0)
        text = render_prometheus(registry)
        assert 'duel_spill_ms_bucket{le="1"} 0' in text
        assert 'duel_spill_ms_bucket{le="+Inf"} 1' in text


class TestCollectors:
    def test_collector_lines_append_after_registry(self):
        text = render_prometheus(populated_registry(),
                                 collectors=(lambda: ["extra_total 1"],))
        assert text.endswith("extra_total 1\n")

    def test_failing_collector_never_breaks_the_scrape(self):
        def boom():
            raise RuntimeError("collector bug")
        text = render_prometheus(populated_registry(),
                                 collectors=(boom,
                                             lambda: ["ok_total 2"]))
        assert "ok_total 2" in text
        assert "duel_queries_total 3" in text

    def test_server_scrape_includes_collector_families(self):
        stats = StatementStats()
        stats.record("abcd", "x[..?]", outcome="done", wall_ms=2.0)
        server = MetricsServer(populated_registry(), port=0,
                               collectors=(stats.prometheus_lines,))
        try:
            server.start()
            _, _, body = fetch(server.url)
        finally:
            server.stop()
        assert b'duel_stmt_calls_total{fingerprint="abcd"' in body

    def test_concurrent_scrape_during_aggregation(self):
        """Scrapes racing histogram observes stay internally valid."""
        import threading
        registry = populated_registry()
        stats = StatementStats()
        stop = threading.Event()
        errors = []

        def pound():
            hist = registry.histogram("query_wall_ms")
            index = 0
            while not stop.is_set():
                hist.observe(0.3)
                stats.record(f"fp{index % 4}", "t", outcome="done",
                             wall_ms=1.0)
                index += 1

        def scrape():
            try:
                while not stop.is_set():
                    text = render_prometheus(
                        registry, collectors=(stats.prometheus_lines,))
                    for line in text.rstrip().splitlines():
                        if line.startswith("#") or "{" in line:
                            continue
                        assert SAMPLE.match(line), line
                    # +Inf bucket must equal _count within one scrape:
                    # cumulative rendering under the instrument lock.
                    inf = re.search(
                        r'duel_query_wall_ms_bucket\{le="\+Inf"\} (\d+)',
                        text).group(1)
                    count = re.search(r"duel_query_wall_ms_count (\d+)",
                                      text).group(1)
                    assert inf == count
            except Exception as error:  # pragma: no cover - fail path
                errors.append(error)

        writer = threading.Thread(target=pound)
        reader = threading.Thread(target=scrape)
        writer.start()
        reader.start()
        import time
        time.sleep(0.3)
        stop.set()
        writer.join(timeout=10)
        reader.join(timeout=10)
        assert not errors
