"""Hammer tests for the observability stack's thread-safety.

The ``repro.serve`` front end funnels every client session into one
shared MetricsRegistry, QueryLog, RingBufferSink and FlightRecorder.
These tests drive each from many threads at once and assert the
invariants the single-threaded code silently relied on: no lost
increments, no torn snapshots, no duplicated or out-of-order qids,
no interleaved half-records.

Hammer discipline: each test uses a barrier start (all threads
released together, maximizing interleaving) and asserts exact totals
— a race that drops even one update fails deterministically given
enough iterations, and these counts (4 threads x 2000+ ops) lose
updates reliably on unpatched code.
"""

import io
import json
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.qlog import QueryLog
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import RingBufferSink

THREADS = 4
ROUNDS = 2000


def hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N threads with a barrier start."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestMetricsHammer:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def worker(index):
            counter = registry.counter("hits")
            for _ in range(ROUNDS):
                counter.inc()

        hammer(worker)
        assert registry.counter("hits").value == THREADS * ROUNDS

    def test_get_or_create_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def worker(index):
            for _ in range(ROUNDS // 10):
                counter = registry.counter("shared")
                counter.inc()
                with lock:
                    seen.append(counter)

        hammer(worker)
        assert len({id(c) for c in seen}) == 1
        assert registry.counter("shared").value == THREADS * (ROUNDS // 10)

    def test_histogram_sum_and_count_stay_consistent(self):
        registry = MetricsRegistry()

        def worker(index):
            hist = registry.histogram("lat_ms")
            for i in range(ROUNDS):
                hist.observe(1.0)

        hammer(worker)
        hist = registry.histogram("lat_ms")
        counts, overflow, total, count, minimum, maximum = \
            hist.snapshot_state()
        assert count == THREADS * ROUNDS
        assert total == float(THREADS * ROUNDS)
        assert sum(counts) + overflow == count
        assert minimum == maximum == 1.0

    def test_snapshot_while_hammered_is_coherent(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(index):
            hist = registry.histogram("h")
            for i in range(ROUNDS):
                hist.observe(2.0)
                registry.counter(f"c{i % 8}").inc()
            stop.set()

        snapshots = []

        def reader(index):
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        hammer(lambda i: writer(i) if i else reader(i), threads=THREADS)
        for snap in snapshots:
            hist = snap["histograms"].get("h")
            if hist is None or hist["count"] == 0:
                continue
            # sum must track count exactly: every observation was 2.0.
            assert hist["sum"] == 2.0 * hist["count"]

    def test_record_query_from_many_threads(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ROUNDS // 10):
                registry.record_query({"steps": 3, "wall_ms": 1.0},
                                      traffic={"reads": 2},
                                      phases={"eval": 0.5})

        hammer(worker)
        total = THREADS * (ROUNDS // 10)
        assert registry.counter("queries_total").value == total
        assert registry.counter("governor_steps_total").value == 3 * total
        assert registry.counter("target_reads_total").value == 2 * total
        assert registry.histogram("query_wall_ms").count == total

    def test_reset_race_does_not_corrupt(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(200):
                if index == 0:
                    registry.reset()
                else:
                    registry.counter("x").inc()
                    registry.describe()

        hammer(worker)
        # Registry still functional afterwards.
        registry.counter("x").inc()
        assert registry.counter("x").value >= 1


class TestRingBufferSinkHammer:
    def test_no_lost_events_below_capacity(self):
        sink = RingBufferSink(capacity=THREADS * ROUNDS + 1)

        def worker(index):
            for i in range(ROUNDS):
                sink.emit("pull", index)

        hammer(worker)
        assert len(sink.snapshot()) == THREADS * ROUNDS
        assert sink.dropped == 0

    def test_dropped_accounts_for_overflow_exactly(self):
        sink = RingBufferSink(capacity=64)

        def worker(index):
            for i in range(ROUNDS):
                sink.emit("yield", i)

        hammer(worker)
        total = THREADS * ROUNDS
        assert len(sink.snapshot()) == 64
        # Every emit beyond capacity displaced exactly one event.
        assert sink.dropped == total - 64

    def test_snapshot_during_emits_is_a_stable_copy(self):
        sink = RingBufferSink(capacity=128)
        stop = threading.Event()

        def worker(index):
            if index == 0:
                for i in range(ROUNDS):
                    sink.emit("pull", i)
                stop.set()
            else:
                while not stop.is_set():
                    snap = sink.snapshot()
                    assert len(snap) <= 128
                    # The copy must be iterable while emits continue
                    # (a live deque raises RuntimeError here).
                    for _ in snap:
                        pass

        hammer(worker)

    def test_clear_race_leaves_consistent_state(self):
        sink = RingBufferSink(capacity=32)

        def worker(index):
            for i in range(500):
                if index == 0 and i % 50 == 0:
                    sink.clear()
                else:
                    sink.emit("pull", i)

        hammer(worker)
        assert len(sink.snapshot()) <= 32


class TestQueryLogInterleaving:
    """Satellite regression: qids atomic and globally monotone."""

    def test_qids_unique_and_monotone_across_threads(self):
        stream = io.StringIO()
        qlog = QueryLog(stream, clock=lambda: 0.0)
        per_thread = 250
        allocated = [[] for _ in range(THREADS)]

        def worker(index):
            for i in range(per_thread):
                qid = qlog.begin(f"t{index}q{i}")
                allocated[index].append(qid)
                qlog.end(qid, "drained", values=1)

        hammer(worker)
        everything = [qid for chunk in allocated for qid in chunk]
        # No qid handed out twice, none skipped.
        assert sorted(everything) == list(
            range(1, THREADS * per_thread + 1))
        # Each thread saw its own allocations strictly increasing.
        for chunk in allocated:
            assert chunk == sorted(chunk)

    def test_received_records_appear_in_qid_order(self):
        stream = io.StringIO()
        qlog = QueryLog(stream, clock=lambda: 0.0)

        def worker(index):
            for i in range(250):
                qid = qlog.begin("x")
                qlog.end(qid, "drained")

        hammer(worker)
        received = [json.loads(line)["qid"]
                    for line in stream.getvalue().splitlines()
                    if json.loads(line)["ev"] == "received"]
        # Allocation and write are one atomic step, so the file's
        # received records are exactly 1..N in order.
        assert received == list(range(1, len(received) + 1))

    def test_every_line_is_whole_json(self):
        stream = io.StringIO()
        qlog = QueryLog(stream, clock=lambda: 0.0)

        def worker(index):
            for i in range(250):
                qid = qlog.begin("a" * 100)
                qlog.end(qid, "truncated", values=i, kind="steps",
                         stats={"steps": i, "wall_ms": 0.1})

        hammer(worker)
        lines = stream.getvalue().splitlines()
        assert len(lines) == qlog.records
        for line in lines:
            record = json.loads(line)  # raises if a write tore
            assert record["ev"] in ("received", "truncated")

    def test_terminal_record_count_matches(self):
        stream = io.StringIO()
        qlog = QueryLog(stream, clock=lambda: 0.0)

        def worker(index):
            for i in range(200):
                qid = qlog.begin("q")
                qlog.end(qid, "drained", values=1)

        hammer(worker)
        records = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        drained = [r for r in records if r["ev"] == "drained"]
        received = [r for r in records if r["ev"] == "received"]
        assert len(drained) == len(received) == THREADS * 200
        # Exactly one terminal per qid.
        assert len({r["qid"] for r in drained}) == len(drained)


class TestFlightRecorderHammer:
    def test_recorded_count_is_exact(self):
        recorder = FlightRecorder(capacity=16)

        def worker(index):
            for i in range(ROUNDS // 2):
                recorder.record({"text": f"t{index}", "values": i})

        hammer(worker)
        assert recorder.recorded == THREADS * (ROUNDS // 2)
        assert len(recorder.last()) == 16

    def test_dump_during_records_is_self_consistent(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=str(tmp_path),
                                  clock=lambda: 0.0)
        stop = threading.Event()
        paths = []

        def worker(index):
            if index == 0:
                for i in range(400):
                    recorder.record({"i": i})
                stop.set()
            else:
                while not stop.is_set():
                    paths.append(recorder.dump("hammer"))

        hammer(worker, threads=2)
        for path in paths:
            with open(path) as handle:
                artifact = json.load(handle)
            assert len(artifact["queries"]) <= 8
            assert artifact["queries_recorded"] >= len(artifact["queries"])
