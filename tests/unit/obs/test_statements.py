"""Statement-statistics table: aggregation, bounds, exposition."""

import threading

import pytest

from repro.obs.statements import (ORDERINGS, PHASES, StatementStats,
                                  describe)


def record_n(stats, fingerprint, n, text=None, **kwargs):
    for _ in range(n):
        stats.record(fingerprint, text or fingerprint, outcome="done",
                     **kwargs)


class TestAggregation:
    def test_calls_accumulate_per_fingerprint(self):
        stats = StatementStats()
        record_n(stats, "aa", 3)
        record_n(stats, "bb", 1)
        rows = {r["fingerprint"]: r for r in stats.snapshot(by="calls")}
        assert rows["aa"]["calls"] == 3
        assert rows["bb"]["calls"] == 1
        assert stats.recorded == 4

    def test_values_reads_writes_accumulate(self):
        stats = StatementStats()
        stats.record("aa", "x[..?]", outcome="done", values=10,
                     stats={"reads": 7, "writes": 2})
        stats.record("aa", "x[..?]", outcome="done", values=5,
                     stats={"reads": 3})
        (row,) = stats.snapshot()
        assert row["values"] == 15
        assert row["reads"] == 10
        assert row["writes"] == 2

    def test_outcome_counts(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done")
        stats.record("aa", "t", outcome="truncated")
        stats.record("aa", "t", outcome="faulted")
        (row,) = stats.snapshot()
        assert row["truncations"] == 1
        assert row["faults"] == 1
        assert row["calls"] == 3

    def test_wall_latency_prefers_explicit_over_stats(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done",
                     stats={"wall_ms": 1.0}, wall_ms=50.0)
        (row,) = stats.snapshot()
        assert row["wall_ms"]["sum"] == pytest.approx(50.0)

    def test_phase_histograms(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done",
                     phases={"parse": 1.0, "eval": 2.0,
                             "bogus_phase": 99.0})
        (row,) = stats.snapshot()
        assert set(row["phases"]) == {"parse", "eval"}
        assert row["phases"]["eval"]["sum"] == pytest.approx(2.0)

    def test_record_phases_merges_without_call_bump(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done", phases={"parse": 1.0})
        stats.record_phases("aa", {"queue": 3.0, "lock": 0.5,
                                   "nonsense": 1.0})
        (row,) = stats.snapshot()
        assert row["calls"] == 1
        assert set(row["phases"]) == {"parse", "queue", "lock"}

    def test_record_phases_on_evicted_fingerprint_is_silent(self):
        stats = StatementStats(capacity=1)
        stats.record("aa", "a", outcome="done")
        stats.record("bb", "b", outcome="done")   # evicts aa
        stats.record_phases("aa", {"queue": 1.0})  # no raise, no entry
        rows = stats.snapshot()
        assert [r["fingerprint"] for r in rows] == ["bb"]


class TestBounds:
    def test_capacity_is_enforced(self):
        stats = StatementStats(capacity=4)
        for index in range(10):
            record_n(stats, f"fp{index}", 1)
        assert len(stats) == 4
        assert stats.evicted == 6
        assert stats.recorded == 10

    def test_eviction_prefers_least_called(self):
        stats = StatementStats(capacity=2)
        record_n(stats, "hot", 5)
        record_n(stats, "warm", 2)
        record_n(stats, "new", 1)                 # evicts warm? no: warm
        kept = {r["fingerprint"] for r in stats.snapshot()}
        assert "hot" in kept
        assert "warm" not in kept

    def test_eviction_ties_break_least_recent(self):
        stats = StatementStats(capacity=2)
        record_n(stats, "old", 1)
        record_n(stats, "newer", 1)
        record_n(stats, "newest", 1)
        kept = {r["fingerprint"] for r in stats.snapshot()}
        assert kept == {"newer", "newest"}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            StatementStats(capacity=0)

    def test_reset(self):
        stats = StatementStats(capacity=1)
        record_n(stats, "aa", 1)
        record_n(stats, "bb", 1)
        stats.reset()
        assert len(stats) == 0
        assert stats.evicted == 0
        assert stats.recorded == 0


class TestSnapshot:
    def test_orderings(self):
        stats = StatementStats()
        stats.record("many", "m", outcome="done", wall_ms=1.0)
        stats.record("many", "m", outcome="done", wall_ms=1.0)
        stats.record("many", "m", outcome="done", wall_ms=1.0)
        stats.record("slow", "s", outcome="done", wall_ms=100.0)
        by_calls = [r["fingerprint"] for r in stats.snapshot(by="calls")]
        by_total = [r["fingerprint"]
                    for r in stats.snapshot(by="total_ms")]
        by_max = [r["fingerprint"] for r in stats.snapshot(by="max_ms")]
        assert by_calls[0] == "many"
        assert by_total[0] == "slow"
        assert by_max[0] == "slow"

    def test_unknown_ordering_rejected(self):
        stats = StatementStats()
        with pytest.raises(ValueError):
            stats.snapshot(by="charm")

    def test_limit(self):
        stats = StatementStats()
        for index in range(6):
            record_n(stats, f"fp{index}", 1)
        assert len(stats.snapshot(limit=3)) == 3

    def test_state(self):
        stats = StatementStats(capacity=2)
        record_n(stats, "aa", 2)
        record_n(stats, "bb", 1)
        record_n(stats, "cc", 1)
        assert stats.state() == {"entries": 2, "capacity": 2,
                                 "evicted": 1, "recorded": 4}

    def test_orderings_constant_covers_snapshot_keys(self):
        stats = StatementStats()
        record_n(stats, "aa", 1)
        (row,) = stats.snapshot()
        for key in ORDERINGS:
            assert key in row


class TestPrometheus:
    def test_families_and_labels(self):
        stats = StatementStats()
        stats.record("abcd", 'x["quo\\te"]', outcome="done",
                     values=3, wall_ms=10.0)
        lines = stats.prometheus_lines()
        body = "\n".join(lines)
        assert '# TYPE duel_stmt_calls_total counter' in body
        assert 'fingerprint="abcd"' in body
        # The quote and backslash in the text label must be escaped.
        assert 'x[\\"quo\\\\te\\"]' in body
        assert "duel_stmt_table_entries 1" in body

    def test_cardinality_bound(self):
        stats = StatementStats()
        for index in range(40):
            stats.record(f"fp{index:03}", f"t{index}", outcome="done",
                         wall_ms=float(index))
        lines = stats.prometheus_lines(limit=5)
        calls = [ln for ln in lines
                 if ln.startswith("duel_stmt_calls_total{")]
        assert len(calls) == 5

    def test_concurrent_scrape_during_aggregation(self):
        """A scrape racing live recording renders consistent rows."""
        stats = StatementStats()
        stop = threading.Event()
        errors = []

        def pound():
            index = 0
            while not stop.is_set():
                stats.record(f"fp{index % 8}", "t", outcome="done",
                             wall_ms=1.0, phases={"eval": 1.0})
                index += 1

        def scrape():
            try:
                while not stop.is_set():
                    for line in stats.prometheus_lines():
                        assert "None" not in line
                    for row in stats.snapshot():
                        # calls and the latency count move together
                        # under the table lock; a torn row would show
                        # a count above calls.
                        assert row["wall_ms"]["count"] <= row["calls"]
            except Exception as error:  # pragma: no cover - fail path
                errors.append(error)

        writers = [threading.Thread(target=pound) for _ in range(3)]
        reader = threading.Thread(target=scrape)
        for thread in (*writers, reader):
            thread.start()
        import time
        time.sleep(0.3)
        stop.set()
        for thread in (*writers, reader):
            thread.join(timeout=10)
        assert not errors


class TestDescribe:
    def test_renders_header_state_and_rows(self):
        stats = StatementStats()
        stats.record("aa", "x[..?] >? ?", outcome="done", values=4,
                     wall_ms=2.0)
        lines = describe(stats.snapshot(), stats.state())
        assert lines[0].startswith("statements: 1 shapes")
        assert "calls" in lines[1]
        assert "x[..?] >? ?" in lines[2]

    def test_phases_vocabulary_is_closed(self):
        assert set(PHASES) == {"queue", "lock", "parse", "eval",
                               "format", "stream"}


def sample_profile(pattern="sequential", **overrides):
    profile = {"accesses": 128, "reads": 128, "writes": 0,
               "unique_bytes": 256, "unique_pages": 8,
               "page_size": 64, "reread_ratio": 0.5,
               "pattern": pattern}
    profile.update(overrides)
    return profile


class TestAccessAggregation:
    def test_record_access_aggregates_locality(self):
        stats = StatementStats()
        stats.record("aa", "x[..?]", outcome="done", values=2,
                     stats={"reads": 128})
        stats.record_access("aa", sample_profile(unique_pages=8))
        stats.record_access("aa", sample_profile(unique_pages=4,
                                                 reread_ratio=0.3))
        (row,) = stats.snapshot()
        assert row["profiles"] == 2
        assert row["pages_per_call"] == 6.0
        assert row["reread_ratio"] == 0.4
        assert row["page_locality"] > 0

    def test_dominant_pattern_by_vote(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done")
        for pattern in ("random", "sequential", "sequential"):
            stats.record_access("aa", sample_profile(pattern))
        (row,) = stats.snapshot()
        assert row["pattern"] == "sequential"

    def test_unprofiled_rows_have_no_pattern(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done")
        (row,) = stats.snapshot()
        assert row["profiles"] == 0
        assert "pattern" not in row

    def test_record_access_for_unknown_fingerprint_is_a_noop(self):
        stats = StatementStats()
        stats.record_access("zz", sample_profile())
        assert stats.snapshot() == []


class TestReadsOrderings:
    def test_orderings_include_target_traffic(self):
        assert "reads" in ORDERINGS
        assert "reads_per_value" in ORDERINGS

    def test_snapshot_orders_by_reads(self):
        stats = StatementStats()
        stats.record("aa", "light", outcome="done", values=1,
                     stats={"reads": 10})
        stats.record("bb", "heavy", outcome="done", values=1,
                     stats={"reads": 999})
        rows = stats.snapshot(by="reads")
        assert [r["fingerprint"] for r in rows] == ["bb", "aa"]

    def test_reads_per_value_ranks_wasteful_shapes_first(self):
        stats = StatementStats()
        stats.record("aa", "cheap", outcome="done", values=100,
                     stats={"reads": 100})          # 1 read/value
        stats.record("bb", "wasteful", outcome="done", values=2,
                     stats={"reads": 1234})         # 617 reads/value
        rows = stats.snapshot(by="reads_per_value")
        assert rows[0]["fingerprint"] == "bb"
        assert rows[0]["reads_per_value"] == 617.0

    def test_zero_value_shapes_rank_by_raw_reads(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done", values=0,
                     stats={"reads": 50})
        (row,) = stats.snapshot(by="reads_per_value")
        assert row["reads_per_value"] == 50.0


class TestTargetPrometheus:
    def test_reads_per_value_exported_for_all_shapes(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done", values=2,
                     stats={"reads": 10})
        lines = stats.prometheus_target_lines()
        assert any(line.startswith("duel_target_reads_per_value")
                   and " 5" in line for line in lines)
        assert "duel_target_profiles_total 0" in lines

    def test_locality_families_need_a_profiled_run(self):
        stats = StatementStats()
        stats.record("aa", "t", outcome="done")
        lines = "\n".join(stats.prometheus_target_lines())
        assert "duel_target_page_locality{" not in lines
        stats.record_access("aa", sample_profile())
        lines = "\n".join(stats.prometheus_target_lines())
        assert "duel_target_page_locality{" in lines
        assert 'pattern="sequential"} 1' in lines
        assert "duel_target_profiles_total 1" in lines

    def test_cardinality_is_bounded(self):
        stats = StatementStats()
        for i in range(40):
            stats.record(f"f{i:02d}", "t", outcome="done",
                         stats={"reads": i})
        lines = stats.prometheus_target_lines(limit=8)
        gauges = [line for line in lines
                  if line.startswith("duel_target_reads_per_value{")]
        assert len(gauges) == 8
