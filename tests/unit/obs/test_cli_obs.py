"""CLI observability: trace/explain/metrics commands, --trace-json."""

import io
import json

import pytest

from repro.cli import main

SOURCE = r"""
int values[4] = {5, -2, 9, 0};
int main(void) { return 0; }
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    status = main(args, stdin=io.StringIO(stdin_text), out=out)
    return status, out.getvalue()


class TestTraceCommandParsing:
    def test_strict_on_off(self, source):
        status, text = run_cli([source], stdin_text=(
            "trace on\ntrace off\nquit\n"))
        assert "trace on\n" in text
        assert "trace off\n" in text

    def test_bare_trace_prints_usage(self, source):
        status, text = run_cli([source], stdin_text="trace\nquit\n")
        assert "usage: trace on|off | trace <expression>" in text

    def test_near_miss_is_an_expression_not_a_toggle(self, source):
        """'trace onn' must not silently toggle tracing (the symbolic
        on|off hardening, applied here): it parses as an expression."""
        status, text = run_cli([source], stdin_text=(
            "trace onn\nquit\n"))
        assert "trace on\n" not in text
        assert "no symbol 'onn'" in text

    def test_trace_expression_profiles(self, source):
        status, text = run_cli([source], stdin_text=(
            "trace values[..4] >? 0\nquit\n"))
        assert "pulls=" in text and "yields=" in text
        assert "(generator engine)" in text


class TestExplainCommand:
    def test_explain_renders_profile(self, source):
        status, text = run_cli([source], stdin_text=(
            "explain values[..4] >? 0\nquit\n"))
        assert "ifgt" in text
        assert "pulls=" in text
        assert "100.0%" in text
        assert "-- 2 values in" in text

    def test_explain_without_argument(self, source):
        status, text = run_cli([source], stdin_text="explain\nquit\n")
        assert "usage: explain <expression>" in text


class TestMetricsCommand:
    def test_metrics_after_queries(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[0]\nmetrics\nquit\n"))
        assert "queries_total" in text
        assert "query_wall_ms" in text


class TestStatsFooterTraffic:
    def test_footer_carries_target_traffic(self, source):
        status, text = run_cli([source], stdin_text=(
            "stats on\nvalues[..4] >? 0\nquit\n"))
        footer = [l for l in text.splitlines()
                  if l.startswith("[steps=")][0]
        assert "reads=" in footer
        assert "writes=0" in footer
        assert "calls=0" in footer
        reads = int(footer.split("reads=")[1].split(",")[0])
        assert reads > 0


class TestTraceJsonFlag:
    def test_writes_jsonl(self, source, tmp_path):
        path = tmp_path / "trace.jsonl"
        status, text = run_cli(
            ["--trace-json", str(path), "-e", "values[..4] >? 0", source])
        assert status == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        kinds = [r["ev"] for r in records]
        assert kinds[0] == "query"
        assert "pull" in kinds and "yield" in kinds and "span" in kinds
        header = records[0]
        assert header["text"] == "values[..4] >? 0"

    def test_repl_queries_traced_too(self, source, tmp_path):
        path = tmp_path / "trace.jsonl"
        status, text = run_cli(["--trace-json", str(path), source],
                               stdin_text="values[0]\nvalues[1]\nquit\n")
        headers = [json.loads(line)
                   for line in path.read_text().splitlines()
                   if json.loads(line)["ev"] == "query"]
        assert [h["q"] for h in headers] == [1, 2]

    def test_unwritable_path_is_an_error(self, source, tmp_path):
        status, text = run_cli(
            ["--trace-json", str(tmp_path / "no" / "dir" / "t.jsonl"),
             "-e", "1", source])
        assert status == 1
        assert "error:" in text
