"""CLI observability: trace/explain/metrics commands, --trace-json,
--query-log / --dump-dir / --metrics-port and their REPL commands."""

import io
import json
import re

import pytest

from repro.cli import main

SOURCE = r"""
int values[4] = {5, -2, 9, 0};
int main(void) { return 0; }
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def run_cli(args, stdin_text=""):
    out = io.StringIO()
    status = main(args, stdin=io.StringIO(stdin_text), out=out)
    return status, out.getvalue()


class TestTraceCommandParsing:
    def test_strict_on_off(self, source):
        status, text = run_cli([source], stdin_text=(
            "trace on\ntrace off\nquit\n"))
        assert "trace on\n" in text
        assert "trace off\n" in text

    def test_bare_trace_prints_usage(self, source):
        status, text = run_cli([source], stdin_text="trace\nquit\n")
        assert "usage: trace on|off | trace <expression>" in text

    def test_near_miss_is_an_expression_not_a_toggle(self, source):
        """'trace onn' must not silently toggle tracing (the symbolic
        on|off hardening, applied here): it parses as an expression."""
        status, text = run_cli([source], stdin_text=(
            "trace onn\nquit\n"))
        assert "trace on\n" not in text
        assert "no symbol 'onn'" in text

    def test_trace_expression_profiles(self, source):
        status, text = run_cli([source], stdin_text=(
            "trace values[..4] >? 0\nquit\n"))
        assert "pulls=" in text and "yields=" in text
        assert "(generator engine)" in text


class TestExplainCommand:
    def test_explain_renders_profile(self, source):
        status, text = run_cli([source], stdin_text=(
            "explain values[..4] >? 0\nquit\n"))
        assert "ifgt" in text
        assert "pulls=" in text
        assert "100.0%" in text
        assert "-- 2 values in" in text

    def test_explain_without_argument(self, source):
        status, text = run_cli([source], stdin_text="explain\nquit\n")
        assert "usage: explain <expression>" in text


class TestMetricsCommand:
    def test_metrics_after_queries(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[0]\nmetrics\nquit\n"))
        assert "queries_total" in text
        assert "query_wall_ms" in text

    def test_metrics_output_is_name_sorted(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[0]\nmetrics\nquit\n"))
        start = text.splitlines().index(
            next(l for l in text.splitlines() if "governor_" in l))
        names = []
        for line in text.splitlines()[start:]:
            if not re.match(r"^[a-z][a-z0-9_]* ", line):
                break
            names.append(line.split()[0])
        assert len(names) > 3
        assert names == sorted(names)

    def test_metrics_export_is_prometheus_text(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[0]\nmetrics export\nquit\n"))
        assert "# TYPE duel_queries_total counter" in text
        # (the CLI shares the process registry, so the count is >= 1)
        assert re.search(r"duel_queries_total [1-9]\d*", text)
        assert '_bucket{le="+Inf"}' in text

    def test_metrics_bad_subcommand_prints_usage(self, source):
        status, text = run_cli([source], stdin_text=(
            "metrics exprot\nquit\n"))
        assert "usage: metrics [export]" in text


class TestStatsFooterTraffic:
    def test_footer_carries_target_traffic(self, source):
        status, text = run_cli([source], stdin_text=(
            "stats on\nvalues[..4] >? 0\nquit\n"))
        footer = [l for l in text.splitlines()
                  if l.startswith("[steps=")][0]
        assert "reads=" in footer
        assert "writes=0" in footer
        assert "calls=0" in footer
        reads = int(footer.split("reads=")[1].split(",")[0])
        assert reads > 0


class TestTraceJsonFlag:
    def test_writes_jsonl(self, source, tmp_path):
        path = tmp_path / "trace.jsonl"
        status, text = run_cli(
            ["--trace-json", str(path), "-e", "values[..4] >? 0", source])
        assert status == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        kinds = [r["ev"] for r in records]
        assert kinds[0] == "query"
        assert "pull" in kinds and "yield" in kinds and "span" in kinds
        header = records[0]
        assert header["text"] == "values[..4] >? 0"

    def test_repl_queries_traced_too(self, source, tmp_path):
        path = tmp_path / "trace.jsonl"
        status, text = run_cli(["--trace-json", str(path), source],
                               stdin_text="values[0]\nvalues[1]\nquit\n")
        headers = [json.loads(line)
                   for line in path.read_text().splitlines()
                   if json.loads(line)["ev"] == "query"]
        assert [h["q"] for h in headers] == [1, 2]

    def test_unwritable_path_is_an_error(self, source, tmp_path):
        status, text = run_cli(
            ["--trace-json", str(tmp_path / "no" / "dir" / "t.jsonl"),
             "-e", "1", source])
        assert status == 1
        assert "error:" in text


class TestQueryLogFlag:
    def test_batch_queries_logged(self, source, tmp_path):
        path = tmp_path / "q.jsonl"
        status, text = run_cli(
            ["--query-log", str(path), "-e", "values[..4] >? 0",
             "-e", "values[", source])
        assert status == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        events = [(r["qid"], r["ev"]) for r in records]
        assert events == [(1, "received"), (1, "parsed"), (1, "drained"),
                          (2, "received"), (2, "rejected")]
        assert records[2]["values"] == 2
        assert records[2]["reads"] > 0

    def test_unwritable_path_is_an_error(self, source, tmp_path):
        status, text = run_cli(
            ["--query-log", str(tmp_path / "no" / "dir" / "q.jsonl"),
             "-e", "1", source])
        assert status == 1
        assert "error:" in text

    def test_qlog_toggle_suspends_logging(self, source, tmp_path):
        path = tmp_path / "q.jsonl"
        status, text = run_cli(
            ["--query-log", str(path), source],
            stdin_text=("values[0]\nqlog off\nvalues[1]\n"
                        "qlog on\nvalues[2]\nquit\n"))
        assert "qlog off\n" in text and "qlog on\n" in text
        logged = [json.loads(line)["text"]
                  for line in path.read_text().splitlines()
                  if json.loads(line)["ev"] == "received"]
        assert logged == ["values[0]", "values[2]"]

    def test_qlog_strict_parsing(self, source, tmp_path):
        status, text = run_cli(
            ["--query-log", str(tmp_path / "q.jsonl"), source],
            stdin_text="qlog\nqlog onn\nqlog off extra\nquit\n")
        assert text.count("usage: qlog on|off") == 3

    def test_qlog_on_without_log_explains(self, source):
        status, text = run_cli([source], stdin_text="qlog on\nquit\n")
        assert "no query log attached (start with --query-log FILE)" \
            in text


class TestDumpDirFlag:
    def test_faulting_batch_produces_postmortem(self, source, tmp_path):
        dumps = tmp_path / "dumps"
        status, text = run_cli(
            ["--dump-dir", str(dumps), "-e", "values[0]",
             "-e", "values[2000000]", source])
        assert status == 0
        (name,) = [p.name for p in dumps.iterdir()]
        artifact = json.loads((dumps / name).read_text())
        assert "values[2000000]" in artifact["reason"]
        assert artifact["queries"][-1]["outcome"] == "faulted"

    def test_manual_dump_command(self, source, tmp_path):
        dumps = tmp_path / "dumps"
        status, text = run_cli(
            ["--dump-dir", str(dumps), source],
            stdin_text="values[0]\ndump\nquit\n")
        assert "dumped " in text
        (name,) = [p.name for p in dumps.iterdir()]
        artifact = json.loads((dumps / name).read_text())
        assert artifact["reason"] == "manual dump"
        assert artifact["queries"][0]["text"] == "values[0]"

    def test_dump_without_recorder_explains(self, source):
        status, text = run_cli([source], stdin_text="dump\nquit\n")
        assert "no flight recorder (start with --dump-dir DIR)" in text

    def test_dump_to_explicit_directory(self, source, tmp_path):
        status, text = run_cli(
            ["--dump-dir", str(tmp_path / "a"), source],
            stdin_text=f"values[0]\ndump {tmp_path / 'b'}\nquit\n")
        assert "dumped " in text
        assert list((tmp_path / "b").iterdir())


class TestMetricsPortFlag:
    def test_announces_endpoint_and_serves_it(self, source):
        import urllib.request
        from repro.cli import repl as real_repl
        import repro.cli as cli_module
        scraped = {}

        # Scrape from *inside* the REPL lifetime: stub repl so the
        # server is still up when the request happens.
        def scraping_repl(session, stdin=None, out=None):
            url = scraped["url"]
            with urllib.request.urlopen(url, timeout=5) as response:
                scraped["body"] = response.read().decode()
            return real_repl(session, stdin=stdin, out=out)

        out = io.StringIO()

        class Capture(io.StringIO):
            def write(inner, text):
                if text.startswith("metrics: "):
                    scraped["url"] = text.split()[1]
                return out.write(text)

        cli_module.repl = scraping_repl
        try:
            status = main(["--metrics-port", "0", source],
                          stdin=io.StringIO("values[0]\nquit\n"),
                          out=Capture())
        finally:
            cli_module.repl = real_repl
        assert status == 0
        assert re.match(r"http://127\.0\.0\.1:\d+/metrics",
                        scraped["url"])
        assert "# TYPE duel_" in scraped["body"]


class TestSigintFlush:
    def test_interrupted_drive_still_flushes_qlog_and_trace(
            self, source, tmp_path):
        """^C mid-drive: the cancelled query's terminal record lands in
        the query log and its trace records land in the JSONL trace —
        both files complete and parseable after exit."""
        import signal as _signal
        import threading
        qlog_path = tmp_path / "q.jsonl"
        trace_path = tmp_path / "t.jsonl"
        timer = threading.Timer(
            0.15, lambda: _signal.raise_signal(_signal.SIGINT))
        timer.start()
        try:
            status, text = run_cli(
                ["--query-log", str(qlog_path),
                 "--trace-json", str(trace_path),
                 "--max-steps", "0", "--max-lines", "0",
                 "--deadline-ms", "10000", source],
                stdin_text="1..\nvalues[0]\nquit\n")
        finally:
            timer.cancel()
        assert status == 0
        assert "interrupted)" in text
        qrecords = [json.loads(line)
                    for line in qlog_path.read_text().splitlines()]
        terminals = [(r["qid"], r["ev"]) for r in qrecords
                     if r["ev"] not in ("received", "parsed")]
        assert terminals == [(1, "cancelled"), (2, "drained")]
        cancelled = next(r for r in qrecords if r["ev"] == "cancelled")
        assert cancelled["kind"] == "cancel"
        trecords = [json.loads(line)
                    for line in trace_path.read_text().splitlines()]
        spans_by_query = {}
        for record in trecords:
            if record["ev"] == "span":
                spans_by_query.setdefault(record["q"], 0)
                spans_by_query[record["q"]] += 1
        # The interrupted query's spans were still written (the trace
        # finish runs in the drive's finally) and flushed on close.
        assert spans_by_query.get(1, 0) >= 1
        assert spans_by_query.get(2, 0) >= 1


class TestStatementsCommand:
    def test_statements_after_queries(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[..4]\nvalues[..2]\nvalues[0] = 7\n"
            "statements\nquit\n"))
        assert "statements: 2 shapes" in text
        # The two literal-variant reads folded into one shape.
        assert text.count("(name values)") >= 2

    def test_statements_by_calls(self, source):
        status, text = run_cli([source], stdin_text=(
            "values[..4]\nvalues[..2]\nvalues[0] = 7\n"
            "statements by calls\nquit\n"))
        lines = text.splitlines()
        header = next(i for i, line in enumerate(lines)
                      if line.startswith("statements: 2 shapes"))
        # Ordered by calls: the folded read shape (2 calls) first.
        assert " 2 " in lines[header + 2]

    def test_statements_bad_ordering_prints_usage(self, source):
        status, text = run_cli([source], stdin_text=(
            "statements by charm\nquit\n"))
        assert "usage: statements [by " in text

    def test_statements_extra_words_print_usage(self, source):
        status, text = run_cli([source], stdin_text=(
            "statements calls now\nquit\n"))
        assert "usage: statements [by " in text


class TestAccessesCommand:
    def test_accesses_renders_the_full_report(self, source):
        status, text = run_cli([source], stdin_text=(
            "accesses values[..4] !=? 0\nquit\n"))
        assert "accesses: values[..4] !=? 0" in text
        assert "pattern:" in text
        assert "prefetch advisor" in text
        assert "projected best:" in text

    def test_bare_accesses_prints_usage(self, source):
        status, text = run_cli([source], stdin_text="accesses\nquit\n")
        assert "usage: accesses <expression>" in text

    def test_accesses_reports_compile_errors(self, source):
        status, text = run_cli([source], stdin_text=(
            "accesses values[\nquit\n"))
        assert "pattern:" not in text
        assert "expected expression" in text

    def test_statements_by_reads_after_accesses(self, source):
        status, text = run_cli([source], stdin_text=(
            "accesses values[..4]\nstatements by reads\nquit\n"))
        assert "statements: 1 shapes" in text


class TestAccessTraceFlag:
    def test_access_trace_exports_profiles(self, source, tmp_path):
        path = tmp_path / "acc.jsonl"
        status, text = run_cli(
            [source, "--access-trace", str(path)],
            stdin_text="values[..4]\nvalues[..2]\nquit\n")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["ev"] == "access"
            assert record["outcome"] == "drained"
            assert record["profile"]["reads"] > 0
            assert record["fingerprint"]

    def test_access_sample_thins_the_export(self, source, tmp_path):
        path = tmp_path / "acc.jsonl"
        status, text = run_cli(
            [source, "--access-trace", str(path),
             "--access-sample", "3"],
            stdin_text="values[0]\nvalues[1]\nvalues[2]\n"
                       "values[3]\nvalues[0]\nvalues[1]\nquit\n")
        records = path.read_text().splitlines()
        assert len(records) == 2        # queries 3 and 6

    def test_unwritable_access_trace_is_reported(self, source):
        status, text = run_cli(
            [source, "--access-trace", "/nonexistent/dir/acc.jsonl"],
            stdin_text="quit\n")
        assert status == 1
        assert "error: " in text
        assert "/nonexistent/dir/acc.jsonl" in text
