"""Structured query log: lifecycle records, outcomes, session wiring."""

import io
import json

import pytest

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import (DuelCancelled, DuelEvalLimit,
                               DuelNameError, DuelTargetError,
                               DuelTruncation)
from repro.obs.metrics import MetricsRegistry
from repro.obs.qlog import (TERMINAL_EVENTS, QueryLog, classify,
                            drive_logged)
from repro.target import builder


def fresh_log():
    buffer = io.StringIO()
    return QueryLog(buffer, clock=lambda: 123.0), buffer


def records_of(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def array_session():
    program = TargetProgram()
    builder.int_array(program, "x", [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    return DuelSession(SimulatorBackend(program),
                       metrics=MetricsRegistry())


class TestQueryLogPrimitives:
    def test_monotone_query_ids(self):
        qlog, buffer = fresh_log()
        assert qlog.begin("1") == 1
        assert qlog.begin("2") == 2
        assert qlog.begin("3") == 3
        assert [r["qid"] for r in records_of(buffer)] == [1, 2, 3]

    def test_received_record_shape(self):
        qlog, buffer = fresh_log()
        qlog.begin("x[0]", engine="statemachine")
        (record,) = records_of(buffer)
        assert record == {"ev": "received", "qid": 1, "ts": 123.0,
                          "text": "x[0]", "engine": "statemachine"}

    def test_parsed_counts_ast_nodes(self):
        qlog, buffer = fresh_log()
        session = array_session()
        node = session.compile("x[..3] >? 0")
        qid = qlog.begin("x[..3] >? 0")
        qlog.parsed(qid, 0.5, node)
        parsed = records_of(buffer)[1]
        assert parsed["ev"] == "parsed"
        assert parsed["parse_ms"] == 0.5
        assert parsed["nodes"] >= 4

    def test_terminal_record_carries_verdict_and_stats(self):
        qlog, buffer = fresh_log()
        qid = qlog.begin("1..")
        qlog.end(qid, "truncated", values=7, kind="steps",
                 stats={"steps": 100, "lines": 8, "reads": 3,
                        "writes": 0, "calls": 0, "allocs": 0,
                        "wall_ms": 1.23456},
                 phases={"parse": 0.1, "eval": 1.0, "format": 0.1})
        terminal = records_of(buffer)[-1]
        assert terminal["ev"] == "truncated"
        assert terminal["kind"] == "steps"
        assert terminal["values"] == 7
        assert terminal["steps"] == 100
        assert terminal["reads"] == 3
        assert terminal["wall_ms"] == 1.235
        assert terminal["phases"] == {"parse": 0.1, "eval": 1.0,
                                      "format": 0.1}

    def test_unknown_outcome_rejected(self):
        qlog, _ = fresh_log()
        qid = qlog.begin("1")
        with pytest.raises(ValueError):
            qlog.end(qid, "exploded")

    def test_owned_file_closed(self, tmp_path):
        path = tmp_path / "q.jsonl"
        qlog = QueryLog(str(path))
        qid = qlog.begin("1")
        qlog.end(qid, "drained", values=1)
        qlog.close()
        assert len(path.read_text().splitlines()) == 2

    def test_terminal_records_flush_immediately(self, tmp_path):
        """A reader tailing the file sees a query's terminal record
        without waiting for close — the unattended-run contract."""
        path = tmp_path / "q.jsonl"
        qlog = QueryLog(str(path))
        qid = qlog.begin("1")
        qlog.end(qid, "drained", values=1)
        lines = path.read_text().splitlines()     # before close
        assert json.loads(lines[-1])["ev"] == "drained"
        qlog.close()


class TestClassify:
    def test_every_mapping(self):
        assert classify(None) == ("drained", None)
        assert classify(DuelCancelled("interrupt")) == \
            ("cancelled", "cancel")
        assert classify(DuelTruncation(10, "steps")) == \
            ("truncated", "steps")
        assert classify(DuelEvalLimit(10, "calls")) == \
            ("faulted", "calls")
        assert classify(DuelTargetError("boom")) == ("faulted", None)
        assert classify(DuelNameError("nope")) == ("faulted", None)

    def test_outcomes_are_terminal_events(self):
        for failure in (None, DuelCancelled(), DuelTruncation(1, "steps"),
                        DuelTargetError("x")):
            outcome, _ = classify(failure)
            assert outcome in TERMINAL_EVENTS


class TestDriveLogged:
    def test_drained_lifecycle(self):
        session = array_session()
        qlog, buffer = fresh_log()
        outcome, values = drive_logged(
            qlog, session, "x[..3] >? 0",
            lambda node: session.evaluator.eval(node))
        assert outcome == "drained"
        events = [r["ev"] for r in records_of(buffer)]
        assert events == ["received", "parsed", "drained"]
        terminal = records_of(buffer)[-1]
        assert terminal["values"] == values > 0
        assert terminal["reads"] > 0

    def test_rejected_lifecycle_skips_parsed(self):
        session = array_session()
        qlog, buffer = fresh_log()
        outcome, values = drive_logged(
            qlog, session, "x[",
            lambda node: session.evaluator.eval(node))
        assert (outcome, values) == ("rejected", 0)
        events = [r["ev"] for r in records_of(buffer)]
        assert events == ["received", "rejected"]
        assert "error" in records_of(buffer)[-1]

    def test_truncated_counts_partial_values(self):
        session = array_session()
        session.governor.set_limit("steps", 10)
        try:
            qlog, buffer = fresh_log()
            outcome, values = drive_logged(
                qlog, session, "1..",
                lambda node: session.evaluator.eval(node))
        finally:
            session.governor.set_limit("steps", 10_000_000)
        assert outcome == "truncated"
        terminal = records_of(buffer)[-1]
        assert terminal["kind"] == "steps"
        assert terminal["values"] == values
        assert 0 < values <= 10

    def test_faulted_carries_error_type(self):
        session = array_session()
        qlog, buffer = fresh_log()
        outcome, _ = drive_logged(
            qlog, session, "x[2000000]",
            lambda node: session.evaluator.eval(node))
        assert outcome == "faulted"
        terminal = records_of(buffer)[-1]
        assert terminal["error_type"] == "DuelMemoryError"
        assert "Illegal memory reference" in terminal["error"]


class TestSessionIntegration:
    def drive(self, session, *texts):
        out = io.StringIO()
        for text in texts:
            session.duel(text, out=out)
        return out

    def test_one_terminal_record_per_query(self):
        session = array_session()
        qlog, buffer = fresh_log()
        session.qlog = qlog
        session.governor.set_limit("lines", 3)
        self.drive(session, "x[..10]", "x[", "x[2000000]", "x[0]")
        by_qid = {}
        for record in records_of(buffer):
            if record["ev"] in TERMINAL_EVENTS:
                by_qid.setdefault(record["qid"], []).append(record["ev"])
        assert by_qid == {1: ["truncated"], 2: ["rejected"],
                          3: ["faulted"], 4: ["drained"]}

    def test_truncated_values_match_printed_lines(self):
        session = array_session()
        qlog, buffer = fresh_log()
        session.qlog = qlog
        session.governor.set_limit("lines", 3)
        out = self.drive(session, "x[..10]")
        printed = [line for line in out.getvalue().splitlines()
                   if not line.startswith("(stopped")]
        terminal = records_of(buffer)[-1]
        assert terminal["values"] == len(printed) == 3

    def test_explain_queries_logged_too(self):
        session = array_session()
        qlog, buffer = fresh_log()
        session.qlog = qlog
        session.explain("x[..4] >? 0", out=io.StringIO())
        events = [r["ev"] for r in records_of(buffer)]
        assert events == ["received", "parsed", "drained"]

    def test_qlog_off_means_no_records_and_no_qids_burned(self):
        session = array_session()
        qlog, buffer = fresh_log()
        session.qlog = qlog
        self.drive(session, "x[0]")
        session.qlog = None
        self.drive(session, "x[1]", "x[2]")
        session.qlog = qlog
        self.drive(session, "x[3]")
        qids = [r["qid"] for r in records_of(buffer)
                if r["ev"] == "received"]
        assert qids == [1, 2]

    def test_terminal_record_present_after_cancel(self):
        """A ^C mid-drive still leaves the query's terminal record —
        the flush-on-interrupt guarantee (here via the token)."""
        session = array_session()
        qlog, buffer = fresh_log()
        session.qlog = qlog

        class TrippingOut(io.StringIO):
            # ``begin_query`` clears the token, so (like a real ^C)
            # the trip has to land mid-drive: after a few output
            # lines, here.
            def write(inner, text):
                if inner.getvalue().count("\n") >= 3:
                    session.governor.token.trip("interrupt")
                return super().write(text)

        # Mentions target state, so each value prints (and hits the
        # write hook) as it is produced — constants-only expressions
        # buffer into one joined line instead.
        session.duel("x[0] + (1..)", out=TrippingOut())
        terminal = records_of(buffer)[-1]
        assert terminal["ev"] == "cancelled"
        assert terminal["kind"] == "cancel"
        assert terminal["values"] >= 3


class TestFsyncOption:
    """``fsync=True`` makes every flush point reach the disk."""

    def test_fsync_called_per_terminal_record(self, tmp_path,
                                              monkeypatch):
        synced = []
        monkeypatch.setattr("os.fsync", lambda fd: synced.append(fd))
        qlog = QueryLog(str(tmp_path / "audit.qlog"), fsync=True)
        qid = qlog.begin("x[0]")
        qlog.end(qid, "drained", values=1)
        qlog.server_event("drain_begin")
        qlog.close()
        assert len(synced) >= 3     # end + server_event + close

    def test_fsync_off_by_default(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr("os.fsync", lambda fd: synced.append(fd))
        qlog = QueryLog(str(tmp_path / "audit.qlog"))
        qid = qlog.begin("x[0]")
        qlog.end(qid, "drained", values=1)
        qlog.close()
        assert synced == []

    def test_fsync_tolerates_in_memory_streams(self):
        qlog = QueryLog(io.StringIO(), fsync=True)
        qid = qlog.begin("x[0]")
        qlog.end(qid, "drained", values=1)   # fileno() missing: no crash
        qlog.close()

    def test_durability_event_kinds_accepted(self):
        qlog, buffer = fresh_log()
        for kind in ("checkpoint", "recover_begin", "recover_done",
                     "journal_torn"):
            qlog.server_event(kind, lsn=7)
        kinds = [r["kind"] for r in records_of(buffer)]
        assert kinds == ["checkpoint", "recover_begin", "recover_done",
                        "journal_torn"]
