"""Request traces: ids, span trees, sampling, JSONL export."""

import io
import json

import pytest

from repro.obs.reqtrace import (ALWAYS_EXPORT, SERVER_PHASES,
                                TRACE_ID_MAX, RequestTrace, TraceLog,
                                make_trace_id, valid_trace_id)


class TestTraceIds:
    def test_make_trace_id_shape(self):
        trace_id = make_trace_id()
        assert len(trace_id) == 16
        assert all(ch in "0123456789abcdef" for ch in trace_id)

    def test_make_trace_id_unique(self):
        assert len({make_trace_id() for _ in range(100)}) == 100

    def test_valid_accepts_generated_ids(self):
        assert valid_trace_id(make_trace_id())

    @pytest.mark.parametrize("bad", [
        "", None, 42, "has space", "tab\tseparated", "new\nline",
        "x" * (TRACE_ID_MAX + 1), "café",
    ])
    def test_valid_rejects(self, bad):
        assert not valid_trace_id(bad)

    def test_valid_accepts_max_length(self):
        assert valid_trace_id("x" * TRACE_ID_MAX)


class TestRequestTrace:
    def test_span_tree_round_trip(self):
        trace = RequestTrace("t1", "sess", request_id=7,
                             text="x[..10]")
        trace.span("admission_queue", 1.5)
        trace.span("session_lock", 0.25, mode="read")
        trace.span("drive", 10.0, eval_ms=9.0)
        trace.outcome = "done"
        record = trace.as_dict()
        assert record["ev"] == "request"
        assert record["trace_id"] == "t1"
        assert record["session_id"] == "sess"
        assert record["request_id"] == 7
        assert record["wall_ms"] == pytest.approx(11.75)
        assert [s["name"] for s in record["spans"]] == [
            "admission_queue", "session_lock", "drive"]
        assert record["spans"][1]["mode"] == "read"

    def test_phase_ms_uses_short_vocabulary(self):
        trace = RequestTrace("t1", "sess")
        trace.span("admission_queue", 1.0)
        trace.span("session_lock", 2.0)
        trace.span("stream", 3.0)
        assert trace.phase_ms() == {"queue": 1.0, "lock": 2.0,
                                    "stream": 3.0}

    def test_optional_fields_absent_when_unset(self):
        record = RequestTrace("t1", "sess").as_dict()
        assert "request_id" not in record
        assert "text" not in record
        assert "engine_spans" not in record
        assert "fingerprint" not in record

    def test_server_phase_vocabulary(self):
        assert SERVER_PHASES == ("admission_queue", "session_lock",
                                 "parse", "drive", "stream")


class TestSampling:
    def test_sample_one_takes_everything(self):
        log = TraceLog(io.StringIO(), sample=1)
        assert all(log.sample_next() for _ in range(5))

    def test_sample_n_takes_every_nth(self):
        log = TraceLog(io.StringIO(), sample=3)
        coins = [log.sample_next() for _ in range(9)]
        assert coins == [False, False, True] * 3

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(io.StringIO(), sample=0)

    def test_should_export_sampled(self):
        log = TraceLog(io.StringIO(), sample=2)
        trace = RequestTrace("t", "s", sampled=True)
        trace.outcome = "done"
        assert log.should_export(trace)

    def test_should_export_unsampled_good_outcome(self):
        log = TraceLog(io.StringIO(), sample=2)
        trace = RequestTrace("t", "s", sampled=False)
        trace.outcome = "done"
        assert not log.should_export(trace)

    @pytest.mark.parametrize("outcome", sorted(ALWAYS_EXPORT))
    def test_bad_outcomes_always_export(self, outcome):
        log = TraceLog(io.StringIO(), sample=1000)
        trace = RequestTrace("t", "s", sampled=False)
        trace.outcome = outcome
        assert log.should_export(trace)

    def test_slow_always_exports(self):
        log = TraceLog(io.StringIO(), sample=1000)
        trace = RequestTrace("t", "s", sampled=False)
        trace.outcome = "done"
        assert log.should_export(trace, slow=True)


class TestExport:
    def test_export_writes_jsonl(self):
        stream = io.StringIO()
        log = TraceLog(stream, sample=1)
        trace = RequestTrace("t1", "sess")
        trace.span("drive", 5.0)
        trace.outcome = "done"
        log.export(trace)
        log.close()
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == "t1"
        assert log.exported == 1

    def test_path_owned_stream(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        log = TraceLog(str(path), sample=1)
        trace = RequestTrace("t1", "sess")
        trace.outcome = "done"
        log.export(trace)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["outcome"] == "done"

    def test_concurrent_export_keeps_lines_whole(self):
        import threading
        stream = io.StringIO()
        log = TraceLog(stream, sample=1)

        def export_some(tag):
            for index in range(50):
                trace = RequestTrace(f"{tag}-{index}", "sess")
                trace.span("drive", 1.0)
                trace.outcome = "done"
                log.export(trace)

        threads = [threading.Thread(target=export_some, args=(t,))
                   for t in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 150
        assert log.exported == 150
        for line in lines:
            json.loads(line)       # every line parses on its own
