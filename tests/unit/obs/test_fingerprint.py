"""Canonical AST fingerprints: normalization rules and stability."""

import hashlib

from repro.core.parser import parse
from repro.obs.fingerprint import (Fingerprint, bound_names, canonical,
                                   fingerprint)


def fp(text: str) -> Fingerprint:
    return fingerprint(parse(text))


class TestLiteralBucketing:
    def test_differing_constants_collapse(self):
        assert fp("data[..10]") == fp("data[..500]")

    def test_differing_string_literals_collapse(self):
        assert fp('s == "abc"') == fp('s == "xyz"')

    def test_assignment_values_collapse(self):
        assert fp("data[..10] = 5001") == fp("data[..10] = 42")

    def test_reads_and_writes_stay_distinct(self):
        assert fp("data[..10]") != fp("data[..10] = 5001")

    def test_canonical_text_shows_placeholders(self):
        text = canonical(parse("data[..10]"))
        assert "?" in text
        assert "10" not in text


class TestAliasResolution:
    def test_bound_names_are_positional(self):
        mapping = bound_names(parse("x := data[..10]"))
        assert mapping == {"x": "$1"}

    def test_defines_fingerprint_identically(self):
        assert fp("x := data[..10]") == fp("y := data[..10]")

    def test_references_to_bound_names_normalize(self):
        assert fp("(x := data[..10]); x") == fp("(y := data[..10]); y")

    def test_program_symbols_keep_their_names(self):
        # ``data`` vs ``head`` is a different shape, not a literal.
        assert fp("data[..10]") != fp("head[..10]")

    def test_index_alias_normalizes(self):
        assert fp("data[..5]#i") == fp("data[..5]#j")

    def test_binding_order_is_preorder(self):
        left = bound_names(parse("(a := 1); (b := 2)"))
        right = bound_names(parse("(b := 1); (a := 2)"))
        assert left == {"a": "$1", "b": "$2"}
        assert right == {"b": "$1", "a": "$2"}


class TestRangeEndpoints:
    def test_open_endpoints_stay_distinct(self):
        # x[..n], x[m..] and x[m..n] have different semantics; the
        # bucketed literals must not collapse them into one shape.
        prefix = fp("data[..10]")
        unbounded = fp("data[10..]")
        closed = fp("data[2..10]")
        assert len({prefix.hash, unbounded.hash, closed.hash}) == 3


class TestStability:
    def test_hash_is_sha256_prefix_of_text(self):
        result = fp("data[..10] >? 5")
        digest = hashlib.sha256(
            result.text.encode("utf-8")).hexdigest()[:16]
        assert result.hash == digest

    def test_hash_is_stable_across_parses(self):
        assert fp("#/(data[..40] >? 5)") == fp("#/(data[..40] >? 5)")

    def test_whitespace_does_not_change_the_shape(self):
        assert fp("data[..10]>?5") == fp("data[ ..10 ] >? 5")

    def test_distinct_operators_distinct_shapes(self):
        assert fp("data[..10] >? 5") != fp("data[..10] <? 5")

    def test_casts_keep_their_type_text(self):
        assert fp("(char) 65") != fp("(long) 65")
