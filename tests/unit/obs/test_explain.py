"""EXPLAIN profiles: render_profile and DuelSession.explain."""

import io

from repro.obs.explain import profile_footer, render_profile
from repro.obs.trace import QueryTracer


def explain_lines(session, text):
    out = io.StringIO()
    session.explain(text, out=out)
    return out.getvalue().splitlines()


class TestRenderProfile:
    def test_tree_shape_and_columns(self, session):
        node = session.compile("x[..10] >? 5")
        session.evaluator.reset()
        tracer = QueryTracer()
        tracer.begin(node, "")
        session.evaluator.set_tracer(tracer)
        list(session.evaluator.eval(node))
        session.evaluator.set_tracer(None)
        lines = render_profile(node, tracer)
        assert len(lines) == len(tracer.spans)
        root = lines[0]
        assert root.startswith("ifgt")
        assert "pulls=4" in root            # 3 values + exhausted pull
        assert "yields=3" in root
        assert "100.0%" in root
        assert any(line.lstrip().startswith(("├─", "└─"))
                   for line in lines[1:])
        # Profile columns line up across rows.
        columns = [line.index("pulls=") for line in lines]
        assert len(set(columns)) == 1

    def test_traffic_only_when_nonzero(self, session):
        node = session.compile("(1..3)")
        session.evaluator.reset()
        tracer = QueryTracer()
        tracer.begin(node, "")
        session.evaluator.set_tracer(tracer)
        list(session.evaluator.eval(node))
        session.evaluator.set_tracer(None)
        lines = render_profile(node, tracer)
        assert all("reads=" not in line for line in lines)

    def test_footer(self):
        text = profile_footer(30, 4.7, {"reads": 130, "writes": 0,
                                        "calls": 0})
        assert text == ("-- 30 values in 4.7ms; 130 reads, 0 writes, "
                        "0 calls (generator engine)")


class TestSessionExplain:
    def test_paper_filter_example(self, session):
        lines = explain_lines(session, "x[..100] >? 5")
        assert lines[0].startswith("ifgt")
        assert "pulls=" in lines[0] and "yields=" in lines[0]
        assert any("reads=" in line for line in lines)
        assert any('name "x"' in line for line in lines)
        assert lines[-1].startswith("-- ")
        assert "values in" in lines[-1]
        assert "(generator engine)" in lines[-1]

    def test_paper_list_walk_example(self, session):
        lines = explain_lines(session, "head-->next->value")
        assert lines[0].startswith("witharrow")
        assert any("dfs" in line for line in lines)
        assert any('name "value"' in line for line in lines)
        assert lines[-1].startswith("-- 8 values in ")

    def test_swallows_output_lines(self, session):
        lines = explain_lines(session, "x[..10] >? 5")
        assert not any("x[2] = 7" in line for line in lines)

    def test_compile_error_reports_without_profile(self, session):
        lines = explain_lines(session, "x[..")
        assert "expression" in lines[0]
        assert not any("pulls=" in line for line in lines)

    def test_truncation_appends_diagnostic(self, session):
        session.governor.set_limit("lines", 2)
        try:
            lines = explain_lines(session, "x[..100] !=? 0")
        finally:
            session.governor.set_limit("lines", None)
        assert lines[0].startswith("ifne")
        assert "(stopped:" in lines[-1]

    def test_explain_fills_last_query_stats(self, session):
        explain_lines(session, "x[..10] >? 5")
        stats = session.last_query_stats
        assert stats["reads"] > 0
        assert stats["steps"] > 0

    def test_explain_detaches_tracer(self, session):
        explain_lines(session, "x[3]")
        assert session.evaluator.tracer is None
        out = io.StringIO()
        session.duel("x[3]", out=out)
        assert out.getvalue().strip() == "x[3] = 0"
