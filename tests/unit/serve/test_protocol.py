"""Unit tests for the JSONL wire protocol (framing, validation)."""

import io

import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestFraming:
    def test_encode_decode_roundtrip(self):
        frame = {"op": "duel", "id": 7, "text": "x[..10] >? 0"}
        assert protocol.decode(protocol.encode(frame)) == frame

    def test_encode_is_one_compact_line(self):
        data = protocol.encode({"op": "bye"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert b" " not in data  # compact separators

    def test_encode_rejects_oversized_frames(self):
        huge = {"ev": "value", "id": 1, "lines": ["x" * protocol.MAX_FRAME]}
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode(huge)

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            protocol.decode(b"{nope\n")

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode(b"[1,2,3]\n")

    def test_decode_rejects_oversized_input(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode(b"x" * (protocol.MAX_FRAME + 1))

    def test_read_frames_until_eof(self):
        stream = io.BytesIO(b'{"op":"hello","version":1}\n'
                            b'\n'  # blank keep-alive line: skipped
                            b'{"op":"bye"}\n')
        frames = list(protocol.read_frames(stream))
        assert [f["op"] for f in frames] == ["hello", "bye"]

    def test_read_frames_raises_on_unterminated_oversize(self):
        stream = io.BytesIO(b"x" * (protocol.MAX_FRAME + 2))
        with pytest.raises(ProtocolError):
            list(protocol.read_frames(stream))


class TestValidation:
    def test_valid_requests_pass(self):
        assert protocol.validate_request(
            {"op": "duel", "id": 1, "text": "1+2"}) == "duel"
        assert protocol.validate_request(
            {"op": "hello", "version": 1}) == "hello"
        assert protocol.validate_request(
            {"op": "cancel", "id": 2, "target": 1}) == "cancel"
        assert protocol.validate_request({"op": "bye"}) == "bye"

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.validate_request({"op": "evaluate"})

    @pytest.mark.parametrize("op", ["duel", "alias", "limits", "stats",
                                    "cancel"])
    def test_missing_id_rejected(self, op):
        frame = {"op": op, "text": "1", "target": 1, "version": 1}
        with pytest.raises(ProtocolError, match="integer 'id'"):
            protocol.validate_request(frame)

    def test_duel_needs_string_text(self):
        with pytest.raises(ProtocolError, match="string 'text'"):
            protocol.validate_request({"op": "duel", "id": 1, "text": 5})

    def test_cancel_needs_integer_target(self):
        with pytest.raises(ProtocolError, match="integer 'target'"):
            protocol.validate_request({"op": "cancel", "id": 1,
                                       "target": "one"})

    def test_hello_needs_integer_version(self):
        with pytest.raises(ProtocolError, match="integer 'version'"):
            protocol.validate_request({"op": "hello"})

    def test_limits_name_must_be_string(self):
        with pytest.raises(ProtocolError, match="must be a string"):
            protocol.validate_request({"op": "limits", "id": 1, "name": 3})


class TestBuilders:
    def test_hello_welcome_pair(self):
        hello = protocol.hello("ana")
        assert hello == {"op": "hello", "version": protocol.PROTOCOL_VERSION,
                         "client": "ana"}
        welcome = protocol.welcome("ana#1", limits={"steps": 100})
        assert welcome["ev"] == "welcome"
        assert welcome["limits"] == {"steps": 100}

    def test_clip_line_keeps_short_lines_intact(self):
        assert protocol.clip_line("x[5] = 3") == "x[5] = 3"

    def test_clip_line_bounds_huge_lines(self):
        huge = "v" * (protocol.MAX_FRAME * 2)
        clipped = protocol.clip_line(huge)
        assert len(clipped.encode()) <= protocol.MAX_LINE
        assert "line clipped" in clipped
        # The clip notice reports the original size.
        assert str(len(huge.encode())) in clipped

    def test_value_frame_clips_each_line(self):
        frame = protocol.value_frame(3, ["ok", "w" * (protocol.MAX_FRAME)])
        assert frame["lines"][0] == "ok"
        assert "line clipped" in frame["lines"][1]
        # The whole frame must now encode.
        protocol.encode(frame)

    def test_terminal_copies_known_keys_only(self):
        frame = protocol.terminal(9, "truncated", {
            "values": 4, "kind": "steps", "diagnostic": "(stopped)",
            "stats": {"steps": 100}, "internal_thing": "secret"})
        assert frame == {"ev": "truncated", "id": 9, "values": 4,
                         "kind": "steps", "diagnostic": "(stopped)",
                         "stats": {"steps": 100}}

    def test_terminal_rejects_unknown_outcomes(self):
        with pytest.raises(ProtocolError, match="unknown terminal"):
            protocol.terminal(1, "exploded", {})

    def test_rejected_frame(self):
        frame = protocol.rejected(5, "overloaded", detail="queue full")
        assert frame == {"ev": "rejected", "id": 5,
                         "reason": "overloaded", "detail": "queue full"}


class TestFaultToleranceValidation:
    def test_ping_needs_id_pong_needs_seq(self):
        assert protocol.validate_request({"op": "ping", "id": 4}) == "ping"
        assert protocol.validate_request({"op": "pong", "seq": 9}) == "pong"
        with pytest.raises(ProtocolError, match="integer 'id'"):
            protocol.validate_request({"op": "ping"})
        with pytest.raises(ProtocolError, match="integer 'seq'"):
            protocol.validate_request({"op": "pong"})

    def test_duel_idem_must_be_string(self):
        assert protocol.validate_request(
            {"op": "duel", "id": 1, "text": "1", "idem": "tok"}) == "duel"
        with pytest.raises(ProtocolError, match="'idem' must be a string"):
            protocol.validate_request(
                {"op": "duel", "id": 1, "text": "1", "idem": 7})

    def test_hello_resume_must_be_string(self):
        assert protocol.validate_request(
            {"op": "hello", "version": 1, "resume": "abc"}) == "hello"
        with pytest.raises(ProtocolError, match="'resume' must be a string"):
            protocol.validate_request(
                {"op": "hello", "version": 1, "resume": 1})

    def test_hello_builder_carries_resume(self):
        frame = protocol.hello("ana", resume="deadbeef")
        assert frame["resume"] == "deadbeef"

    def test_terminal_passes_replayed_flag(self):
        frame = protocol.terminal(2, "done", {"values": 1, "replayed": True})
        assert frame["replayed"] is True


class TestBudgetedReader:
    """One test per malformation class the lenient reader survives."""

    def read_all(self, payload: bytes):
        return list(protocol.read_frames_budgeted(io.BytesIO(payload)))

    def test_clean_stream_yields_only_frames(self):
        items = self.read_all(b'{"op":"hello","version":1}\n'
                              b'\n'
                              b'{"op":"bye"}\n')
        assert [f["op"] for f in items] == ["hello", "bye"]

    def test_broken_json_yielded_as_error_then_continues(self):
        items = self.read_all(b'{nope\n{"op":"bye"}\n')
        assert isinstance(items[0], ProtocolError)
        assert "not JSON" in str(items[0])
        assert items[1]["op"] == "bye"

    def test_non_object_yielded_as_error_then_continues(self):
        items = self.read_all(b'[1,2,3]\n{"op":"bye"}\n')
        assert isinstance(items[0], ProtocolError)
        assert "JSON object" in str(items[0])
        assert items[1]["op"] == "bye"

    def test_oversized_terminated_line_resyncs(self):
        # One giant line *with* a newline: the reader skips to the
        # newline, reports the oversize, and keeps reading.
        payload = (b'{"pad":"' + b"x" * (protocol.MAX_FRAME + 100)
                   + b'"}\n{"op":"bye"}\n')
        items = self.read_all(payload)
        assert isinstance(items[0], ProtocolError)
        assert "oversized" in str(items[0])
        assert items[1]["op"] == "bye"

    def test_unterminated_oversize_past_resync_budget_is_fatal(self):
        payload = b"x" * (protocol.MAX_RESYNC + 2 * protocol.MAX_FRAME)
        with pytest.raises(protocol.FatalProtocolError, match="newline"):
            self.read_all(payload)

    def test_unterminated_oversize_at_eof_just_ends(self):
        # No newline ever arrives but EOF comes first: treated as a
        # vanished peer, not an error worth raising about.
        payload = b"x" * (protocol.MAX_FRAME + 100)
        assert self.read_all(payload) == []

    def test_binary_garbage_is_an_error_not_a_crash(self):
        items = self.read_all(b"\x00\xff\xfe\x01\n" + b'{"op":"bye"}\n')
        assert isinstance(items[0], ProtocolError)
        assert items[1]["op"] == "bye"


class TestObservabilityOps:
    def test_statements_and_health_ops_validate(self):
        assert protocol.validate_request(
            {"op": "statements", "id": 1}) == "statements"
        assert protocol.validate_request(
            {"op": "statements", "id": 1, "by": "calls",
             "limit": 5}) == "statements"
        assert protocol.validate_request(
            {"op": "health", "id": 2}) == "health"

    def test_statements_bad_ordering_rejected(self):
        with pytest.raises(ProtocolError, match="'by' must be one of"):
            protocol.validate_request({"op": "statements", "id": 1,
                                       "by": "charm"})

    @pytest.mark.parametrize("limit", [0, -3, "ten", 1.5])
    def test_statements_bad_limit_rejected(self, limit):
        with pytest.raises(ProtocolError, match="positive integer"):
            protocol.validate_request({"op": "statements", "id": 1,
                                       "limit": limit})

    def test_duel_accepts_client_trace_id(self):
        assert protocol.validate_request(
            {"op": "duel", "id": 1, "text": "x",
             "trace": "abc-123"}) == "duel"

    @pytest.mark.parametrize("trace", [
        "", 42, "has space", "tab\there", "x" * (protocol.TRACE_ID_MAX + 1),
        "café",
    ])
    def test_duel_bad_trace_rejected(self, trace):
        with pytest.raises(ProtocolError, match="'trace'"):
            protocol.validate_request({"op": "duel", "id": 1,
                                       "text": "x", "trace": trace})


class TestAccessesOp:
    def test_accesses_validates(self):
        assert protocol.validate_request(
            {"op": "accesses", "id": 1, "text": "x[..9]"}) == "accesses"

    def test_accesses_accepts_a_trace_id(self):
        assert protocol.validate_request(
            {"op": "accesses", "id": 1, "text": "x",
             "trace": "abc-1"}) == "accesses"

    def test_accesses_requires_text(self):
        with pytest.raises(ProtocolError, match="'text'"):
            protocol.validate_request({"op": "accesses", "id": 1})

    @pytest.mark.parametrize("text", [42, None, ["x"]])
    def test_accesses_rejects_non_string_text(self, text):
        with pytest.raises(ProtocolError, match="'text'"):
            protocol.validate_request({"op": "accesses", "id": 1,
                                       "text": text})

    def test_accesses_requires_an_id(self):
        with pytest.raises(ProtocolError, match="'id'"):
            protocol.validate_request({"op": "accesses", "text": "x"})

    def test_statement_orderings_cover_target_traffic(self):
        assert "reads" in protocol.STATEMENT_ORDERINGS
        assert "reads_per_value" in protocol.STATEMENT_ORDERINGS
        for by in protocol.STATEMENT_ORDERINGS:
            assert protocol.validate_request(
                {"op": "statements", "id": 1, "by": by}) == "statements"
