"""Unit tests for the circuit breaker and server health word."""

import pytest

from repro.serve.health import (DEGRADED, DRAINING, OK, STATE_CODES,
                                CircuitBreaker, ServerHealth)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(threshold=3, window=30.0, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold=threshold, window=window,
                          cooldown=cooldown, clock=clock), clock


class TestCircuitBreaker:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_closed_allows_writes(self):
        breaker, _ = make_breaker()
        assert not breaker.open
        assert breaker.state() == "closed"
        assert breaker.allow_write() is True
        assert breaker.rejections == 0

    def test_trips_at_threshold_within_window(self):
        breaker, _ = make_breaker(threshold=3)
        assert breaker.record_fault() is False
        assert breaker.record_fault() is False
        assert breaker.record_fault() is True     # the tripping fault
        assert breaker.open
        assert breaker.state() == "open"
        assert breaker.trips == 1

    def test_window_slides_old_faults_out(self):
        breaker, clock = make_breaker(threshold=3, window=30.0)
        breaker.record_fault()
        breaker.record_fault()
        clock.advance(31.0)                        # both fall off
        assert breaker.record_fault() is False
        assert not breaker.open

    def test_open_rejects_writes_and_counts(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_fault()
        assert breaker.allow_write() is False
        assert breaker.allow_write() is False
        assert breaker.rejections == 2

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_fault()
        clock.advance(10.0)
        assert breaker.state() == "half-open"
        assert breaker.allow_write() is True       # the probe
        assert breaker.allow_write() is False      # everyone else waits
        assert breaker.rejections == 1

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_fault()
        clock.advance(10.0)
        assert breaker.allow_write()
        assert breaker.record_ok() is True
        assert not breaker.open
        assert breaker.state() == "closed"
        # A later clean write on a closed breaker is a no-op.
        assert breaker.record_ok() is False

    def test_probe_fault_reopens_full_cooldown(self):
        breaker, clock = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_fault()
        clock.advance(10.0)
        assert breaker.allow_write()
        assert breaker.record_fault() is False     # re-open, not a new trip
        assert breaker.trips == 1
        assert breaker.state() == "open"           # cooldown restarted
        clock.advance(9.0)
        assert breaker.allow_write() is False
        clock.advance(1.0)
        assert breaker.allow_write() is True       # fresh probe slot

    def test_record_ok_without_probe_keeps_breaker_open(self):
        # A read completing while open must not close the breaker.
        breaker, _ = make_breaker(threshold=1)
        breaker.record_fault()
        assert breaker.record_ok() is False
        assert breaker.open

    def test_force_close_resets_everything(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_fault()
        breaker.force_close()
        assert not breaker.open
        assert breaker.allow_write() is True

    def test_retrip_after_recovery(self):
        breaker, clock = make_breaker(threshold=2, cooldown=5.0)
        breaker.record_fault()
        breaker.record_fault()
        assert breaker.trips == 1
        clock.advance(5.0)
        assert breaker.allow_write()
        breaker.record_ok()
        breaker.record_fault()
        breaker.record_fault()
        assert breaker.trips == 2


class TestServerHealth:
    def test_ok_by_default(self):
        health = ServerHealth()
        assert health.state() == OK
        assert health.code() == STATE_CODES[OK] == 0
        assert health.healthz() == (200, "ok\n")

    def test_degraded_when_breaker_open(self):
        breaker, _ = make_breaker(threshold=1)
        health = ServerHealth(breaker)
        breaker.record_fault()
        assert health.state() == DEGRADED
        assert health.code() == 1
        status, body = health.healthz()
        assert status == 200                       # alive, don't restart-loop
        assert body.startswith("degraded")
        assert "writes rejected" in body

    def test_draining_dominates_and_serves_503(self):
        breaker, _ = make_breaker(threshold=1)
        health = ServerHealth(breaker)
        breaker.record_fault()
        health.set_draining()
        assert health.state() == DRAINING
        assert health.code() == 2
        assert health.healthz() == (503, "draining\n")

    def test_recovery_returns_to_ok(self):
        breaker, clock = make_breaker(threshold=1, cooldown=1.0)
        health = ServerHealth(breaker)
        breaker.record_fault()
        clock.advance(1.0)
        assert breaker.allow_write()
        breaker.record_ok()
        assert health.state() == OK


class TestHealthzDetail:
    def test_detail_appends_one_json_line(self):
        import json
        health = ServerHealth()
        health.detail = lambda: {"status": "ok",
                                 "sessions": {"active": 2}}
        status, body = health.healthz()
        assert status == 200
        lines = body.splitlines()
        assert lines[0] == "ok"                    # probes keep line 1
        detail = json.loads(lines[1])
        assert detail["sessions"]["active"] == 2

    def test_detail_rides_degraded_and_draining(self):
        import json
        breaker, _ = make_breaker(threshold=1)
        health = ServerHealth(breaker)
        health.detail = lambda: {"status": health.state()}
        breaker.record_fault()
        status, body = health.healthz()
        assert status == 200
        assert body.splitlines()[0].startswith("degraded")
        assert json.loads(body.splitlines()[1])["status"] == "degraded"
        health.set_draining()
        status, body = health.healthz()
        assert status == 503
        assert json.loads(body.splitlines()[1])["status"] == "draining"

    def test_failing_detail_never_breaks_the_probe(self):
        health = ServerHealth()

        def boom():
            raise RuntimeError("subsystem introspection bug")

        health.detail = boom
        assert health.healthz() == (200, "ok\n")

    def test_unserializable_detail_never_breaks_the_probe(self):
        health = ServerHealth()
        health.detail = lambda: {"bad": object()}
        assert health.healthz() == (200, "ok\n")

    def test_no_detail_keeps_the_old_body(self):
        assert ServerHealth().healthz() == (200, "ok\n")
