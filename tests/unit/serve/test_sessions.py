"""Unit tests for session multiplexing and snapshot isolation."""

import threading
import time

import pytest

from repro.bench import workloads
from repro.serve.sessions import ReadWriteLock, SessionManager


@pytest.fixture
def program():
    return workloads.big_array(50)


@pytest.fixture
def manager(program):
    return SessionManager(program)


def drain(manager, client, text):
    """Run one query to completion; returns (outcome, lines, info)."""
    lines = []
    for kind, payload in manager.run(client, text):
        if kind == "value":
            lines.append(payload)
        else:
            return kind, lines, payload
    raise AssertionError("no terminal event")


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        assert lock.acquire_read()
        assert lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        assert lock.acquire_write()
        assert not lock.acquire_read(timeout=0.05)
        lock.release_write()
        assert lock.acquire_read()
        lock.release_read()

    def test_writer_waits_for_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        assert not lock.acquire_write(timeout=0.05)
        lock.release_read()
        assert lock.acquire_write()
        lock.release_write()

    def test_pending_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)  # let the writer start waiting
        # Writer preference: a new reader must not jump the queue.
        assert not lock.acquire_read(timeout=0.05)
        lock.release_read()
        thread.join(timeout=2)
        assert got_write.is_set()
        assert lock.acquire_read()
        lock.release_read()

    def test_many_readers_one_writer_no_overlap(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "writers": 0}
        overlaps = []
        mutex = threading.Lock()

        def reader():
            for _ in range(100):
                lock.acquire_read()
                with mutex:
                    state["readers"] += 1
                    if state["writers"]:
                        overlaps.append("r-during-w")
                with mutex:
                    state["readers"] -= 1
                lock.release_read()

        def writer():
            for _ in range(50):
                lock.acquire_write()
                with mutex:
                    state["writers"] += 1
                    if state["readers"] or state["writers"] > 1:
                        overlaps.append("w-overlap")
                with mutex:
                    state["writers"] -= 1
                lock.release_write()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads += [threading.Thread(target=writer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert overlaps == []


class TestSessionLifecycle:
    def test_open_is_idempotent(self, manager):
        a1 = manager.open("a#1")
        a2 = manager.open("a#1")
        assert a1 is a2
        assert manager.count() == 1

    def test_sessions_are_private_per_client(self, manager):
        a = manager.open("a#1")
        b = manager.open("b#2")
        assert a.session is not b.session
        assert a.session.evaluator.backend is not b.session.evaluator.backend

    def test_close_drops_the_session(self, manager):
        manager.open("a#1")
        manager.close("a#1")
        assert manager.get("a#1") is None
        assert manager.count() == 0

    def test_shared_observability_is_attached(self, program):
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        manager = SessionManager(program, metrics=metrics)
        client = manager.open("a#1")
        drain(manager, client, "x[..5]")
        assert metrics.counter("queries_total").value == 1


class TestClassify:
    def test_reads_are_not_writes(self, manager):
        client = manager.open("a#1")
        assert manager.classify(client, "x[..10] >? 0") is False

    def test_assignment_is_a_write(self, manager):
        client = manager.open("a#1")
        assert manager.classify(client, "x[0] = 5") is True

    def test_incdec_is_a_write(self, manager):
        client = manager.open("a#1")
        assert manager.classify(client, "x[0]++") is True

    def test_alias_definition_is_not_a_write(self, manager):
        client = manager.open("a#1")
        assert manager.classify(client, "y := x[0]") is False

    def test_unparsable_text_is_read_only(self, manager):
        client = manager.open("a#1")
        assert manager.classify(client, ")))") is False


class TestSnapshotIsolation:
    def test_write_sees_its_own_effect(self, manager):
        client = manager.open("a#1")
        outcome, lines, _ = drain(manager, client, "x[0] = 4242")
        assert outcome == "done"
        assert any("4242" in line for line in lines)

    def test_write_does_not_persist(self, manager):
        a = manager.open("a#1")
        before = drain(manager, a, "x[0]")[1]
        drain(manager, a, "x[0] = 4242")
        after = drain(manager, a, "x[0]")[1]
        assert after == before

    def test_write_is_invisible_to_other_clients(self, manager):
        a = manager.open("a#1")
        b = manager.open("b#2")
        baseline = drain(manager, b, "x[..10]")[1]
        drain(manager, a, "x[..10] = 0")
        assert drain(manager, b, "x[..10]")[1] == baseline

    def test_faulted_write_still_restores(self, manager):
        a = manager.open("a#1")
        baseline = drain(manager, a, "x[..10]")[1]
        # Write then fault (null dereference) in the same drive.
        outcome, _, info = drain(manager, a, "(x[0] = 77, *(int*)0)")
        assert outcome == "faulted"
        assert drain(manager, a, "x[..10]")[1] == baseline

    def test_aliases_are_per_client(self, manager):
        a = manager.open("a#1")
        b = manager.open("b#2")
        drain(manager, a, "secret := 42")
        outcome, _, info = drain(manager, b, "secret")
        assert outcome == "faulted"
        assert "secret" in info["error"]
        outcome, lines, _ = drain(manager, a, "secret")
        assert outcome == "done"
        assert any("42" in line for line in lines)

    def test_abandoned_write_generator_restores(self, manager):
        a = manager.open("a#1")
        baseline = drain(manager, a, "x[0]")[1]
        events = manager.run(a, "x[..50] = 1")
        next(events)          # pull one value, then walk away
        events.close()        # finally-block must restore + release
        assert drain(manager, a, "x[0]")[1] == baseline
        # And the write lock must have been released.
        b = manager.open("b#2")
        assert drain(manager, b, "x[0]")[1] == baseline

    def test_concurrent_readers_share_the_target(self, manager):
        clients = [manager.open(f"c#{i}") for i in range(4)]
        results = [None] * 4

        def read(i):
            results[i] = drain(manager, clients[i], "x[..20] >? 0")

        threads = [threading.Thread(target=read, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        first = results[0]
        assert first is not None and first[0] == "done"
        # Outcome and lines identical (stats carry per-run timings).
        assert all(r[0] == "done" and r[1] == first[1] for r in results)
