"""Unit tests for client-side fault tolerance (no server needed)."""

import errno
import random
import socket

import pytest

from repro.serve import protocol
from repro.serve.client import (DuelClient, QueryResult, RetryPolicy,
                                ServeError, _connection_refused,
                                classify_writes)
from repro.serve.client import main as client_main


class TestRetryPolicy:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base=0.1, factor=2.0, max_backoff=0.5,
                             jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)   # capped
        assert policy.backoff(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_with_seeded_rng(self):
        a = RetryPolicy(base=0.1, jitter=0.5, rng=random.Random(11))
        b = RetryPolicy(base=0.1, jitter=0.5, rng=random.Random(11))
        seq_a = [a.backoff(i) for i in range(1, 5)]
        seq_b = [b.backoff(i) for i in range(1, 5)]
        assert seq_a == seq_b
        # Jitter only ever stretches the wait, never shrinks it.
        assert all(x >= 0.1 for x in seq_a[:1])

    def test_wait_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(base=0.25, jitter=0.0, sleep=slept.append)
        policy.wait(1)
        policy.wait(2)
        assert slept == [pytest.approx(0.25), pytest.approx(0.5)]


class TestClassifyWrites:
    def test_reads_are_not_writes(self):
        assert classify_writes("x[..100] >? 0") is False

    def test_assignment_is_a_write(self):
        assert classify_writes("x[0] = 1") is True

    def test_alias_definition_is_not_a_write(self):
        assert classify_writes("y := x[0]") is False

    def test_unparseable_is_tagged_conservatively(self):
        assert classify_writes("]]]") is True


def piped_client():
    """A client wired to a raw socketpair (we play the server)."""
    ours, theirs = socket.socketpair()
    ours.settimeout(5)
    theirs.settimeout(5)
    client = DuelClient(connect=False)
    client._sock = theirs
    client._rfile = theirs.makefile("rb")
    client._wfile = theirs.makefile("wb")
    return client, ours


class TestReadFrame:
    def test_auto_pong_answers_server_pings(self):
        client, server = piped_client()
        try:
            server.sendall(protocol.encode({"ev": "ping", "seq": 7}))
            server.sendall(protocol.encode({"ev": "stats", "id": 1}))
            frame = client.read_frame()
            # The ping was swallowed; the real frame came through...
            assert frame == {"ev": "stats", "id": 1}
            # ...and the server got its pong back.
            pong = protocol.decode(server.makefile("rb").readline())
            assert pong == {"op": "pong", "seq": 7}
        finally:
            client._teardown()
            server.close()

    def test_eof_returns_none(self):
        client, server = piped_client()
        try:
            server.close()
            assert client.read_frame() is None
        finally:
            client._teardown()

    def test_garbage_raises_serve_error(self):
        client, server = piped_client()
        try:
            server.sendall(b"not json\n")
            with pytest.raises(ServeError, match="unreadable"):
                client.read_frame()
        finally:
            client._teardown()
            server.close()


def make_result(outcome, request_id=1, frame=None):
    return QueryResult(request_id, outcome, [], frame or {})


class ScriptedClient(DuelClient):
    """duel() machinery with the transport replaced by a script.

    ``script`` is a list consumed one entry per attempt: an Exception
    instance is raised from collect(), anything else is returned as
    the attempt's QueryResult.
    """

    def __init__(self, script, **kwargs):
        kwargs.setdefault("connect", False)
        kwargs.setdefault(
            "retry", RetryPolicy(retries=3, jitter=0.0,
                                 sleep=lambda _s: None))
        super().__init__(**kwargs)
        self.script = list(script)
        self.attempts = 0
        self.redials = 0
        self.idems_seen = []
        self._sock = object()          # "connected"

    def _redial(self):
        self.redials += 1
        self._sock = object()

    def _teardown(self):
        self._sock = None

    def start(self, text, idem=None, trace=None, profile=False):
        self.idems_seen.append(idem)
        return self._take_id()

    def collect(self, request_id, on_line=None):
        self.attempts += 1
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


class TestDuelRetry:
    def test_broken_conversation_is_retried(self):
        client = ScriptedClient([ServeError("connection lost"),
                                 make_result("done")])
        result = client.duel("x[..10]")
        assert result.outcome == "done"
        assert client.attempts == 2
        assert client.redials == 1     # reconnected between attempts

    def test_retries_exhausted_raises_with_count(self):
        client = ScriptedClient([ServeError("boom")] * 4)
        with pytest.raises(ServeError, match="after 4 attempts"):
            client.duel("x[..10]")
        assert client.attempts == 4    # 1 try + 3 retries

    def test_zero_retries_fails_fast(self):
        client = ScriptedClient(
            [ServeError("boom")],
            retry=RetryPolicy(retries=0, sleep=lambda _s: None))
        with pytest.raises(ServeError, match="after 1 attempt:"):
            client.duel("x[..10]")
        assert client.attempts == 1

    def test_write_query_gets_auto_idem_token_kept_across_retries(self):
        client = ScriptedClient([OSError("reset"), make_result("done")])
        client.duel("x[0] = 1")
        assert client.attempts == 2
        assert len(client.idems_seen) == 2
        token = client.idems_seen[0]
        assert token is not None and token.startswith("auto-")
        # The retry re-presents the *same* token: exactly-once.
        assert client.idems_seen[1] == token

    def test_read_query_gets_no_token(self):
        client = ScriptedClient([make_result("done")])
        client.duel("x[..10]")
        assert client.idems_seen == [None]

    def test_explicit_idem_wins_over_auto(self):
        client = ScriptedClient([make_result("done")])
        client.duel("x[0] = 1", idem="mine")
        assert client.idems_seen == ["mine"]

    def test_auto_idem_off(self):
        client = ScriptedClient([make_result("done")], auto_idem=False)
        client.duel("x[0] = 1")
        assert client.idems_seen == [None]

    def test_busy_rejection_with_token_is_retried(self):
        # The previous attempt still runs server-side: back off, then
        # the cached result replays.
        busy = make_result("rejected", frame={"reason": "busy"})
        replay = make_result("done", frame={"replayed": True})
        client = ScriptedClient([busy, replay])
        result = client.duel("x[0] = 1")
        assert result.outcome == "done"
        assert result.replayed is True
        assert client.attempts == 2

    def test_busy_rejection_without_token_returns(self):
        busy = make_result("rejected", frame={"reason": "busy"})
        client = ScriptedClient([busy])
        result = client.duel("x[..10]")
        assert result.outcome == "rejected"
        assert client.attempts == 1

    def test_alias_queries_remembered_for_replay(self):
        client = ScriptedClient([make_result("done")])
        client.duel("y := x[0]")
        assert client._alias_texts == ["y := x[0]"]


def refused(message="dial failed"):
    """A ServeError wrapping ECONNREFUSED, as the transport raises it."""
    error = ServeError(message)
    error.__cause__ = ConnectionRefusedError(errno.ECONNREFUSED,
                                             "connection refused")
    return error


class TestConnectionRefusedDetection:
    def test_bare_refusal(self):
        assert _connection_refused(ConnectionRefusedError())

    def test_oserror_with_errno(self):
        assert _connection_refused(OSError(errno.ECONNREFUSED, "nope"))

    def test_wrapped_refusal_via_cause_chain(self):
        assert _connection_refused(refused())

    def test_wrapped_refusal_via_context_chain(self):
        outer = ServeError("broken")
        outer.__context__ = ConnectionRefusedError()
        assert _connection_refused(outer)

    def test_other_errors_are_not_refusals(self):
        assert not _connection_refused(ServeError("timeout"))
        assert not _connection_refused(OSError(errno.EPIPE, "pipe"))
        assert not _connection_refused(None)

    def test_cyclic_cause_chain_terminates(self):
        a = ServeError("a")
        b = ServeError("b")
        a.__cause__ = b
        b.__cause__ = a
        assert not _connection_refused(a)


class TestRestartWindow:
    """Refused dials during a server restart are patience, not retries."""

    def test_refusals_inside_window_not_charged(self):
        # retries=0 would normally fail on the first error; with the
        # window open, refused dials wait it out and the query lands.
        client = ScriptedClient(
            [refused(), refused(), make_result("done")],
            retry=RetryPolicy(retries=0, jitter=0.0,
                              sleep=lambda _s: None),
            restart_window=60.0)
        result = client.duel("x[..10]")
        assert result.outcome == "done"
        assert client.attempts == 3

    def test_non_refusal_errors_still_charged(self):
        client = ScriptedClient(
            [ServeError("reset mid-query")],
            retry=RetryPolicy(retries=0, jitter=0.0,
                              sleep=lambda _s: None),
            restart_window=60.0)
        with pytest.raises(ServeError, match="after 1 attempt"):
            client.duel("x[..10]")

    def test_window_expiry_charges_refusals(self):
        # A microscopic window: the first refusal opens the streak,
        # the second falls outside it and is charged like any error.
        client = ScriptedClient(
            [refused(), refused(), refused()],
            retry=RetryPolicy(retries=0, jitter=0.0,
                              sleep=lambda _s: None),
            restart_window=1e-9)
        with pytest.raises(ServeError, match="after 1 attempt"):
            client.duel("x[..10]")

    def test_window_off_by_default(self):
        client = ScriptedClient(
            [refused()],
            retry=RetryPolicy(retries=0, jitter=0.0,
                              sleep=lambda _s: None))
        with pytest.raises(ServeError):
            client.duel("x[..10]")

    def test_success_resets_the_streak(self):
        client = ScriptedClient(
            [refused(), make_result("done")],
            retry=RetryPolicy(retries=0, jitter=0.0,
                              sleep=lambda _s: None),
            restart_window=60.0)
        client.duel("x[..10]")
        assert client._refused_since is None


class FakeResultClient:
    """Patches DuelClient so ``main`` sees scripted query results."""

    def __init__(self, monkeypatch, outcomes):
        results = [QueryResult(i + 1, outcome, [],
                               {"reason": "busy"} if outcome == "rejected"
                               else {"error": "boom"})
                   for i, outcome in enumerate(outcomes)]
        monkeypatch.setattr(DuelClient, "connect",
                            lambda self, resume=True: None)
        monkeypatch.setattr(DuelClient, "close", lambda self: None)
        monkeypatch.setattr(DuelClient, "duel",
                            lambda self, text, on_line=None, idem=None:
                            results.pop(0))


class TestMainExitCodes:
    def test_done_is_zero(self, monkeypatch, capsys):
        FakeResultClient(monkeypatch, ["done"])
        assert client_main(["--port", "1", "--expr", "1"]) == 0

    def test_truncated_and_cancelled_are_zero(self, monkeypatch, capsys):
        FakeResultClient(monkeypatch, ["truncated", "cancelled"])
        assert client_main(["--port", "1", "--expr", "a",
                            "--expr", "b"]) == 0

    def test_rejected_is_three(self, monkeypatch, capsys):
        FakeResultClient(monkeypatch, ["rejected"])
        assert client_main(["--port", "1", "--expr", "1"]) == 3
        assert "rejected: busy" in capsys.readouterr().out

    def test_faulted_is_four(self, monkeypatch, capsys):
        FakeResultClient(monkeypatch, ["faulted"])
        assert client_main(["--port", "1", "--expr", "1"]) == 4

    def test_batch_returns_worst(self, monkeypatch, capsys):
        FakeResultClient(monkeypatch, ["done", "faulted", "rejected"])
        assert client_main(["--port", "1", "--expr", "a", "--expr", "b",
                            "--expr", "c"]) == 4

    def test_dial_failure_is_two(self, capsys):
        # Port 1 on loopback: nothing listens there.
        code = client_main(["--port", "1", "--retries", "0",
                            "--connect-timeout", "1", "--expr", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_usage_error_is_one(self, capsys):
        # Not argparse's default 2, which means "connection failed".
        with pytest.raises(SystemExit) as caught:
            client_main(["--port", "1", "--no-such-flag"])
        assert caught.value.code == 1

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as caught:
            client_main(["--help"])
        assert caught.value.code == 0
        text = capsys.readouterr().out
        assert "exit codes" in text
        assert "retries were exhausted" in text
        assert "--restart-window" in text
