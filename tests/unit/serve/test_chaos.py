"""Unit tests for the deterministic chaos proxy."""

import socket
import threading
import time

import pytest

from repro.serve.chaos import (DOWN, UP, ChaosProxy, Directive, FaultPlan,
                               delay_after, drop_after, reset_after,
                               stall_after, truncate_after)


class EchoServer:
    """A tiny upstream that echoes every byte back."""

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            threading.Thread(target=self._echo, args=(conn,),
                             daemon=True).start()

    def _echo(self, conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self):
        self._stop.set()
        try:
            self.listener.close()
        except OSError:
            pass


@pytest.fixture()
def echo():
    server = EchoServer()
    yield server
    server.stop()


def dial(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=5)
    sock.settimeout(5)
    return sock


def recv_all(sock):
    chunks = []
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    except (socket.timeout, ConnectionResetError):
        pass
    return b"".join(chunks)


class TestDirectives:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            Directive("explode")

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            Directive("drop", 0, "sideways")

    def test_shorthands(self):
        assert drop_after(10).kind == "drop"
        assert reset_after(10).kind == "reset"
        assert truncate_after(10).kind == "truncate"
        assert delay_after(10, 0.5).seconds == 0.5
        assert stall_after(10, 0.5, UP).direction == UP


class TestFaultPlan:
    def test_scripted_plan_is_per_connection(self):
        plan = FaultPlan.scripted({0: [drop_after(5)]})
        assert len(plan.for_connection(0)) == 1
        assert plan.for_connection(1) == []

    def test_for_connection_returns_fresh_copies(self):
        plan = FaultPlan.scripted({0: [drop_after(5)]})
        first = plan.for_connection(0)[0]
        first.done = True
        assert plan.for_connection(0)[0].done is False

    def test_seeded_plan_is_deterministic(self):
        one = FaultPlan.seeded(42, 20)
        two = FaultPlan.seeded(42, 20)
        for index in range(20):
            a = one.for_connection(index)
            b = two.for_connection(index)
            assert [(d.kind, d.at, d.direction) for d in a] \
                == [(d.kind, d.at, d.direction) for d in b]

    def test_seeded_prefix_stable_when_extended(self):
        # Adding connections never reshuffles earlier ones.
        short = FaultPlan.seeded(7, 5)
        long = FaultPlan.seeded(7, 50)
        for index in range(5):
            a = short.for_connection(index)
            b = long.for_connection(index)
            assert [(d.kind, d.at) for d in a] == [(d.kind, d.at) for d in b]


class TestProxy:
    def test_clean_plan_passes_bytes_through(self, echo):
        with ChaosProxy(("127.0.0.1", echo.port)) as proxy:
            sock = dial(proxy.port)
            sock.sendall(b"hello chaos\n")
            assert sock.recv(1024) == b"hello chaos\n"
            sock.close()
        assert proxy.events == []

    def test_truncate_forwards_exactly_at_bytes(self, echo):
        plan = FaultPlan.scripted({0: [truncate_after(5, DOWN)]})
        with ChaosProxy(("127.0.0.1", echo.port), plan) as proxy:
            sock = dial(proxy.port)
            sock.sendall(b"0123456789")
            got = recv_all(sock)
            assert got == b"01234"     # cut mid-stream, byte-exact
            sock.close()
            assert proxy.events == [(0, "truncate", DOWN, 5)]

    def test_drop_up_cuts_before_the_server_sees_it(self, echo):
        plan = FaultPlan.scripted({0: [drop_after(3, UP)]})
        with ChaosProxy(("127.0.0.1", echo.port), plan) as proxy:
            sock = dial(proxy.port)
            sock.sendall(b"abcdef")
            got = recv_all(sock)       # only the forwarded prefix echoes
            assert got in (b"", b"abc")
            sock.close()
            assert proxy.events == [(0, "drop", UP, 3)]

    def test_reset_sends_rst(self, echo):
        plan = FaultPlan.scripted({0: [reset_after(0, DOWN)]})
        with ChaosProxy(("127.0.0.1", echo.port), plan) as proxy:
            sock = dial(proxy.port)
            sock.sendall(b"x")
            # The peer sees a hard reset (or, platform-depending, an
            # immediate EOF); either way the conversation is dead.
            try:
                data = recv_all(sock)
                assert data == b""
            except OSError:
                pass
            sock.close()
            assert proxy.events[0][1] == "reset"

    def test_delay_holds_then_delivers(self, echo):
        plan = FaultPlan.scripted({0: [delay_after(2, 0.3, DOWN)]})
        with ChaosProxy(("127.0.0.1", echo.port), plan) as proxy:
            sock = dial(proxy.port)
            t0 = time.monotonic()
            sock.sendall(b"abcd")
            got = b""
            while len(got) < 4:
                got += sock.recv(1024)
            elapsed = time.monotonic() - t0
            assert got == b"abcd"      # everything arrives eventually
            assert elapsed >= 0.25     # ...but not before the delay
            sock.close()

    def test_second_connection_unaffected_by_first_plan(self, echo):
        plan = FaultPlan.scripted({0: [drop_after(0, DOWN)]})
        with ChaosProxy(("127.0.0.1", echo.port), plan) as proxy:
            first = dial(proxy.port)
            first.sendall(b"x")
            recv_all(first)
            first.close()
            second = dial(proxy.port)
            second.sendall(b"ok\n")
            assert second.recv(1024) == b"ok\n"
            second.close()
            assert proxy.connections_seen == 2

    def test_stop_interrupts_a_stall(self, echo):
        plan = FaultPlan.scripted({0: [stall_after(0, 60.0, DOWN)]})
        proxy = ChaosProxy(("127.0.0.1", echo.port), plan)
        proxy.start()
        sock = dial(proxy.port)
        sock.sendall(b"x")
        time.sleep(0.1)
        t0 = time.monotonic()
        proxy.stop()                   # must not wait out the 60s stall
        assert time.monotonic() - t0 < 10
        sock.close()
