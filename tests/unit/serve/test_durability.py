"""Unit tests for durable session state: journaled lifecycle,
commit-writes mode, export/resurrect, and parked-TTL boundaries."""

import io
import threading

import pytest

from repro.bench import workloads
from repro.serve import sessions as sessions_module
from repro.serve.journal import Journal, fold_sessions
from repro.serve.sessions import QueryLease, SessionManager
from repro.target import snapshot


@pytest.fixture
def program():
    return workloads.big_array(50)


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / "journal"), fsync="off")


@pytest.fixture
def manager(program, journal):
    return SessionManager(program, journal=journal)


def drain(manager, client, text):
    """Run one query to completion; returns (outcome, lines, info)."""
    lines = []
    for kind, payload in manager.run(client, text):
        if kind == "value":
            lines.append(payload)
        else:
            return kind, lines, payload
    raise AssertionError("no terminal event")


def journaled(journal):
    return [record for _, record in journal.replay()]


class FakeClock:
    """Stand-in for the ``time`` module inside the sessions module."""

    def __init__(self, now=1000.0):
        self.now = now

    def monotonic(self):
        return self.now


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(sessions_module, "time", fake)
    return fake


class TestParkTtlBoundary:
    """Satellite: the exact TTL edge and the sweep/resume race."""

    def test_resume_exactly_at_expiry_succeeds(self, manager, clock):
        client = manager.open("c1")
        key = client.resume_key
        manager.park(client, ttl=5.0)
        clock.now += 5.0                       # now == expiry, not past
        resumed = manager.resume(key, "c2")
        assert resumed is client
        assert resumed.client_id == "c2"

    def test_resume_just_past_expiry_is_unknown_key(self, manager, clock):
        client = manager.open("c1")
        key = client.resume_key
        manager.park(client, ttl=5.0)
        clock.now += 5.0001
        assert manager.resume(key, "c2") is None
        # The expired entry was popped, not left half-alive: the key
        # stays unknown and the session is attached nowhere.
        assert manager.resume(key, "c3") is None
        assert manager.get("c2") is None
        assert manager.parked_count() == 0

    def test_sweep_exactly_at_expiry_keeps(self, manager, clock):
        client = manager.open("c1")
        manager.park(client, ttl=5.0)
        clock.now += 5.0
        assert manager.sweep_parked() == 0
        assert manager.parked_count() == 1

    def test_sweep_past_expiry_drops_and_journals(self, manager, clock,
                                                  journal):
        client = manager.open("c1")
        key = client.resume_key
        manager.park(client, ttl=5.0)
        clock.now += 6.0
        assert manager.sweep_parked() == 1
        assert manager.parked_count() == 0
        closes = [r for r in journaled(journal)
                  if r["k"] == "sess_close" and r["key"] == key]
        assert len(closes) == 1

    def test_expired_resume_journals_close(self, manager, clock, journal):
        client = manager.open("c1")
        key = client.resume_key
        manager.park(client, ttl=1.0)
        clock.now += 2.0
        assert manager.resume(key, "c2") is None
        kinds = [r["k"] for r in journaled(journal)
                 if r.get("key") == key]
        assert kinds == ["sess_open", "sess_park", "sess_close"]

    def test_sweep_racing_resume_is_atomic(self, program):
        """Each parked key is resumed XOR swept, never half-restored."""
        manager = SessionManager(program)
        keys = []
        for i in range(24):
            client = manager.open(f"c{i}")
            keys.append(client.resume_key)
            manager.park(client, ttl=0.010)    # expires mid-hammer

        resumed: dict[str, object] = {}
        start = threading.Barrier(3)

        def resumer():
            start.wait()
            for i, key in enumerate(keys):
                got = manager.resume(key, f"r{i}")
                if got is not None:
                    resumed[key] = (got, f"r{i}")

        def sweeper():
            start.wait()
            for _ in range(200):
                manager.sweep_parked()

        threads = [threading.Thread(target=resumer),
                   threading.Thread(target=sweeper),
                   threading.Thread(target=sweeper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for key in keys:
            if key in resumed:
                client, client_id = resumed[key]
                # Fully restored: attached under the new id, counters
                # reset, and gone from the parked table.
                assert manager.get(client_id) is client
                assert client.client_id == client_id
                assert client.inflight == 0
                assert client.generation == 2
            # Either way the key is spent: a later resume never
            # produces a second half-alive copy.
            assert manager.resume(key, "late") is None
        assert manager.parked_count() == 0


class TestJournaledLifecycle:
    def test_open_close_journaled_once(self, manager, journal):
        client = manager.open("c1")
        manager.open("c1")                     # same session, no record
        manager.close("c1")
        records = journaled(journal)
        assert [r["k"] for r in records] == ["sess_open", "sess_close"]
        assert records[0]["key"] == client.resume_key
        assert records[0]["client"] == "c1"
        assert isinstance(records[0]["limits"], dict)

    def test_limit_and_idem_helpers_journal(self, manager, journal):
        client = manager.open("c1")
        manager.note_limit(client, "steps", 123)
        manager.note_idem(client, "tok-9", {"outcome": {"ev": "done"}})
        kinds = {r["k"]: r for r in journaled(journal)}
        assert kinds["sess_limit"]["name"] == "steps"
        assert kinds["sess_limit"]["value"] == 123
        assert kinds["idem"]["token"] == "tok-9"

    def test_alias_text_journaled_once(self, manager, journal):
        client = manager.open("c1")
        assert drain(manager, client, "t := x[3]")[0] == "done"
        assert drain(manager, client, "t := x[3]")[0] == "done"
        aliases = [r for r in journaled(journal) if r["k"] == "sess_alias"]
        assert len(aliases) == 1
        assert aliases[0]["text"] == "t := x[3]"
        assert client.alias_texts == ["t := x[3]"]

    def test_park_eviction_journals_close(self, program, journal):
        manager = SessionManager(program, journal=journal)
        first = manager.open("c0")
        manager.park(first, ttl=60.0)
        for i in range(manager.PARK_MAX):
            manager.park(manager.open(f"c{i + 1}"), ttl=60.0)
        closes = [r["key"] for r in journaled(journal)
                  if r["k"] == "sess_close"]
        assert first.resume_key in closes

    def test_fold_round_trips_manager_history(self, manager, journal):
        client = manager.open("c1")
        drain(manager, client, "t := x[0]")
        manager.note_limit(client, "lines", 99)
        manager.park(client, ttl=60.0)
        resumed = manager.resume(client.resume_key, "c2")
        assert resumed is client
        state, writes = fold_sessions({}, journal.replay())
        entry = state[client.resume_key]
        assert entry["client_id"] == "c2"
        assert entry["limits"]["lines"] == 99
        assert entry["aliases"] == ["t := x[0]"]
        assert entry["closed"] is False
        assert writes == []


class TestCommitWrites:
    def test_done_write_keeps_effects_and_journals(self, program, journal):
        manager = SessionManager(program, journal=journal,
                                 commit_writes=True)
        writer = manager.open("w")
        reader = manager.open("r")
        assert drain(manager, writer, "x[3] = 777")[0] == "done"
        # The effect outlived the query and is visible cross-session —
        # the exact opposite of the default snapshot isolation.
        assert drain(manager, reader, "x[3]")[1] == ["x[3] = 777"]
        writes = [r for r in journaled(journal) if r["k"] == "write"]
        assert len(writes) == 1
        assert writes[0]["text"] == "x[3] = 777"
        assert writes[0]["outcome"] == "done"
        assert writes[0]["key"] == writer.resume_key

    def test_truncated_write_rolls_back_unjournaled(self, program,
                                                    journal):
        manager = SessionManager(program, journal=journal,
                                 commit_writes=True)
        writer = manager.open("w")
        before = drain(manager, writer, "x[..50]")[1]
        writer.session.governor.set_limit("lines", 5)
        outcome, _, _ = drain(manager, writer, "x[..50] = 0")
        assert outcome == "truncated"
        writer.session.governor.set_limit("lines", 10_000)
        # Rolled back: no element kept the half-applied zero sweep.
        assert drain(manager, writer, "x[..50]")[1] == before
        assert [r for r in journaled(journal) if r["k"] == "write"] == []

    def test_default_mode_still_isolates(self, manager, journal):
        writer = manager.open("w")
        assert drain(manager, writer, "x[3] = 777")[0] == "done"
        assert drain(manager, writer, "x[3]")[1] != ["x[3] = 777"]
        assert [r for r in journaled(journal) if r["k"] == "write"] == []

    def test_commit_loses_to_forced_settle(self, program, journal):
        manager = SessionManager(program, journal=journal)
        client = manager.open("c1")
        manager._rw.acquire_write()
        checkpoint = snapshot.take(program)
        lease = QueryLease(manager, client, "write", checkpoint)
        manager._register(lease)
        assert lease.settle(forced=True)
        ran = []
        assert lease.commit(on_commit=lambda: ran.append(1)) is False
        assert ran == []                       # nothing journaled
        # The forced settle released the lock; a writer can get in.
        assert manager._rw.acquire_write(timeout=0.5)
        manager._rw.release_write()

    def test_settle_after_commit_is_noop(self, program):
        manager = SessionManager(program, commit_writes=True)
        client = manager.open("c1")
        manager._rw.acquire_write()
        lease = QueryLease(manager, client, "write",
                           snapshot.take(program))
        manager._register(lease)
        assert lease.commit()
        assert lease.settle() is False
        assert manager._rw.acquire_write(timeout=0.5)
        manager._rw.release_write()


class TestExportResurrect:
    def test_round_trip(self, program):
        manager = SessionManager(program)
        client = manager.open("c1")
        client.session.governor.set_limit("lines", 77)
        drain(manager, client, "t := x[0]")
        client.idem_store("tok", {"outcome": {"ev": "done", "values": 1}})
        (entry,) = manager.export_state()
        assert entry["key"] == client.resume_key
        assert entry["limits"]["lines"] == 77
        assert entry["aliases"] == ["t := x[0]"]
        assert "tok" in entry["idem"]

        fresh = SessionManager(workloads.big_array(50))
        revived = fresh.resurrect(entry)
        assert revived.resume_key == client.resume_key
        assert revived.session.governor.limits["lines"] == 77
        assert revived.alias_texts == ["t := x[0]"]
        assert revived.idem_lookup("tok")["outcome"]["ev"] == "done"
        # Replay runs unaudited until finish_resurrect.
        assert revived.session.qlog is None
        assert revived.session.recorder is None

    def test_export_covers_parked_skips_poisoned(self, program):
        manager = SessionManager(program)
        parked = manager.open("gone")
        manager.park(parked, ttl=60.0)
        live = manager.open("live")
        bad = manager.open("bad")
        bad.poisoned = True
        keys = {entry["key"] for entry in manager.export_state()}
        assert keys == {parked.resume_key, live.resume_key}

    def test_resurrect_ignores_bogus_limits(self, program):
        manager = SessionManager(program)
        revived = manager.resurrect({
            "key": "k", "client_id": "c",
            "limits": {"no_such_limit": 5, "lines": 9},
            "aliases": [], "idem": {}})
        assert revived.session.governor.limits["lines"] == 9

    def test_adopt_parked_is_resumable_and_silent(self, program, journal):
        manager = SessionManager(program, journal=journal)
        entry = {"key": "key-1", "client_id": "old", "limits": {},
                 "aliases": [], "idem": {}}
        revived = manager.resurrect(entry)
        before = len(journaled(journal))
        assert manager.adopt_parked(revived, ttl=60.0)
        assert len(journaled(journal)) == before    # journals nothing
        resumed = manager.resume("key-1", "new")
        assert resumed is revived

    def test_finish_resurrect_reattaches_audit(self, program):
        from repro.obs.qlog import QueryLog
        qlog = QueryLog(io.StringIO())
        manager = SessionManager(program, qlog=qlog)
        revived = manager.resurrect({"key": "k", "client_id": "c",
                                     "limits": {}, "aliases": [],
                                     "idem": {}})
        assert revived.session.qlog is None
        manager.finish_resurrect(revived)
        assert revived.session.qlog is qlog
