"""Unit tests for the server: admission, control ops, lifecycle.

Each test boots a real :class:`DuelServer` on a loopback ephemeral
port — the in-process pieces are covered by ``test_sessions.py``;
here the contract under test is the wire behaviour.
"""

import socket
import threading
import time

import pytest

from repro.bench import workloads
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.client import DuelClient, ServeError
from repro.serve.server import DuelServer


@pytest.fixture
def server():
    booted = DuelServer(workloads.big_array(100), workers=2,
                        queue_depth=4, max_clients=4, per_client=1,
                        metrics=MetricsRegistry(), drain_timeout=5.0)
    booted.start()
    yield booted
    booted.stop()


def connect(server, name=None) -> DuelClient:
    return DuelClient(port=server.port, client=name, timeout=10.0)


class TestHandshake:
    def test_welcome_carries_identity_and_limits(self, server):
        with connect(server, name="ana") as client:
            assert client.welcome["version"] == protocol.PROTOCOL_VERSION
            assert client.welcome["client"].startswith("ana#")
            assert isinstance(client.welcome["limits"], dict)
            assert client.welcome["per_client"] == 1

    def test_anonymous_clients_get_generated_names(self, server):
        with connect(server) as client:
            assert "#" in client.welcome["client"]

    def test_wrong_version_is_refused(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5)
        with sock, sock.makefile("rwb") as stream:
            stream.write(protocol.encode({"op": "hello", "version": 99}))
            stream.flush()
            reply = protocol.decode(stream.readline())
            assert reply["ev"] == "error"
            assert "version" in reply["error"]

    def test_first_frame_must_be_hello(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5)
        with sock, sock.makefile("rwb") as stream:
            stream.write(protocol.encode({"op": "stats", "id": 1}))
            stream.flush()
            reply = protocol.decode(stream.readline())
            assert reply["ev"] == "error"

    def test_second_hello_is_an_error_not_a_hangup(self, server):
        with connect(server) as client:
            client._send(protocol.hello())
            reply = client.read_frame()
            assert reply["ev"] == "error"
            # The conversation survives.
            assert client.duel("1+2").ok

    def test_max_clients_is_enforced(self, server):
        clients = [connect(server) for _ in range(4)]
        try:
            with pytest.raises(ServeError, match="server full"):
                connect(server)
        finally:
            for client in clients:
                client.close()
        # Slots free up after disconnect.
        deadline = time.monotonic() + 5
        while server.connections() and time.monotonic() < deadline:
            time.sleep(0.01)
        with connect(server) as late:
            assert late.duel("1").ok


class TestQueries:
    def test_done_query_streams_values(self, server):
        with connect(server) as client:
            result = client.duel("x[..5]")
            assert result.ok
            assert result.values == 5
            assert len(result.lines) == 5
            assert result.stats is not None

    def test_parse_error_is_an_error_terminal(self, server):
        with connect(server) as client:
            result = client.duel("x[")
            assert result.outcome == "error"
            assert result.error

    def test_fault_is_a_faulted_terminal(self, server):
        with connect(server) as client:
            result = client.duel("*(int*)0")
            assert result.outcome == "faulted"
            assert "memory" in result.error.lower()

    def test_truncation_ships_partials_and_diagnostic(self, server):
        with connect(server) as client:
            client.limits("lines", 10)
            result = client.duel("x[..50]")
            assert result.outcome == "truncated"
            assert result.kind == "lines"
            assert len(result.lines) == 10
            assert "stopped" in result.diagnostic

    def test_write_queries_do_not_leak_between_queries(self, server):
        with connect(server) as client:
            before = client.duel("x[0]").lines
            assert client.duel("x[0] = 31337").ok
            assert client.duel("x[0]").lines == before

    def test_alias_listing_over_the_wire(self, server):
        with connect(server) as client:
            assert client.duel("t := 40 + 2").ok
            aliases = client.aliases()
            assert aliases.get("t") == "42"

    def test_stats_frame_has_three_scopes(self, server):
        with connect(server) as client:
            client.duel("x[..3]")
            stats = client.stats()
            assert stats["client"]["queries"] >= 1
            assert stats["server"]["clients"] == 1
            assert "steps" in stats["query"]


class TestCancel:
    def test_cancel_mid_query_keeps_partials(self, server):
        with connect(server) as client:
            # Default limits stop a runaway in well under a second;
            # raise the line budget so the cancel is what ends it.
            client.limits("lines", 1_000_000)
            request_id = client.start("x[(1..) % 100]")
            got_some = threading.Event()
            lines = []

            def on_line(line):
                lines.append(line)
                if len(lines) >= 64:
                    got_some.set()

            collector = {}

            def collect():
                collector["result"] = client.collect(request_id,
                                                     on_line=on_line)

            thread = threading.Thread(target=collect)
            thread.start()
            assert got_some.wait(timeout=15)
            client.cancel(request_id)
            thread.join(timeout=15)
            assert not thread.is_alive()
            result = collector["result"]
            assert result.outcome == "cancelled"
            assert result.kind == "cancel"
            assert len(result.lines) >= 64
            assert "interrupted" in result.diagnostic

    def test_cancel_unknown_request_acks_not_found(self, server):
        with connect(server) as client:
            client._send({"op": "cancel", "id": 50, "target": 12345})
            reply = client.read_frame()
            assert reply["ev"] == "cancel"
            assert reply["found"] is False


class TestAdmission:
    def test_per_client_cap_rejects_busy(self, server):
        with connect(server) as client:
            client.limits("lines", 1_000_000)
            first = client.start("x[(1..) % 100]")
            second = client.start("1+1")
            # The second must be rejected while the first runs.
            rejection = None
            while rejection is None:
                frame = client.read_frame()
                if frame.get("id") == second \
                        and frame.get("ev") == "rejected":
                    rejection = frame
            assert rejection["reason"] == "busy"
            client.cancel(first)
            assert client.collect(first).outcome == "cancelled"

    def test_overload_rejects_not_hangs(self):
        server = DuelServer(workloads.big_array(100), workers=1,
                            queue_depth=1, max_clients=16, per_client=4,
                            drain_timeout=5.0)
        server.start()
        clients = []
        try:
            # Pin the single worker on a long-running query.
            runner = DuelClient(port=server.port, timeout=10.0)
            clients.append(runner)
            runner.limits("lines", 1_000_000)
            running = runner.start("x[(1..) % 100]")
            deadline = time.monotonic() + 5
            while not (server.inflight() == 1 and server.queued() == 0) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.inflight() == 1 and server.queued() == 0
            # Fill the depth-1 queue...
            filler = DuelClient(port=server.port, timeout=10.0)
            clients.append(filler)
            filler.start("x[..3]")
            deadline = time.monotonic() + 5
            while server.queued() == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.queued() == 1
            # ...and overflow it: explicit rejection, never a hang.
            overflow = DuelClient(port=server.port, timeout=10.0)
            clients.append(overflow)
            result = overflow.duel("x[..3]")
            assert result.outcome == "rejected"
            assert result.reason == "overloaded"
            assert server.rejected >= 1
            # Unpin: the runner cancels, the filler then completes.
            runner.cancel(running)
            assert runner.collect(running).outcome == "cancelled"
            assert filler.collect(1).ok
        finally:
            for client in clients:
                client.close()
            server.stop()

    def test_rejected_during_shutdown(self, server):
        with connect(server) as client:
            server._stopping = True
            try:
                result = client.duel("1")
                assert result.outcome == "rejected"
                assert result.reason == "shutting down"
            finally:
                server._stopping = False


class TestLifecycle:
    def test_disconnect_cancels_inflight_queries(self, server):
        client = connect(server)
        client.limits("lines", 1_000_000)
        client.start("x[(1..) % 100]")
        deadline = time.monotonic() + 5
        while server.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        client.close()
        deadline = time.monotonic() + 10
        while server.inflight() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.inflight() == 0

    def test_session_state_dies_with_the_connection(self, server):
        with connect(server, name="ghost") as client:
            assert client.duel("g := 7").ok
        with connect(server, name="ghost") as client:
            assert client.aliases() == {}

    def test_stop_sends_bye_and_refuses_new_connections(self):
        server = DuelServer(workloads.big_array(10), workers=1,
                            queue_depth=4, drain_timeout=5.0)
        server.start()
        client = DuelClient(port=server.port, timeout=10.0)
        try:
            assert client.duel("x[0]").ok
            server.stop()
            frame = client.read_frame()
            assert frame == {"ev": "bye", "reason": "server shutdown"}
        finally:
            client.close()

    def test_metrics_counters_track_outcomes(self, server):
        metrics = server.metrics
        with connect(server) as client:
            client.duel("x[..3]")
            client.duel("x[")
        assert metrics.counter("serve_connections_total").value >= 1
        assert metrics.counter("serve_queries_total").value >= 2
        assert metrics.counter("serve_outcome_done_total").value >= 1
        assert metrics.counter("serve_outcome_error_total").value >= 1


class TestConsole:
    def test_expr_batch_runs_and_exits_zero(self, server, capsys):
        from repro.serve import client as console
        status = console.main(["--port", str(server.port),
                               "-e", "x[..3]"])
        captured = capsys.readouterr()
        assert status == 0
        assert "x[0] = " in captured.out

    def test_interrupt_at_prompt_exits_cleanly(self, server, capsys,
                                               monkeypatch):
        from repro.serve import client as console

        class _InterruptedStdin:
            def isatty(self):
                return False

            def __iter__(self):
                raise KeyboardInterrupt

        monkeypatch.setattr("sys.stdin", _InterruptedStdin())
        status = console.main(["--port", str(server.port)])
        assert status == 0


class TestAccessesOp:
    @pytest.fixture
    def stat_server(self):
        from repro.obs.statements import StatementStats
        booted = DuelServer(workloads.big_array(1000), workers=2,
                            metrics=MetricsRegistry(),
                            statements=StatementStats(),
                            drain_timeout=5.0)
        booted.start()
        yield booted
        booted.stop()

    def test_accesses_returns_a_classified_profile(self, stat_server):
        with connect(stat_server) as client:
            reply = client.accesses("x[..1000] !=? 0")
        assert reply["ev"] == "accesses"
        assert reply["outcome"] == "done"
        profile = reply["profile"]
        assert profile["pattern"] == "sequential"
        assert profile["reads"] >= 1000
        assert profile["unique_pages"] > 1
        assert reply["fingerprint"]
        # The advisor sweeps at least two page sizes.
        page_sizes = {entry["page_size"] for entry in reply["advisor"]}
        assert len(page_sizes) >= 2

    def test_accesses_suppresses_value_frames(self, stat_server):
        with connect(stat_server) as client:
            request_id = client._take_id()
            client._send({"op": "accesses", "id": request_id,
                          "text": "x[..50]"})
            frames = []
            while True:
                frame = client.read_frame()
                frames.append(frame)
                if frame.get("ev") != "value":
                    break
        assert [f["ev"] for f in frames] == ["accesses"]
        assert frames[0]["values"] == 50

    def test_accesses_reports_compile_errors(self, stat_server):
        with connect(stat_server) as client:
            reply = client.accesses("x[")
        assert reply["outcome"] == "error"
        assert "profile" not in reply
        assert reply["error"]

    def test_accesses_counted_in_health(self, stat_server):
        with connect(stat_server) as client:
            client.accesses("x[..10]")
            health = client.health()
        assert health["accesses"]["served"] == 1

    def test_accesses_feeds_the_statements_table(self, stat_server):
        with connect(stat_server) as client:
            client.accesses("x[..1000] !=? 0")
            reply = client.statements(by="reads_per_value")
        (row,) = reply["rows"]
        assert row["profiles"] == 1
        assert row["pattern"] == "sequential"
        assert row["reads_per_value"] > 0

    def test_statements_orders_by_reads_over_the_wire(self, stat_server):
        with connect(stat_server) as client:
            client.duel("x[..100]")
            client.accesses("x[..1000] !=? 0")
            reply = client.statements(by="reads")
        reads = [row["reads"] for row in reply["rows"]]
        assert reads == sorted(reads, reverse=True)
        assert len(reads) == 2

    def test_malformed_accesses_is_rejected(self, stat_server):
        with connect(stat_server) as client:
            client._send({"op": "accesses", "id": 9})
            reply = client.read_frame()
        assert reply["ev"] == "error"
        assert "text" in reply["error"]
