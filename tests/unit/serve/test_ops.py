"""The duel-top ops console: frame rendering and the live --once path."""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.bench import workloads
from repro.obs.metrics import MetricsRegistry
from repro.obs.statements import StatementStats
from repro.serve import ops
from repro.serve.server import DuelServer


def sample_health(**overrides):
    health = {
        "status": "ok",
        "breaker": {"state": "closed", "threshold": 5,
                    "window_s": 30.0, "cooldown_s": 10.0,
                    "trips": 0, "rejections": 0},
        "sessions": {"active": 3, "parked": 1, "clients": 3,
                     "inflight": 2, "queued": 0},
        "watchdog": {"last_sweep_age_s": 0.4, "reaped": 0,
                     "hard_cancels": 0, "workers_lost": 0},
        "served": 120, "rejected": 2,
        "slow_queries": [],
    }
    health.update(overrides)
    return health


def sample_statements():
    stats = StatementStats()
    stats.record("abcd", "x[..?] >? ?", outcome="done", values=4,
                 wall_ms=12.0)
    reply = {"ev": "statements", "enabled": True,
             "rows": stats.snapshot()}
    reply.update(stats.state())
    return reply


class TestRender:
    def test_header_and_subsystems(self):
        frame = ops.render(sample_health(), sample_statements(),
                           "127.0.0.1:9999")
        assert "duel-top — 127.0.0.1:9999 — ok" in frame
        assert "served 120" in frame
        assert "3 active, 1 parked" in frame
        assert "breaker:  closed" in frame
        assert "watchdog: swept 0.4s ago" in frame
        assert "x[..?] >? ?" in frame
        assert "slow queries: none" in frame

    def test_journal_and_traces_render_when_present(self):
        health = sample_health(journal={"lsn": 42, "segments": 2,
                                        "checkpoints": 3},
                               traces_exported=17)
        frame = ops.render(health, sample_statements(), "h:1")
        assert "journal:  lsn 42, 2 segment(s), 3 checkpoint(s)" in frame
        assert "traces:   17 exported" in frame

    def test_stateless_server_omits_journal_line(self):
        frame = ops.render(sample_health(), sample_statements(), "h:1")
        assert "journal:" not in frame

    def test_slow_query_tail(self):
        slow = [{"trace_id": "t1", "wall_ms": 812.5, "outcome": "done",
                 "text": "x[..100000] >? 5"}]
        frame = ops.render(sample_health(slow_queries=slow),
                           sample_statements(), "h:1")
        assert "812.5ms" in frame
        assert "trace=t1" in frame
        assert "x[..100000] >? 5" in frame

    def test_disabled_statements(self):
        frame = ops.render(sample_health(),
                           {"enabled": False, "rows": []}, "h:1")
        assert "statement statistics disabled" in frame

    def test_never_swept_watchdog(self):
        health = sample_health(
            watchdog={"last_sweep_age_s": None, "reaped": 0,
                      "hard_cancels": 0, "workers_lost": 0})
        frame = ops.render(health, sample_statements(), "h:1")
        assert "swept never" in frame

    def test_render_tolerates_sparse_payloads(self):
        # A degraded or ancient server may omit whole sections; the
        # console must render something rather than crash.
        frame = ops.render({}, {}, "h:1")
        assert "duel-top" in frame


@pytest.fixture
def server():
    booted = DuelServer(workloads.big_array(100), workers=2,
                        queue_depth=4, max_clients=4, per_client=1,
                        metrics=MetricsRegistry(),
                        statements=StatementStats(), drain_timeout=5.0)
    booted.start()
    yield booted
    booted.stop()


class TestOnce:
    def test_once_against_live_server(self, server):
        from repro.serve.client import DuelClient
        with DuelClient(port=server.port, timeout=10.0) as client:
            client.duel("x[..5]")
            client.duel("x[..7]")
        out = io.StringIO()
        with redirect_stdout(out):
            status = ops.main(["--port", str(server.port), "--once"])
        assert status == 0
        frame = out.getvalue()
        assert "duel-top" in frame
        assert "— ok" in frame
        assert "top shapes by total_ms" in frame
        # The two reads folded into one canonical shape.
        assert frame.count("(name x)") == 1

    def test_once_orders_by_calls(self, server):
        out = io.StringIO()
        with redirect_stdout(out):
            status = ops.main(["--port", str(server.port), "--once",
                               "--by", "calls"])
        assert status == 0
        assert "top shapes by calls" in out.getvalue()

    def test_unreachable_server_exits_one(self):
        err = io.StringIO()
        with redirect_stderr(err):
            status = ops.main(["--port", "1", "--once"])
        assert status == 1
        assert "cannot reach" in err.getvalue()


def profiled_statements():
    reply = sample_statements()
    reply["rows"] = [dict(row, profiles=3, pattern="sequential",
                          page_locality=15.9, reread_ratio=0.42,
                          pages_per_call=63.0, reads=1234,
                          reads_per_value=617.0)
                     for row in reply["rows"]]
    return reply


class TestLocalityPanel:
    def test_no_profiles_yet(self):
        lines = ops.locality_panel(sample_health(), sample_statements())
        assert lines[0].startswith("locality: 0 accesses op(s)")
        assert "no profiled shapes yet" in lines[1]

    def test_profiled_rows_render(self):
        health = sample_health(accesses={"served": 4, "exported": 2,
                                         "sample": 8})
        lines = ops.locality_panel(health, profiled_statements())
        text = "\n".join(lines)
        assert "locality: 4 accesses op(s)" in text
        assert "2 profile(s) exported (1-in-8 sampling)" in text
        assert "sequential" in text
        assert "617.0" in text
        assert "x[..?] >? ?" in text

    def test_rows_sorted_by_reads_and_limited(self):
        reply = sample_statements()
        reply["rows"] = [
            {"text": f"q{i}", "profiles": 1, "pattern": "random",
             "page_locality": 1.0, "reread_ratio": 0.0,
             "pages_per_call": 1.0, "reads": i, "values": 1,
             "reads_per_value": float(i)}
            for i in range(12)]
        lines = ops.locality_panel(sample_health(), reply, limit=3)
        assert "q11" in lines[2]
        assert len(lines) == 2 + 3

    def test_panel_appears_in_rendered_frame(self):
        frame = ops.render(sample_health(), profiled_statements(), "h:1")
        assert "locality:" in frame
        assert "sequential" in frame


class TestJsonDoc:
    def test_document_shape(self):
        doc = ops.json_doc(sample_health(accesses={"served": 1}),
                           profiled_statements(), "h:1", by="reads")
        assert doc["target"] == "h:1"
        assert doc["status"] == "ok"
        assert doc["by"] == "reads"
        assert doc["health"]["served"] == 120
        assert doc["locality"]["accesses"] == {"served": 1}
        assert doc["locality"]["shapes"][0]["pattern"] == "sequential"

    def test_unprofiled_shapes_excluded_from_locality(self):
        doc = ops.json_doc(sample_health(), sample_statements(), "h:1")
        assert doc["locality"]["shapes"] == []
        assert doc["statements"]["rows"]

    def test_wire_envelope_keys_stripped(self):
        doc = ops.json_doc({"ev": "health", "id": 4, "status": "ok"},
                           {"ev": "statements", "id": 5, "rows": []},
                           "h:1")
        assert "ev" not in doc["health"]
        assert "id" not in doc["statements"]


class TestJsonOnce:
    def test_json_once_against_live_server(self, server):
        import json as jsonlib

        from repro.serve.client import DuelClient
        with DuelClient(port=server.port, timeout=10.0) as client:
            client.accesses("x[..100] !=? 0")
        out = io.StringIO()
        with redirect_stdout(out):
            status = ops.main(["--port", str(server.port), "--once",
                               "--json", "--by", "reads"])
        assert status == 0
        doc = jsonlib.loads(out.getvalue())
        assert doc["status"] == "ok"
        assert doc["locality"]["accesses"]["served"] == 1
        (shape,) = doc["locality"]["shapes"]
        assert shape["pattern"] == "sequential"

    def test_json_requires_once(self, capsys):
        with pytest.raises(SystemExit):
            ops.main(["--port", "1", "--json"])
        assert "--json requires --once" in capsys.readouterr().err
