"""The duel-top ops console: frame rendering and the live --once path."""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.bench import workloads
from repro.obs.metrics import MetricsRegistry
from repro.obs.statements import StatementStats
from repro.serve import ops
from repro.serve.server import DuelServer


def sample_health(**overrides):
    health = {
        "status": "ok",
        "breaker": {"state": "closed", "threshold": 5,
                    "window_s": 30.0, "cooldown_s": 10.0,
                    "trips": 0, "rejections": 0},
        "sessions": {"active": 3, "parked": 1, "clients": 3,
                     "inflight": 2, "queued": 0},
        "watchdog": {"last_sweep_age_s": 0.4, "reaped": 0,
                     "hard_cancels": 0, "workers_lost": 0},
        "served": 120, "rejected": 2,
        "slow_queries": [],
    }
    health.update(overrides)
    return health


def sample_statements():
    stats = StatementStats()
    stats.record("abcd", "x[..?] >? ?", outcome="done", values=4,
                 wall_ms=12.0)
    reply = {"ev": "statements", "enabled": True,
             "rows": stats.snapshot()}
    reply.update(stats.state())
    return reply


class TestRender:
    def test_header_and_subsystems(self):
        frame = ops.render(sample_health(), sample_statements(),
                           "127.0.0.1:9999")
        assert "duel-top — 127.0.0.1:9999 — ok" in frame
        assert "served 120" in frame
        assert "3 active, 1 parked" in frame
        assert "breaker:  closed" in frame
        assert "watchdog: swept 0.4s ago" in frame
        assert "x[..?] >? ?" in frame
        assert "slow queries: none" in frame

    def test_journal_and_traces_render_when_present(self):
        health = sample_health(journal={"lsn": 42, "segments": 2,
                                        "checkpoints": 3},
                               traces_exported=17)
        frame = ops.render(health, sample_statements(), "h:1")
        assert "journal:  lsn 42, 2 segment(s), 3 checkpoint(s)" in frame
        assert "traces:   17 exported" in frame

    def test_stateless_server_omits_journal_line(self):
        frame = ops.render(sample_health(), sample_statements(), "h:1")
        assert "journal:" not in frame

    def test_slow_query_tail(self):
        slow = [{"trace_id": "t1", "wall_ms": 812.5, "outcome": "done",
                 "text": "x[..100000] >? 5"}]
        frame = ops.render(sample_health(slow_queries=slow),
                           sample_statements(), "h:1")
        assert "812.5ms" in frame
        assert "trace=t1" in frame
        assert "x[..100000] >? 5" in frame

    def test_disabled_statements(self):
        frame = ops.render(sample_health(),
                           {"enabled": False, "rows": []}, "h:1")
        assert "statement statistics disabled" in frame

    def test_never_swept_watchdog(self):
        health = sample_health(
            watchdog={"last_sweep_age_s": None, "reaped": 0,
                      "hard_cancels": 0, "workers_lost": 0})
        frame = ops.render(health, sample_statements(), "h:1")
        assert "swept never" in frame

    def test_render_tolerates_sparse_payloads(self):
        # A degraded or ancient server may omit whole sections; the
        # console must render something rather than crash.
        frame = ops.render({}, {}, "h:1")
        assert "duel-top" in frame


@pytest.fixture
def server():
    booted = DuelServer(workloads.big_array(100), workers=2,
                        queue_depth=4, max_clients=4, per_client=1,
                        metrics=MetricsRegistry(),
                        statements=StatementStats(), drain_timeout=5.0)
    booted.start()
    yield booted
    booted.stop()


class TestOnce:
    def test_once_against_live_server(self, server):
        from repro.serve.client import DuelClient
        with DuelClient(port=server.port, timeout=10.0) as client:
            client.duel("x[..5]")
            client.duel("x[..7]")
        out = io.StringIO()
        with redirect_stdout(out):
            status = ops.main(["--port", str(server.port), "--once"])
        assert status == 0
        frame = out.getvalue()
        assert "duel-top" in frame
        assert "— ok" in frame
        assert "top shapes by total_ms" in frame
        # The two reads folded into one canonical shape.
        assert frame.count("(name x)") == 1

    def test_once_orders_by_calls(self, server):
        out = io.StringIO()
        with redirect_stdout(out):
            status = ops.main(["--port", str(server.port), "--once",
                               "--by", "calls"])
        assert status == 0
        assert "top shapes by calls" in out.getvalue()

    def test_unreachable_server_exits_one(self):
        err = io.StringIO()
        with redirect_stderr(err):
            status = ops.main(["--port", "1", "--once"])
        assert status == 1
        assert "cannot reach" in err.getvalue()
