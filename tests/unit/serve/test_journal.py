"""Unit tests for the write-ahead journal and state store."""

import json
import os
import struct
import threading
import zlib

import pytest

from repro.serve.journal import (CHECKPOINT_MAGIC, FsyncPolicy, Journal,
                                 JournalError, StateStore, fold_sessions)


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / "journal"), fsync="off")


def records_of(journal, after=0):
    return [record for _, record in journal.replay(after)]


class TestFsyncPolicy:
    def test_parse_always(self):
        assert FsyncPolicy.parse("always").mode == "always"

    def test_parse_off(self):
        assert FsyncPolicy.parse("off").mode == "off"
        assert FsyncPolicy.parse("").mode == "off"

    def test_parse_interval(self):
        policy = FsyncPolicy.parse("interval:2.5")
        assert policy.mode == "interval"
        assert policy.interval == 2.5

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            FsyncPolicy.parse("sometimes")
        with pytest.raises(ValueError):
            FsyncPolicy.parse("interval:zero")
        with pytest.raises(ValueError):
            FsyncPolicy.parse("interval:-1")

    def test_due(self):
        assert FsyncPolicy.parse("always").due(0.0, 0.0)
        assert not FsyncPolicy.parse("off").due(100.0, 0.0)
        interval = FsyncPolicy.parse("interval:1.0")
        assert not interval.due(10.5, 10.0)
        assert interval.due(11.0, 10.0)


class TestAppendReplay:
    def test_append_assigns_monotone_lsns(self, journal):
        lsns = [journal.append("sess_open", key=f"k{i}")
                for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert journal.lsn == 5

    def test_replay_round_trips_fields(self, journal):
        journal.append("write", key="k", text="x[0] = 1", outcome="done")
        (record,) = records_of(journal)
        assert record["k"] == "write"
        assert record["text"] == "x[0] = 1"
        assert record["outcome"] == "done"

    def test_replay_after_lsn_filters(self, journal):
        for i in range(4):
            journal.append("sess_open", key=f"k{i}")
        assert [r["key"] for r in records_of(journal, after=2)] \
            == ["k2", "k3"]

    def test_unknown_kind_rejected(self, journal):
        with pytest.raises(ValueError):
            journal.append("sess_explode", key="k")

    def test_reopen_continues_lsns(self, tmp_path):
        path = str(tmp_path / "journal")
        first = Journal(path, fsync="off")
        first.append("sess_open", key="a")
        first.append("sess_open", key="b")
        first.close()
        second = Journal(path, fsync="off")
        assert second.lsn == 2
        assert second.append("sess_open", key="c") == 3
        assert [r["key"] for r in records_of(second)] == ["a", "b", "c"]

    def test_thread_safe_appends(self, journal):
        def hammer(start):
            for i in range(50):
                journal.append("idem", key="k", token=f"t{start}-{i}",
                               result={})
        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = records_of(journal)
        assert len(records) == 200
        assert journal.lsn == 200
        # File order is lsn order.
        lsns = [lsn for lsn, _ in journal.replay()]
        assert lsns == sorted(lsns)


class TestRotation:
    def test_rotation_by_size(self, tmp_path):
        journal = Journal(str(tmp_path / "j"), fsync="off",
                          segment_bytes=256)
        for i in range(20):
            journal.append("sess_open", key=f"key-{i:04d}")
        assert journal.rotations >= 1
        assert len(journal.segments()) >= 2
        # Replay spans all segments, in order.
        assert [r["key"] for r in records_of(journal)] \
            == [f"key-{i:04d}" for i in range(20)]

    def test_explicit_rotate_returns_high_water_mark(self, journal):
        journal.append("sess_open", key="a")
        mark = journal.rotate()
        assert mark == 1
        journal.append("sess_open", key="b")
        assert len(journal.segments()) == 2
        # Everything after the mark lives in the new segment.
        assert [r["key"] for r in records_of(journal, after=mark)] == ["b"]

    def test_truncate_sealed_keeps_active(self, journal):
        journal.append("sess_open", key="old")
        journal.rotate()
        journal.append("sess_open", key="new")
        removed = journal.truncate_sealed()
        assert removed == 1
        assert [r["key"] for r in records_of(journal)] == ["new"]


class TestTornTail:
    def corrupt(self, journal, data):
        journal.close()
        _, path = journal.segments()[-1]
        with open(path, "ab") as handle:
            handle.write(data)
        return path

    def test_short_header_truncated(self, journal):
        journal.append("sess_open", key="good")
        path = self.corrupt(journal, b"\x05")
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.recovered_torn_tail
        assert [r["key"] for r in records_of(reopened)] == ["good"]

    def test_short_payload_truncated(self, journal):
        journal.append("sess_open", key="good")
        path = self.corrupt(journal,
                            struct.pack("<II", 100, 0) + b"short")
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.recovered_torn_tail
        assert [r["key"] for r in records_of(reopened)] == ["good"]

    def test_bad_crc_truncated(self, journal):
        journal.append("sess_open", key="good")
        body = b'{"k":"sess_open","lsn":2}'
        frame = struct.pack("<II", len(body),
                            zlib.crc32(body) ^ 0xFFFF) + body
        path = self.corrupt(journal, frame)
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.recovered_torn_tail
        assert [r["key"] for r in records_of(reopened)] == ["good"]

    def test_unparseable_json_truncated(self, journal):
        journal.append("sess_open", key="good")
        body = b"not json at all!!"
        frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
        path = self.corrupt(journal, frame)
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.recovered_torn_tail
        assert [r["key"] for r in records_of(reopened)] == ["good"]

    def test_append_continues_after_torn_tail(self, journal):
        journal.append("sess_open", key="a")
        path = self.corrupt(journal, b"\xff\xff\xff")
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.append("sess_open", key="b") == 2
        assert [r["key"] for r in records_of(reopened)] == ["a", "b"]

    def test_mid_record_kill_simulated_by_tear_tail(self, journal):
        from repro.serve.chaos import tear_tail
        journal.append("sess_open", key="a")
        journal.append("sess_open", key="b")
        journal.close()
        _, path = journal.segments()[-1]
        tear_tail(path, 3)            # last record loses its tail
        reopened = Journal(os.path.dirname(path), fsync="off")
        assert reopened.recovered_torn_tail
        assert [r["key"] for r in records_of(reopened)] == ["a"]

    def test_empty_journal_is_fine(self, tmp_path):
        journal = Journal(str(tmp_path / "j"), fsync="off")
        assert journal.lsn == 0
        assert records_of(journal) == []
        assert not journal.recovered_torn_tail


class TestFsyncBehavior:
    def test_always_syncs_every_append(self, tmp_path):
        journal = Journal(str(tmp_path / "j"), fsync="always")
        for _ in range(3):
            journal.append("sess_open", key="k")
        assert journal.fsyncs >= 3

    def test_off_never_syncs_on_append(self, tmp_path):
        journal = Journal(str(tmp_path / "j"), fsync="off")
        for _ in range(10):
            journal.append("sess_open", key="k")
        assert journal.fsyncs == 0

    def test_interval_syncs_sparsely(self, tmp_path):
        journal = Journal(str(tmp_path / "j"), fsync="interval:3600")
        for _ in range(10):
            journal.append("sess_open", key="k")
        # One sync at most (the first append, last_sync == 0.0).
        assert journal.fsyncs <= 1

    def test_sync_hook_runs_between_write_and_fsync(self, tmp_path):
        calls = []
        journal = Journal(str(tmp_path / "j"), fsync="off",
                          sync_hook=lambda: calls.append(1))
        journal.append("sess_open", key="k")
        assert calls == [1]


class TestPoison:
    def test_poisoned_appends_are_noops(self, journal):
        journal.append("sess_open", key="a")
        journal.poison()
        assert journal.append("sess_open", key="b") == 0
        reopened = Journal(journal.directory, fsync="off")
        assert [r["key"] for r in records_of(reopened)] == ["a"]

    def test_close_after_poison_is_safe(self, journal):
        journal.poison()
        journal.close()          # must not raise


class TestStateStore:
    def test_checkpoint_round_trip(self, tmp_path):
        store = StateStore(str(tmp_path / "state"), fsync="off")
        payload = {"lsn": 7, "snapshot": b"blob", "sessions": [1, 2]}
        store.write_checkpoint(7, payload)
        assert store.load_checkpoint() == (7, payload)

    def test_newer_checkpoint_replaces_older(self, tmp_path):
        store = StateStore(str(tmp_path / "state"), fsync="off")
        store.write_checkpoint(3, {"lsn": 3})
        store.write_checkpoint(9, {"lsn": 9})
        assert store.load_checkpoint() == (9, {"lsn": 9})
        # The superseded file was pruned.
        assert len(store.checkpoint_files()) == 1

    def test_corrupt_checkpoint_falls_back(self, tmp_path):
        store = StateStore(str(tmp_path / "state"), fsync="off")
        store.write_checkpoint(3, {"lsn": 3})
        path = os.path.join(store.checkpoint_dir, "ckpt-000000000009.snap")
        with open(path, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC + b"garbage garbage")
        assert store.load_checkpoint() == (3, {"lsn": 3})

    def test_missing_magic_skipped(self, tmp_path):
        store = StateStore(str(tmp_path / "state"), fsync="off")
        path = os.path.join(store.checkpoint_dir, "ckpt-000000000001.snap")
        with open(path, "wb") as handle:
            handle.write(b"who knows")
        assert store.load_checkpoint() is None

    def test_no_checkpoint_is_none(self, tmp_path):
        store = StateStore(str(tmp_path / "state"), fsync="off")
        assert store.load_checkpoint() is None

    def test_unusable_dir_raises_journal_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("i am a file")
        with pytest.raises(JournalError):
            StateStore(str(blocker / "nested"), fsync="off")


class TestFoldSessions:
    def fold(self, *records, state=None):
        numbered = list(enumerate(records, start=1))
        return fold_sessions(state if state is not None else {},
                             numbered)

    def test_open_limit_alias_idem(self):
        state, writes = self.fold(
            {"k": "sess_open", "key": "A", "client": "c1",
             "limits": {"steps": 100}},
            {"k": "sess_limit", "key": "A", "name": "deadline_ms",
             "value": 50},
            {"k": "sess_alias", "key": "A", "text": "t := x[0]"},
            {"k": "idem", "key": "A", "token": "tok",
             "result": {"outcome": {"ev": "done"}}},
        )
        assert writes == []
        entry = state["A"]
        assert entry["client_id"] == "c1"
        assert entry["limits"] == {"steps": 100, "deadline_ms": 50}
        assert entry["aliases"] == ["t := x[0]"]
        assert entry["idem"]["tok"]["outcome"]["ev"] == "done"
        assert entry["closed"] is False

    def test_close_marks_not_drops(self):
        state, _ = self.fold(
            {"k": "sess_open", "key": "A", "client": "c1"},
            {"k": "sess_close", "key": "A"},
        )
        assert state["A"]["closed"] is True

    def test_writes_kept_in_order(self):
        _, writes = self.fold(
            {"k": "sess_open", "key": "A", "client": "c1"},
            {"k": "write", "key": "A", "text": "x[0] = 1",
             "outcome": "done"},
            {"k": "write", "key": "A", "text": "x[0] = 2",
             "outcome": "done"},
        )
        assert [w["text"] for w in writes] == ["x[0] = 1", "x[0] = 2"]

    def test_idempotent_double_application(self):
        records = [
            {"k": "sess_open", "key": "A", "client": "c1",
             "limits": {"steps": 9}},
            {"k": "sess_alias", "key": "A", "text": "t := x[0]"},
            {"k": "idem", "key": "A", "token": "tok", "result": {}},
        ]
        state, _ = self.fold(*records)
        # The same records applied again (checkpoint double coverage)
        # leave identical state.
        again, _ = fold_sessions(state, list(enumerate(records, 1)))
        assert again["A"]["aliases"] == ["t := x[0]"]
        assert again["A"]["limits"] == {"steps": 9}

    def test_records_for_unknown_sessions_ignored(self):
        state, writes = self.fold(
            {"k": "sess_limit", "key": "ghost", "name": "steps",
             "value": 1},
            {"k": "sess_alias", "key": "ghost", "text": "t := 1"},
            {"k": "idem", "key": "ghost", "token": "t", "result": {}},
            {"k": "sess_close", "key": "ghost"},
        )
        assert state == {}
        assert writes == []

    def test_resume_updates_client_id(self):
        state, _ = self.fold(
            {"k": "sess_open", "key": "A", "client": "c1"},
            {"k": "sess_resume", "key": "A", "client": "c2"},
        )
        assert state["A"]["client_id"] == "c2"
