"""Checkpoint/rollback round trips for the simulated inferior."""

import pytest

from repro.core.session import DuelSession
from repro.debugger import Debugger
from repro.debugger.debugger import StopKind
from repro.target import builder, snapshot
from repro.target.interface import SimulatorBackend
from repro.target.program import TargetProgram

# The watchpoints_assertions example scenario: a stack machine whose
# 9th push writes stack[8], clobbering the adjacent global sp.
STACK_MACHINE = r"""
int stack[8];
int sp = 0;
int pushes = 0, pops = 0;

void push(int v) {
    if (sp <= 8) {          /* BUG: allows stack[8] */
        stack[sp] = v;
        sp++;
        pushes++;
    }
}

int main(void) {
    int i;
    for (i = 1; i <= 9; i++)
        push(i * i);
    return pushes;
}
"""


def test_snapshot_roundtrip_watchpoints_scenario():
    """take() before the buggy run, restore() after: the corruption
    (stack[8] aliasing sp) is fully rewound."""
    stops = []

    def on_stop(event, session):
        stops.append(event)
        return "abort" if event.kind is StopKind.ASSERTION else None

    dbg = Debugger(STACK_MACHINE, on_stop=on_stop)
    dbg.assert_always("sp <= 8")
    checkpoint = dbg.checkpoint()

    assert dbg.session.eval_values("sp") == [0]
    dbg.run()
    # The overflow happened and the assertion caught it mid-run.
    assert stops and stops[-1].kind is StopKind.ASSERTION
    assert dbg.session.eval_values("sp")[0] == 81     # clobbered by 9*9
    assert dbg.session.eval_values("stack[7]") == [64]

    dbg.restore(checkpoint)
    assert dbg.session.eval_values("sp") == [0]
    assert dbg.session.eval_values("pushes") == [0]
    assert dbg.session.eval_values("stack[..8]") == [0] * 8
    # The rewound program runs again, identically.
    dbg.run()
    assert dbg.session.eval_values("sp")[0] == 81


def test_snapshot_restores_heap_and_globals(program):
    builder.int_array(program, "x", [1, 2, 3])
    before_bytes = program.heap.bytes_allocated
    snap = snapshot.take(program)

    block = program.alloc(64)
    program.memory.write(block, b"scratch")
    program.write_value(program.lookup("x").address,
                        program.parse_type("int"), 99)
    builder.int_array(program, "y", [7])
    assert program.lookup("y") is not None

    snapshot.restore(program, snap)
    assert program.heap.bytes_allocated == before_bytes
    assert program.read_value(program.lookup("x").address,
                              program.parse_type("int")) == 1
    assert program.lookup("y") is None
    # The data-segment bump pointer rewound: redefining lands where
    # the rolled-back definition did.
    again = builder.int_array(program, "y", [7])
    assert program.read_value(again.address,
                              program.parse_type("int")) == 7


def test_snapshot_restores_output_and_interning(program):
    snap = snapshot.take(program)
    program.call("printf", [program.intern_string("hello %d\n"), 7])
    assert "".join(program.output) == "hello 7\n"
    interned = program.intern_string("later")

    snapshot.restore(program, snap)
    assert program.output == []
    # Interning was rewound too; the string is re-placed afresh.
    assert program.memory.is_mapped(interned) or True
    readdress = program.intern_string("later")
    assert program.read_cstring(readdress) == "later"


def test_snapshot_restores_types_and_functions(program):
    snap = snapshot.take(program)
    program.declare("struct pt { int x; int y; };")
    program.define_function("twice", "int twice(int v);",
                            lambda prog, v: 2 * v)
    assert program.call("twice", [21]) == 42
    assert program.types.structs.get("pt") is not None

    snapshot.restore(program, snap)
    assert program.types.structs.get("pt") is None
    with pytest.raises(Exception):
        program.call("twice", [21])


class TestSerializedSnapshots:
    """Durable (byte-encoded) snapshots, the checkpoint payload."""

    def fresh(self):
        from repro.target.stdlib import install_stdlib
        p = TargetProgram()
        install_stdlib(p)
        return p

    def test_round_trip_across_program_instances(self, program):
        builder.int_array(program, "x", [5, 6, 7])
        program.call("printf", [program.intern_string("hi %d\n"), 9])
        blob = snapshot.take(program).serialize()
        assert blob.startswith(snapshot.SNAP_MAGIC)

        rebuilt = self.fresh()
        snap = snapshot.Snapshot.deserialize(blob, rebuilt)
        snapshot.restore(rebuilt, snap)
        session = DuelSession(SimulatorBackend(rebuilt))
        assert session.eval_values("x[..3]") == [5, 6, 7]
        assert "".join(rebuilt.output) == "hi 9\n"
        # The restored program is live, not a husk: writes still work.
        session.eval_lines("x[1] = 42")
        assert session.eval_values("x[1]") == [42]

    def test_functions_rebound_from_rebuilt_program(self, program):
        blob = snapshot.take(program).serialize()
        rebuilt = self.fresh()
        snap = snapshot.Snapshot.deserialize(blob, rebuilt)
        snapshot.restore(rebuilt, snap)
        # The impls came from the rebuilt program (closures do not
        # travel through the encoding), and calls go through.
        assert rebuilt.call("strlen",
                            [rebuilt.intern_string("four")]) == 4

    def test_bad_magic_rejected(self, program):
        with pytest.raises(ValueError, match="not a serialized"):
            snapshot.Snapshot.deserialize(b"NOTASNAP" + b"\0" * 16,
                                          program)

    def test_corrupt_body_rejected(self, program):
        blob = snapshot.take(program).serialize()
        mangled = blob[:len(snapshot.SNAP_MAGIC)] + b"\xff\x00garbage"
        with pytest.raises(ValueError, match="corrupt"):
            snapshot.Snapshot.deserialize(mangled, program)

    def test_unknown_function_name_rejected(self, program):
        program.define_function("vanish", "int vanish(void);",
                                lambda prog: 1)
        blob = snapshot.take(program).serialize()
        rebuilt = self.fresh()               # never defines `vanish`
        with pytest.raises(ValueError, match="vanish"):
            snapshot.Snapshot.deserialize(blob, rebuilt)


def test_session_checkpoint_is_invisible_to_later_queries():
    """A take/restore pair leaves a session's view bit-identical."""
    program = TargetProgram()
    builder.symbol_hash_table(program,
                              entries=builder.paper_hash_entries())
    session = DuelSession(SimulatorBackend(program))
    before = session.eval_lines("hash[..1024]->name")

    snap = snapshot.take(program)
    snapshot.restore(program, snap)
    assert session.eval_lines("hash[..1024]->name") == before
