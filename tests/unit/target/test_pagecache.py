"""Unit tests for the page-granular target read cache (PR 10).

Exercises :class:`~repro.target.pagecache.PageCachingBackend` against
a deterministic fake inner backend — policy validation, demand hits
and misses, single-bulk-read fills, LRU eviction, write-through
invalidation with epoch resync, foreign-epoch flushes, adaptive
prefetch on regular scans (and its absence on irregular ones), and
the region-edge fallback that keeps fault semantics byte-identical to
the uncached chain.  Also the epoch plumbing underneath: ``Memory``
bumps on every mutation, snapshots carry the epoch, restore advances
past it.
"""

import pytest

from repro.target.memory import Memory, TargetMemoryFault
from repro.target.pagecache import (DEFAULT_CAPACITY, DEFAULT_PAGE_SIZE,
                                    PageCachePolicy, PageCachingBackend,
                                    parse_policy)
from repro.target.program import TargetProgram
from repro.target import builder, snapshot


class FakeInner:
    """4 KiB of deterministic bytes at ``BASE``; outside it faults.

    Counts every inner read so tests can assert on *physical*
    traffic, and bumps the shared epoch on writes exactly like
    :class:`~repro.target.memory.Memory` does.
    """

    BASE = 0x1000
    SIZE = 4096

    def __init__(self):
        self.data = bytearray((i * 7 + 3) & 0xFF
                              for i in range(self.SIZE))
        self.epoch = 0
        self.gets = []
        self.puts = []

    def get_target_bytes(self, address, size):
        self.gets.append((address, size))
        if address < self.BASE or address + size > self.BASE + self.SIZE:
            raise TargetMemoryFault(address, size, "read", "unmapped")
        offset = address - self.BASE
        return bytes(self.data[offset:offset + size])

    def put_target_bytes(self, address, data):
        self.puts.append((address, bytes(data)))
        if address < self.BASE or \
                address + len(data) > self.BASE + self.SIZE:
            raise TargetMemoryFault(address, len(data), "write",
                                    "unmapped")
        offset = address - self.BASE
        self.data[offset:offset + len(data)] = data
        self.epoch += 1

    def reference(self, address, size):
        offset = address - self.BASE
        return bytes(self.data[offset:offset + size])


def make_cache(mode="demand", page_size=64, capacity=8):
    inner = FakeInner()
    policy = PageCachePolicy(mode=mode, page_size=page_size,
                             capacity=capacity)
    cache = PageCachingBackend(inner, policy, lambda: inner.epoch)
    return inner, cache


# -- policy validation ---------------------------------------------------

def test_policy_rejects_bad_mode():
    with pytest.raises(ValueError):
        PageCachePolicy(mode="aggressive")


@pytest.mark.parametrize("page_size", [0, 4, 100, 257])
def test_policy_rejects_bad_page_size(page_size):
    with pytest.raises(ValueError):
        PageCachePolicy(page_size=page_size)


def test_policy_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PageCachePolicy(capacity=0)


def test_parse_policy_defaults_and_normalization():
    policy = parse_policy("ADAPTIVE")
    assert policy.mode == "adaptive"
    assert policy.page_size == DEFAULT_PAGE_SIZE
    assert policy.capacity == DEFAULT_CAPACITY
    assert policy.enabled
    assert not parse_policy("off").enabled


def test_backend_refuses_off_policy():
    inner = FakeInner()
    with pytest.raises(ValueError):
        PageCachingBackend(inner, PageCachePolicy(mode="off"), lambda: 0)


# -- demand caching ------------------------------------------------------

def test_repeated_reads_hit_one_physical_read():
    inner, cache = make_cache()
    base = FakeInner.BASE
    for offset in range(0, 64, 4):
        assert cache.get_target_bytes(base + offset, 4) == \
            inner.reference(base + offset, 4)
    assert len(inner.gets) == 1          # one bulk page fill
    assert inner.gets[0] == (base, 64)   # page-aligned, page-sized
    assert cache.misses == 1
    assert cache.hits == 15
    assert cache.physical_reads == 1
    assert cache.physical_bytes == 64


def test_spanning_read_is_one_bulk_inner_read():
    inner, cache = make_cache()
    base = FakeInner.BASE
    data = cache.get_target_bytes(base + 60, 136)   # pages 0..3 of region
    assert data == inner.reference(base + 60, 136)
    assert len(inner.gets) == 1
    address, size = inner.gets[0]
    assert address == base and size == 256          # 4 pages, one read
    assert cache.misses == 1


def test_multi_page_resident_read_hits():
    inner, cache = make_cache()
    base = FakeInner.BASE
    cache.get_target_bytes(base, 256)               # fill 4 pages
    gets = len(inner.gets)
    assert cache.get_target_bytes(base + 30, 100) == \
        inner.reference(base + 30, 100)
    assert len(inner.gets) == gets                  # no new physical read
    assert cache.hits == 1


def test_lru_eviction_order():
    inner, cache = make_cache(capacity=2)
    base = FakeInner.BASE
    cache.get_target_bytes(base, 4)            # page A
    cache.get_target_bytes(base + 64, 4)       # page B
    cache.get_target_bytes(base, 4)            # touch A (B now LRU)
    cache.get_target_bytes(base + 128, 4)      # page C evicts B
    assert cache.evictions == 1
    gets = len(inner.gets)
    cache.get_target_bytes(base, 4)            # A still resident
    assert len(inner.gets) == gets
    cache.get_target_bytes(base + 64, 4)       # B was evicted: refetch
    assert len(inner.gets) == gets + 1


# -- coherence -----------------------------------------------------------

def test_own_write_invalidates_pages_without_flush():
    inner, cache = make_cache()
    base = FakeInner.BASE
    cache.get_target_bytes(base, 4)
    cache.get_target_bytes(base + 64, 4)
    cache.put_target_bytes(base + 2, b"\xAA\xBB")
    assert cache.flushes == 0                  # resynced, not flushed
    assert cache.get_target_bytes(base + 2, 2) == b"\xAA\xBB"
    assert cache.flushes == 0
    gets = len(inner.gets)
    cache.get_target_bytes(base + 64, 4)       # untouched page stayed warm
    assert len(inner.gets) == gets


def test_write_spanning_pages_invalidates_all_of_them():
    inner, cache = make_cache()
    base = FakeInner.BASE
    cache.get_target_bytes(base, 128)          # pages 0 and 1
    cache.put_target_bytes(base + 62, bytes(4))  # straddles both
    misses = cache.misses
    cache.get_target_bytes(base, 4)
    cache.get_target_bytes(base + 64, 4)
    assert cache.misses == misses + 2          # both pages refetched


def test_foreign_epoch_bump_flushes_everything():
    inner, cache = make_cache()
    base = FakeInner.BASE
    cache.get_target_bytes(base, 4)
    inner.data[0] = 0x5A
    inner.epoch += 1                           # a foreign writer
    assert cache.get_target_bytes(base, 1) == b"\x5A"
    assert cache.flushes == 1
    assert cache.stats()["epoch"] == inner.epoch


def test_invalidate_all_drops_pages_and_resyncs():
    inner, cache = make_cache()
    base = FakeInner.BASE
    cache.get_target_bytes(base, 4)
    inner.epoch += 7
    cache.invalidate_all()
    assert cache.stats()["resident_pages"] == 0
    assert cache.stats()["epoch"] == inner.epoch
    cache.get_target_bytes(base, 4)
    assert cache.flushes == 1                  # no second (lazy) flush


# -- adaptive prefetch ---------------------------------------------------

def sequential_scan(cache, base, count, stride=4, size=4):
    for index in range(count):
        cache.get_target_bytes(base + index * stride, size)


def test_adaptive_prefetches_sequential_scan():
    inner, cache = make_cache(mode="adaptive", capacity=32)
    base = FakeInner.BASE
    sequential_scan(cache, base, 512)          # 2 KiB, 32 pages' worth
    assert cache.prefetched_pages > 0
    assert cache.prefetch_hits > 0
    # Far fewer physical than logical reads, and fewer than the
    # demand policy's one-miss-per-page floor (32 pages touched).
    assert cache.physical_reads < 32
    assert cache.stats()["pattern"] == "sequential"


def test_adaptive_beats_demand_on_same_scan():
    demand_inner, demand = make_cache(mode="demand", capacity=32)
    adaptive_inner, adaptive = make_cache(mode="adaptive", capacity=32)
    sequential_scan(demand, FakeInner.BASE, 512)
    sequential_scan(adaptive, FakeInner.BASE, 512)
    assert adaptive.physical_reads < demand.physical_reads
    # Both served identical bytes.
    assert demand_inner.data == adaptive_inner.data


def test_irregular_accesses_never_prefetch():
    inner, cache = make_cache(mode="adaptive", capacity=32)
    base = FakeInner.BASE
    # A deterministic pseudo-random walk: no dominant stride.
    address = 0
    for index in range(200):
        address = (address * 1103515245 + 12345 + index) % 4000
        cache.get_target_bytes(base + address, 4)
    assert cache.stats()["pattern"] in ("random", "pointer-chase")
    assert cache.prefetched_pages == 0


def test_sparse_stride_prefetches_only_landing_pages():
    inner, cache = make_cache(mode="adaptive", page_size=64,
                              capacity=32)
    base = FakeInner.BASE
    sequential_scan(cache, base, 30, stride=128, size=4)  # 2 pages apart
    # Speculated pages are exactly where the stride lands — the gap
    # page between consecutive touches was never fetched.
    fetched_pages = set()
    for address, size in inner.gets:
        first = (address - FakeInner.BASE) // 64
        fetched_pages.update(range(first, first + max(size // 64, 1)))
    landing = {(index * 128) // 64 for index in range(80)}
    assert fetched_pages <= landing
    assert cache.prefetched_pages > 0


# -- fault semantics -----------------------------------------------------

def test_region_edge_fill_falls_back_and_serves():
    inner, cache = make_cache()
    end = FakeInner.BASE + FakeInner.SIZE
    # Last page of the region is mapped; the bulk path never pads
    # past the edge because the region end is page-aligned — so make
    # the demand itself hug the edge.
    assert cache.get_target_bytes(end - 8, 8) == inner.reference(end - 8, 8)


def test_unmapped_read_faults_like_uncached():
    inner, cache = make_cache()
    end = FakeInner.BASE + FakeInner.SIZE
    with pytest.raises(TargetMemoryFault) as caught:
        cache.get_target_bytes(end - 4, 16)    # tail unmapped
    assert caught.value.address == end - 4
    assert caught.value.size == 16
    with pytest.raises(TargetMemoryFault):
        cache.get_target_bytes(end + 1024, 4)  # fully unmapped


def test_unaligned_region_edge_serves_uncached():
    inner, cache = make_cache(page_size=512)
    # BASE is 0x1000 and SIZE 4096, both 512-aligned; shrink the live
    # window so page padding crosses the fake region's end.
    inner.SIZE = 4096 - 100
    end = FakeInner.BASE + inner.SIZE
    data = cache.get_target_bytes(end - 8, 8)
    assert data == inner.reference(end - 8, 8)
    assert cache.uncacheable >= 0              # served either way


def test_cached_bytes_match_inner_exactly():
    inner, cache = make_cache(mode="adaptive", page_size=64, capacity=4)
    base = FakeInner.BASE
    probes = [(0, 1), (63, 2), (64, 64), (100, 200), (1, 7),
              (4000, 96), (128, 1), (3000, 300), (0, 256)]
    for offset, size in probes:
        assert cache.get_target_bytes(base + offset, size) == \
            inner.reference(base + offset, size), (offset, size)


# -- the epoch substrate -------------------------------------------------

def test_memory_mutations_bump_epoch():
    memory = Memory()
    assert memory.epoch == 0
    memory.map_new("data", 0x1000, 256)
    after_map = memory.epoch
    assert after_map > 0
    memory.write(0x1000, b"\x01\x02")
    after_write = memory.epoch
    assert after_write > after_map
    memory.read(0x1000, 2)
    assert memory.epoch == after_write         # reads never bump
    memory.unmap("data")
    assert memory.epoch > after_write


def test_snapshot_carries_epoch_and_restore_advances_past_it():
    program = TargetProgram()
    builder.int_array(program, "x", [1, 2, 3, 4])
    snap = snapshot.take(program)
    assert snap.epoch == program.memory.epoch
    region = program.memory.regions[0]
    program.memory.write(region.base, b"\xFF\xFF\xFF\xFF")
    mutated = program.memory.epoch
    snapshot.restore(program, snap)
    assert program.memory.epoch > max(mutated, snap.epoch)


def test_serialized_snapshot_round_trips_epoch():
    program = TargetProgram()
    builder.int_array(program, "x", [9, 8, 7])
    snap = snapshot.take(program)
    blob = snap.serialize()
    fresh = TargetProgram()
    builder.int_array(fresh, "x", [0, 0, 0])
    revived = snapshot.Snapshot.deserialize(blob, fresh)
    assert revived.epoch == snap.epoch
