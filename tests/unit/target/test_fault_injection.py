"""Fault injection at the debugger interface boundary.

The robustness contract: any fault the target can produce —
unreadable memory, structures unmapped mid-walk, failed calls —
surfaces as the paper's error report, never a Python traceback, and a
recovering session rolls side-effecting queries back and stays usable.
"""

import io

import pytest

from repro.core.errors import (
    DuelError,
    DuelMemoryError,
    DuelTargetError,
)
from repro.core.session import DuelSession
from repro.target import builder, snapshot
from repro.target.interface import FaultInjectingBackend, SimulatorBackend
from repro.target.memory import TargetMemoryFault
from repro.target.program import TargetProgram
from repro.target.stdlib import install_stdlib

X = [3, -1, 7, 0, 12, -9, 2, 120, 5, -4]


def faulty_array_session(**faults):
    """A session over int x[10], with injection configured."""
    program = TargetProgram()
    builder.int_array(program, "x", X)
    backend = FaultInjectingBackend(SimulatorBackend(program), **faults)
    return program, backend, DuelSession(backend)


# -- the scheduled-read fault points ------------------------------------

def test_backend_level_read_schedule(program):
    builder.int_array(program, "x", [1, 2, 3])
    address = program.lookup("x").address
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_read_at=(1, 3))
    with pytest.raises(TargetMemoryFault):
        backend.get_target_bytes(address, 4)
    assert backend.get_target_bytes(address, 4) == (1).to_bytes(4, "little")
    with pytest.raises(TargetMemoryFault):
        backend.get_target_bytes(address, 4)
    assert backend.reads == 3
    assert [kind for kind, _ in backend.injected] == ["read", "read"]
    # The schedule is spent: read #4 onward succeeds.
    assert backend.get_target_bytes(address + 4, 4) == \
        (2).to_bytes(4, "little")


def test_fail_read_at_accepts_bare_int(program):
    builder.int_array(program, "x", [9])
    address = program.lookup("x").address
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_read_at=2)
    assert backend.get_target_bytes(address, 4) == (9).to_bytes(4, "little")
    with pytest.raises(TargetMemoryFault) as info:
        backend.get_target_bytes(address, 4)
    assert "injected fault on read #2" in str(info.value)


def test_injected_read_fault_reports_paper_format():
    """An injected fault produces the paper's exact two-line error."""
    program, _, session = faulty_array_session(fail_read_at=3)
    address = program.lookup("x").address + 2 * 4
    with pytest.raises(DuelMemoryError) as info:
        session.eval_values("x[..10]")
    assert str(info.value) == (
        f"Illegal memory reference in x of x:\n"
        f"x[2] = lvalue {address:#x}.")


def test_duel_reports_partial_results_then_error():
    """Values produced before the fault are printed, then the report."""
    _, backend, session = faulty_array_session(fail_read_at=3)
    out = io.StringIO()
    session.duel("x[..10]", out=out)
    lines = out.getvalue().splitlines()
    assert lines[0] == "x[0] = 3"
    assert lines[1] == "x[1] = -1"
    assert lines[2] == "Illegal memory reference in x of x:"
    assert lines[3].startswith("x[2] = lvalue 0x")
    # The schedule is one-shot; the same session works again.
    assert session.eval_values("x[..10]") == X
    assert backend.injected == [("read", 3)]


def test_fault_rollback_recovery_acceptance():
    """The acceptance flow: a side-effecting query faults mid-drive,
    the paper-format error is reported, the pre-query snapshot is
    restored, and the *same* session evaluates the next query
    correctly."""
    program, backend, session = faulty_array_session(fail_read_at=3)
    out = io.StringIO()
    session.duel("x[..10]++", out=out)               # 1. fault mid-query
    text = out.getvalue()
    assert "Illegal memory reference in x of x[i]++" in text \
        or "Illegal memory reference in x of x" in text  # 2. paper error
    assert ("read", 3) in backend.injected
    # 3. the rollback: the increments applied before the fault are gone.
    assert [program.read_value(program.lookup("x").address + i * 4,
                               program.parse_type("int"))
            for i in range(10)] == X
    # 4. the same session answers the next query correctly.
    assert session.eval_values("x[..10]") == X
    assert session.eval_values("#/(x[..10] >? 0)") == [6]


def test_without_rollback_partial_mutation_persists():
    """Contrast: the raw eval path does not roll back — duel() does."""
    program, _, session = faulty_array_session(fail_read_at=3)
    with pytest.raises(DuelMemoryError):
        session.eval_values("x[..10]++")
    mutated = [program.read_value(program.lookup("x").address + i * 4,
                                  program.parse_type("int"))
               for i in range(10)]
    assert mutated[:2] == [X[0] + 1, X[1] + 1]
    assert mutated[2:] == X[2:]


# -- structures vanishing mid-generator ---------------------------------

def test_unmap_mid_generator_then_restore():
    program = TargetProgram()
    builder.linked_list(program, "L", [1, 2, 3, 4, 5])
    snap = snapshot.take(program)
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    unmap_after_reads=3,
                                    unmap_region="heap")
    session = DuelSession(backend)
    out = io.StringIO()
    session.duel("L-->next->value", out=out)     # must not blow up
    lines = out.getvalue().splitlines()
    values = [line for line in lines if "lvalue" not in line
              and "Illegal" not in line]
    assert len(values) < 5                       # the walk was cut short
    assert ("unmap", "heap") in backend.injected
    assert program.memory.region("heap") is None
    # A snapshot restore brings the region map itself back.
    snapshot.restore(program, snap)
    assert session.eval_values("L-->next->value") == [1, 2, 3, 4, 5]


# -- failed target calls -------------------------------------------------

def test_injected_call_fault_is_target_error(program):
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_calls=True)
    session = DuelSession(backend)
    with pytest.raises(DuelTargetError) as info:
        session.eval_values('strlen("abc")')
    assert str(info.value).startswith("target call failed")
    assert isinstance(info.value.fault, TargetMemoryFault)
    assert backend.injected[-1][0] == "call"


def test_call_fault_recovery_via_duel(program):
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_calls=True)
    session = DuelSession(backend)
    out = io.StringIO()
    session.duel('strlen("abc") + 1', out=out)
    assert out.getvalue().startswith("target call failed")
    # Calls keep failing, but the session itself is fine.
    assert session.eval_values("10 + 20") == [30]
    out = io.StringIO()
    session.duel("(1..3)+(5,9)", out=out)
    assert out.getvalue() == "6 10 7 11 8 12\n"


# -- pseudo-random chaos is reproducible --------------------------------

def _chaos_run(seed):
    program = TargetProgram()
    builder.int_array(program, "x", list(range(40)))
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    read_fault_rate=0.2, seed=seed)
    session = DuelSession(backend)
    trace = []
    for _ in range(4):
        try:
            trace.append(tuple(session.eval_values("x[..40]")))
        except DuelError as error:
            trace.append(str(error))
    return trace, tuple(backend.injected)


def test_read_fault_rate_is_seed_deterministic():
    assert _chaos_run(7) == _chaos_run(7)
    assert _chaos_run(7) != _chaos_run(8)


# -- stdlib interplay ----------------------------------------------------

def test_session_survives_fault_storm():
    """Many consecutive injected faults never wedge the session."""
    program = TargetProgram()
    install_stdlib(program)
    builder.int_array(program, "x", X)
    backend = FaultInjectingBackend(SimulatorBackend(program),
                                    fail_read_at=range(1, 8))
    session = DuelSession(backend)
    for _ in range(7):
        out = io.StringIO()
        session.duel("x[..10]", out=out)
        assert "Illegal memory reference" in out.getvalue()
    # Schedule exhausted; full fidelity returns.
    assert session.eval_values("x[..10]") == X
