"""Property tests: snapshot take/restore vs concurrent readers.

The serve layer's snapshot isolation rests on one invariant: a
sequence of ``take`` → mutate → ``restore`` cycles, run under the
session manager's write lock, leaves the target byte-identical to its
starting state, and readers serialized by the same lock never observe
a half-applied mutation.  These tests check both halves — the
round-trip exactness with randomized mutations (Hypothesis), and the
absence of torn reads when real reader threads interleave with a
writer through the :class:`ReadWriteLock` discipline the serve layer
uses.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import workloads
from repro.core.session import DuelSession
from repro.serve.sessions import ReadWriteLock, SessionManager
from repro.target import snapshot
from repro.target.interface import SimulatorBackend

N = 40


def array_state(session):
    """The observable contents of x, via a real DUEL drive."""
    out = []
    session.duel(f"x[..{N}]", out=_Catcher(out))
    return tuple(out)


class _Catcher:
    def __init__(self, lines):
        self.lines = lines

    def write(self, text):
        if text.strip():
            self.lines.append(text.strip())


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, N - 1),
                              st.integers(-10**6, 10**6)),
                    min_size=0, max_size=12))
    def test_take_mutate_restore_is_identity(self, writes):
        program = workloads.big_array(N)
        session = DuelSession(SimulatorBackend(program))
        before = array_state(session)
        checkpoint = snapshot.take(program)
        for index, value in writes:
            session.duel(f"x[{index}] = {value}", out=_Catcher([]))
        snapshot.restore(program, checkpoint)
        session.evaluator.invalidate_target_caches()
        assert array_state(session) == before

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 5))
    def test_nested_cycles_restore_in_any_order(self, depth):
        program = workloads.big_array(N)
        session = DuelSession(SimulatorBackend(program))
        before = array_state(session)
        checkpoints = []
        for level in range(depth):
            checkpoints.append(snapshot.take(program))
            session.duel(f"x[..{N}] = {level + 1}", out=_Catcher([]))
        # Restoring the oldest checkpoint wins regardless of depth.
        snapshot.restore(program, checkpoints[0])
        session.evaluator.invalidate_target_caches()
        assert array_state(session) == before


class TestConcurrentReaders:
    """Readers through the serve-layer lock discipline see no tearing."""

    def _run(self, manager, rounds, readers):
        program = manager.program
        writer_client = manager.open("writer#0")
        reader_clients = [manager.open(f"reader#{i + 1}")
                          for i in range(readers)]
        baseline = None
        torn = []
        stop = threading.Event()
        barrier = threading.Barrier(readers + 1)

        def drain(client, text):
            collected = []
            for kind, payload in manager.run(client, text):
                if kind == "value":
                    collected.append(payload)
                else:
                    assert kind in ("done", "truncated"), payload
            return tuple(collected)

        def read_loop(client):
            barrier.wait()
            while not stop.is_set():
                state = drain(client, f"x[..{N}]")
                if state != baseline:
                    torn.append(state)
                    return

        def write_loop():
            barrier.wait()
            for round_ in range(rounds):
                # Writes overwrite every slot with a sentinel; snapshot
                # isolation must make each invisible to the readers.
                drain(writer_client, f"x[..{N}] = {90000 + round_}")
            stop.set()

        plain = DuelSession(SimulatorBackend(program))
        baseline = array_state(plain)
        threads = [threading.Thread(target=read_loop, args=(client,))
                   for client in reader_clients]
        threads.append(threading.Thread(target=write_loop))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(not t.is_alive() for t in threads), "reader/writer hung"
        assert torn == [], f"reader saw a torn state: {torn[0][:5]}"
        # And the target really is back to its baseline.
        assert array_state(plain) == baseline

    def test_four_readers_against_a_writer(self):
        manager = SessionManager(workloads.big_array(N))
        self._run(manager, rounds=20, readers=4)

    def test_single_reader_many_cycles(self):
        manager = SessionManager(workloads.big_array(N))
        self._run(manager, rounds=50, readers=1)


class TestLockDiscipline:
    def test_no_reader_inside_a_write_section(self):
        lock = ReadWriteLock()
        inside_write = threading.Event()
        violations = []
        done = threading.Event()

        def writer():
            for _ in range(200):
                lock.acquire_write()
                inside_write.set()
                inside_write.clear()
                lock.release_write()
            done.set()

        def reader():
            while not done.is_set():
                lock.acquire_read()
                if inside_write.is_set():
                    violations.append("reader during write")
                lock.release_read()

        threads = [threading.Thread(target=writer)] + \
            [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert violations == []
