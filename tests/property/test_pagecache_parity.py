"""Differential property test: the page cache must be observationally
invisible (PR 10).

The cache sits *below* the access observatory, so the logical access
stream — the ordered (op, address, size) sequence the evaluator sends
at the target — must be byte-identical with the cache off, on in
demand mode, and on in adaptive mode, for both evaluation engines.
So must the values.  Only the *physical* traffic underneath may
change.  Any divergence means the cache changed what a query reads —
a correctness bug, not a performance artifact.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.statemachine import StateMachineEvaluator
from repro.obs.access import AccessTracer
from repro.target import builder
from repro.target.pagecache import PageCachePolicy

#: Tight policies so eviction and prefetch paths actually run under
#: the random workload, not just the fast paths.
POLICIES = (
    None,
    PageCachePolicy(mode="demand", page_size=32, capacity=4),
    PageCachePolicy(mode="adaptive", page_size=32, capacity=4),
    PageCachePolicy(mode="adaptive", page_size=256, capacity=64),
)


@pytest.fixture(scope="module")
def rig():
    program = TargetProgram()
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    session = DuelSession(SimulatorBackend(program))
    return session, StateMachineEvaluator(session.evaluator)


# -- random expression generation (the test_engines subset) --------------
ints = st.integers(-9, 9)


def leaf():
    return st.one_of(
        ints.map(str),
        st.just("x[0]"),
        st.just("x[1]"),
        st.builds(lambda a, b: f"x[{abs(a) % 10}]", ints, ints),
    )


def combine(children):
    binop = st.sampled_from(["+", "-", "*", ",", ">?", "<?", "==?", "&&"])
    return st.one_of(
        st.tuples(binop, children, children).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"),
        st.tuples(children, children).map(
            lambda t: f"({t[0]} .. {t[1]})"),
        children.map(lambda c: f"(- {c})"),
        st.tuples(children, children).map(
            lambda t: f"(if ({t[0]}) {t[1]})"),
    )


expressions = st.recursive(leaf(), combine, max_leaves=8)


def observed(session, drive, node, policy):
    """(values, logical accesses) under the given cache policy.

    Values are loaded only after the drive completes — loading reads
    target memory, and interleaving those reads into a suspended
    generator's stream would differ from the state machine's
    drive-then-load order for reasons unrelated to the cache.
    """
    evaluator = session.evaluator
    evaluator.reset()
    evaluator.set_page_cache(policy)
    tracer = AccessTracer()
    evaluator.set_access_tracer(tracer)
    try:
        raw = list(drive(node))
    finally:
        evaluator.set_access_tracer(None)
        evaluator.set_page_cache(None)
    return [evaluator.ops.load(v) for v in raw], tracer.accesses()


@given(text=expressions)
@settings(deadline=None)
def test_cache_is_invisible_to_values_and_access_streams(rig, text):
    session, sm = rig
    node = session.compile(text)
    drives = {
        "generator": lambda n: session.evaluator.eval(n),
        "statemachine": lambda n: sm.iter_drive(n),
    }
    baseline = None
    for engine, drive in drives.items():
        for policy in POLICIES:
            values, accesses = observed(session, drive, node, policy)
            if baseline is None:
                baseline = (values, accesses)
                continue
            assert (values, accesses) == baseline, (engine, policy)


@given(text=expressions)
@settings(deadline=None)
def test_cache_serves_repeat_scans_without_physical_reads(rig, text):
    """A second identical run over a warm cache does no physical I/O
    at all — and still produces the identical logical stream."""
    session, sm = rig
    node = session.compile(text)
    evaluator = session.evaluator
    policy = PageCachePolicy(mode="demand", page_size=256, capacity=64)
    evaluator.reset()
    evaluator.set_page_cache(policy)
    try:
        list(evaluator.eval(node))
        cache = evaluator.page_cache
        physical_before = cache.physical_reads
        tracer = AccessTracer()
        evaluator.set_access_tracer(tracer)
        try:
            evaluator.reset()
            list(evaluator.eval(node))
        finally:
            evaluator.set_access_tracer(None)
        warm_accesses = tracer.accesses()
        assert cache.physical_reads == physical_before
    finally:
        evaluator.set_page_cache(None)
    tracer = AccessTracer()
    evaluator.set_access_tracer(tracer)
    try:
        evaluator.reset()
        list(evaluator.eval(node))
    finally:
        evaluator.set_access_tracer(None)
    assert warm_accesses == tracer.accesses()


def test_cache_sees_writes_from_its_own_session(rig):
    """Write-through coherence at the session level: a duel write is
    visible to the very next cached read."""
    import io
    program = TargetProgram()
    builder.int_array(program, "x", list(range(16)))
    session = DuelSession(
        SimulatorBackend(program),
        page_cache=PageCachePolicy(mode="adaptive", page_size=64,
                                   capacity=8))
    session.duel("x[..16]", out=io.StringIO())    # warm the cache
    session.duel("x[3] = 777", out=io.StringIO())
    out = io.StringIO()
    session.duel("x[3]", out=out)
    assert "777" in out.getvalue()


def test_pointer_chase_parity_with_cache(rig):
    program = TargetProgram()
    builder.linked_list(program, "head", [11, 42, 5, 33, 19, 29, 8, 77])
    session = DuelSession(SimulatorBackend(program))
    sm = StateMachineEvaluator(session.evaluator)
    node = session.compile("head-->next->value >? 20")
    results = []
    for policy in POLICIES:
        results.append(observed(
            session, lambda n: session.evaluator.eval(n), node, policy))
        results.append(observed(
            session, lambda n: sm.drive(n), node, policy))
    assert all(r == results[0] for r in results[1:])
    assert results[0][1]                # the walk really touched memory
