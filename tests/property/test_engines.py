"""Differential property test: the paper's state-machine engine and the
native generator engine must be observationally identical (A1)."""

import pytest
from hypothesis import given, strategies as st

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.statemachine import StateMachineEvaluator
from repro.target import builder


@pytest.fixture(scope="module")
def rig():
    program = TargetProgram()
    builder.int_array(program, "x", [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    session = DuelSession(SimulatorBackend(program))
    return session, StateMachineEvaluator(session.evaluator)


def both(rig, text):
    session, sm = rig
    node = session.compile(text)
    ops = session.evaluator.ops
    generator = [ops.load(v) for v in session.evaluator.eval(node)]
    machine = [ops.load(v) for v in sm.drive(node)]
    return generator, machine


# -- random expression generation over the SM-supported subset ----------
ints = st.integers(-9, 9)


def leaf():
    return st.one_of(
        ints.map(str),
        st.just("x[0]"),
        st.just("x[1]"),
        st.builds(lambda a, b: f"x[{abs(a) % 10}]", ints, ints),
    )


def combine(children):
    binop = st.sampled_from(["+", "-", "*", ",", ">?", "<?", "==?", "&&"])
    return st.one_of(
        st.tuples(binop, children, children).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"),
        st.tuples(children, children).map(
            lambda t: f"({t[0]} .. {t[1]})"),
        children.map(lambda c: f"(- {c})"),
        st.tuples(children, children).map(
            lambda t: f"(if ({t[0]}) {t[1]})"),
        st.tuples(children, children).map(
            lambda t: f"({t[0]} => {t[1]})"),
    )


expressions = st.recursive(leaf(), combine, max_leaves=8)


@given(text=expressions)
def test_engines_agree_on_random_expressions(rig, text):
    generator, machine = both(rig, text)
    assert generator == machine


@given(a=ints, b=ints, c=ints, d=ints)
def test_engines_agree_on_to_cross_products(rig, a, b, c, d):
    generator, machine = both(rig, f"(({a})..({b})) + (({c})..({d}))")
    assert generator == machine


@given(xs=st.lists(ints, min_size=1, max_size=6), c=ints)
def test_engines_agree_on_filters(rig, xs, c):
    alt = "(" + ",".join(map(str, xs)) + ")"
    generator, machine = both(rig, f"{alt} >? ({c})")
    assert generator == machine


def test_restartability_matches(rig):
    session, sm = rig
    node = session.compile("(1..3)+(5,9)")
    ops = session.evaluator.ops
    first = [ops.load(v) for v in sm.drive(node)]
    second = [ops.load(v) for v in sm.drive(node)]
    assert first == second == [6, 10, 7, 11, 8, 12]


# -- both engines charge the governor identically (PR: resource governor)

@given(text=expressions)
def test_engines_charge_identical_step_counts(rig, text):
    """Step accounting is engine-independent: a budget that stops one
    engine at value N stops the other at the same N."""
    session, sm = rig
    node = session.compile(text)
    evaluator = session.evaluator
    evaluator.reset()
    for _ in evaluator.eval(node):
        pass
    generator_steps = session.governor.steps
    evaluator.reset()
    sm.drive(node)
    assert session.governor.steps == generator_steps


# -- both engines emit identical trace streams (PR: observability) ------
#
# The tracing instrumentation points were placed so the generator
# wrapper and the state-machine eval brackets describe the same
# abstract pull/yield protocol; that makes the trace stream a
# correctness oracle for the state machine — any divergence in
# evaluation order shows up as an event-sequence mismatch long before
# it corrupts a value.

def traced(rig_pair, node, text, drive):
    session, sm = rig_pair
    from repro.obs.trace import QueryTracer, RingBufferSink
    session.evaluator.reset()
    tracer = QueryTracer(RingBufferSink())
    tracer.begin(node, text)
    session.evaluator.set_tracer(tracer)
    try:
        drive(session, sm, node)
    finally:
        tracer.finish()
        session.evaluator.set_tracer(None)
    return tracer


def trace_both(rig_pair, text):
    session, sm = rig_pair
    node = session.compile(text)
    generator = traced(rig_pair, node, text,
                       lambda s, m, n: list(s.evaluator.eval(n)))
    machine = traced(rig_pair, node, text,
                     lambda s, m, n: m.drive(n))
    return generator, machine


@given(text=expressions)
def test_engines_emit_identical_trace_events(rig, text):
    """The full ordered pull/yield event stream matches, node by node."""
    generator, machine = trace_both(rig, text)
    assert generator.events() == machine.events()


@given(text=expressions)
def test_engines_record_identical_span_profiles(rig, text):
    """Per-node aggregates (pulls, yields, attributed reads) match."""
    generator, machine = trace_both(rig, text)
    assert [(s.index, s.op, s.pulls, s.yields, s.reads, s.writes)
            for s in generator.spans] == \
        [(s.index, s.op, s.pulls, s.yields, s.reads, s.writes)
         for s in machine.spans]


@pytest.fixture(scope="module")
def list_rig():
    program = TargetProgram()
    builder.linked_list(program, "head", [11, 42, 5, 33, 19, 29, 8, 77])
    session = DuelSession(SimulatorBackend(program))
    return session, StateMachineEvaluator(session.evaluator)


@pytest.mark.parametrize("text", [
    "head-->next->value",
    "head-->next->value >? 20",
    "head-->next->value == 33 ? 1 : 0",
])
def test_engines_trace_list_walks_identically(list_rig, text):
    generator, machine = trace_both(list_rig, text)
    assert generator.events() == machine.events()
    assert generator.events()  # non-trivial stream


# -- both engines leave identical query-log records (PR: flight
# recorder / query log) -------------------------------------------------
#
# The structured query log is the third observational surface (after
# values and trace events) that must not distinguish the engines: for
# the same query, both must produce the same lifecycle sequence with
# the same terminal outcome, value count, governor verdict and target
# traffic — only timings (and the engine tag itself) may differ.

_TIMING_FIELDS = ("ts", "parse_ms", "wall_ms")


def logged_records(rig_pair, text, engine, drive):
    import io
    import json

    from repro.obs.qlog import QueryLog, drive_logged

    buffer = io.StringIO()
    qlog = QueryLog(buffer, clock=lambda: 0.0)
    drive_logged(qlog, rig_pair[0], text, drive, engine=engine)
    records = [json.loads(line)
               for line in buffer.getvalue().splitlines()]
    for record in records:
        record.pop("engine", None)
        for field in _TIMING_FIELDS:
            record.pop(field, None)
    return records


def qlog_both(rig_pair, text):
    session, sm = rig_pair
    generator = logged_records(
        rig_pair, text, "generator",
        lambda node: session.evaluator.eval(node))
    machine = logged_records(
        rig_pair, text, "statemachine",
        lambda node: sm.iter_drive(node))
    return generator, machine


@given(text=expressions)
def test_engines_leave_identical_qlog_records(rig, text):
    generator, machine = qlog_both(rig, text)
    assert generator == machine
    assert generator[-1]["ev"] in ("drained", "faulted")


def test_engines_log_identical_truncation_records(rig):
    session, sm = rig
    saved = session.options.max_steps
    session.options.max_steps = 40
    try:
        generator, machine = qlog_both(rig, "(1..) + x[0]")
    finally:
        session.options.max_steps = saved
    assert generator == machine
    terminal = generator[-1]
    assert terminal["ev"] == "truncated"
    assert terminal["kind"] == "steps"
    assert terminal["values"] > 0


def test_engines_log_identical_fault_records(rig):
    generator, machine = qlog_both(rig, "x[2000000]")
    assert generator == machine
    assert generator[-1]["ev"] == "faulted"
    assert generator[-1]["error_type"] == "DuelMemoryError"


def test_engines_log_identical_rejection_records(rig):
    generator, machine = qlog_both(rig, "x[")
    assert generator == machine
    assert [r["ev"] for r in generator] == ["received", "rejected"]


# -- both engines issue identical target accesses (PR: access
# observatory) ----------------------------------------------------------
#
# The fourth observational surface: the ordered (op, address, size)
# stream the evaluator sends at the target.  The access tracer hooks
# the DebuggerInterface itself, below both engines, so any divergence
# in *which* memory a query touches — not just which values it
# yields — shows up as a sequence mismatch.  This is also the surface
# the scan-pattern classifier and prefetch advisor consume, so parity
# here means profiles and advice are engine-independent too.

def traced_accesses(rig_pair, node, drive):
    from repro.obs.access import AccessTracer
    session, sm = rig_pair
    session.evaluator.reset()
    tracer = AccessTracer()
    session.evaluator.set_access_tracer(tracer)
    try:
        drive(session, sm, node)
    finally:
        session.evaluator.set_access_tracer(None)
    return tracer


def accesses_both(rig_pair, text):
    session, sm = rig_pair
    node = session.compile(text)
    generator = traced_accesses(
        rig_pair, node, lambda s, m, n: list(s.evaluator.eval(n)))
    machine = traced_accesses(
        rig_pair, node, lambda s, m, n: m.drive(n))
    return generator, machine


@given(text=expressions)
def test_engines_issue_identical_access_streams(rig, text):
    generator, machine = accesses_both(rig, text)
    assert generator.accesses() == machine.accesses()


@pytest.mark.parametrize("text", [
    "head-->next->value",
    "head-->next->value >? 20",
])
def test_engines_walk_lists_with_identical_accesses(list_rig, text):
    generator, machine = accesses_both(list_rig, text)
    assert generator.accesses() == machine.accesses()
    assert generator.accesses()   # the walk really touched memory


@given(text=expressions)
def test_engines_profile_identically(rig, text):
    """Same access stream ⇒ same classified profile: the locality
    numbers an operator sees cannot depend on the engine."""
    generator, machine = accesses_both(rig, text)
    assert generator.profile() == machine.profile()


@given(text=expressions)
def test_engines_trip_step_budget_at_same_count(rig, text):
    from hypothesis import assume

    from repro.core.errors import DuelEvalLimit

    session, sm = rig
    node = session.compile(text)
    evaluator = session.evaluator
    evaluator.reset()
    for _ in evaluator.eval(node):
        pass
    total = session.governor.steps
    assume(total >= 2)
    budget = total // 2
    saved = session.options.max_steps
    session.options.max_steps = budget
    try:
        evaluator.reset()
        with pytest.raises(DuelEvalLimit):
            for _ in evaluator.eval(node):
                pass
        generator_trip = session.governor.steps
        evaluator.reset()
        with pytest.raises(DuelEvalLimit):
            sm.drive(node)
        assert session.governor.steps == generator_trip == budget + 1
    finally:
        session.options.max_steps = saved
