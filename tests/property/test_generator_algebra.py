"""Property tests: algebraic laws of DUEL generators.

These pin the paper's semantics as equations, e.g.

    #/(e1, e2)        ==  #/e1 + #/e2
    a..b              has max(0, b-a+1) values
    (e1 op e2)        has (#/e1) * (#/e2) values for binary op
    e >? c            is the subsequence of e with values > c
    e[[..#/e]]        ==  e   (select identity)
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DuelSession, SimulatorBackend, TargetProgram

small_int = st.integers(-30, 30)
small_list = st.lists(small_int, min_size=1, max_size=8)


@pytest.fixture(scope="module")
def duel():
    return DuelSession(SimulatorBackend(TargetProgram()))


def lit(values):
    """A DUEL alternation literal for a list of ints."""
    return "(" + ",".join(str(v) for v in values) + ")"


@given(a=small_int, b=small_int)
def test_to_length_and_contents(duel, a, b):
    got = duel.eval_values(f"({a})..({b})")
    assert got == list(range(a, b + 1))


@given(xs=small_list, ys=small_list)
def test_alternate_concatenates(duel, xs, ys):
    got = duel.eval_values(f"{lit(xs)}, {lit(ys)}")
    assert got == xs + ys


@given(xs=small_list, ys=small_list)
def test_count_is_additive_over_alternate(duel, xs, ys):
    (total,) = duel.eval_values(f"#/({lit(xs)}, {lit(ys)})")
    assert total == len(xs) + len(ys)


@given(xs=small_list, ys=small_list)
def test_binary_op_is_cross_product(duel, xs, ys):
    got = duel.eval_values(f"{lit(xs)} + {lit(ys)}")
    assert got == [x + y for x in xs for y in ys]


@given(xs=small_list, c=small_int)
def test_compare_yield_is_filter(duel, xs, c):
    got = duel.eval_values(f"{lit(xs)} >? ({c})")
    assert got == [x for x in xs if x > c]


@given(xs=small_list, c=small_int)
def test_compare_yield_complement_partitions(duel, xs, c):
    gt = duel.eval_values(f"{lit(xs)} >? ({c})")
    le = duel.eval_values(f"{lit(xs)} <=? ({c})")
    assert sorted(gt + le) == sorted(xs)


@given(xs=small_list)
def test_select_identity(duel, xs):
    got = duel.eval_values(f"{lit(xs)}[[..{len(xs)}]]")
    assert got == xs


@given(xs=small_list, data=st.data())
def test_select_picks_kth(duel, xs, data):
    k = data.draw(st.integers(0, len(xs) - 1))
    assert duel.eval_values(f"{lit(xs)}[[{k}]]") == [xs[k]]


@given(xs=small_list)
def test_sum_reduction(duel, xs):
    assert duel.eval_values(f"+/{lit(xs)}") == [sum(xs)]


@given(xs=small_list)
def test_min_max_reductions(duel, xs):
    assert duel.eval_values(f"<?/{lit(xs)}") == [min(xs)]
    assert duel.eval_values(f">?/{lit(xs)}") == [max(xs)]


@given(xs=small_list, ys=small_list)
def test_imply_repeats_right_per_left_value(duel, xs, ys):
    got = duel.eval_values(f"{lit(xs)} => {lit(ys)}")
    assert got == ys * len(xs)


@given(xs=small_list)
def test_sequence_keeps_only_right(duel, xs):
    got = duel.eval_values(f"{lit(xs)}; 42")
    assert got == [42]


@given(xs=small_list, c=small_int)
def test_until_is_takewhile(duel, xs, c):
    # A constant guard (@c) stops at the first value equal to c; the
    # spelling without parentheses keeps it a constant, not a guard
    # expression.
    spelled = str(c) if c >= 0 else f"-{-c}"
    got = duel.eval_values(f"{lit(xs)}@{spelled}")
    expect = []
    for x in xs:
        if x == c:
            break
        expect.append(x)
    assert got == expect


@given(xs=small_list, c=small_int)
def test_until_guard_expression_uses_truthiness(duel, xs, c):
    # A parenthesised guard is an expression over _: fires when non-zero.
    got = duel.eval_values(f"{lit(xs)}@(_ == ({c}))")
    expect = []
    for x in xs:
        if x == c:
            break
        expect.append(x)
    assert got == expect


@given(xs=small_list)
def test_if_generator_condition(duel, xs):
    got = duel.eval_values(f"if ({lit(xs)}) 1 else 0")
    assert got == [1 if x else 0 for x in xs]


@given(a=st.integers(0, 20))
def test_prefix_to_is_zero_based(duel, a):
    assert duel.eval_values(f"..({a})") == list(range(a))


@given(xs=small_list)
def test_index_alias_enumerates(duel, xs):
    got = duel.eval_values(f"{lit(xs)}#n => {{n}}")
    assert got == list(range(len(xs)))


@given(xs=small_list, ys=small_list)
def test_andand_generator_law(duel, xs, ys):
    got = duel.eval_values(f"{lit(xs)} && {lit(ys)}")
    assert got == [y for x in xs if x != 0 for y in ys]
