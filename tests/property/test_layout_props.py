"""Property tests: record layout invariants."""

from hypothesis import given, strategies as st

from repro.ctype.layout import MemberDecl, layout_struct, layout_union
from repro.ctype.types import (
    CHAR,
    DOUBLE,
    INT,
    LONG,
    PointerType,
    SHORT,
    UCHAR,
    UINT,
)

_SCALARS = [CHAR, UCHAR, SHORT, INT, UINT, LONG, DOUBLE, PointerType(CHAR)]

members_strategy = st.lists(
    st.builds(
        MemberDecl,
        name=st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        ctype=st.sampled_from(_SCALARS),
    ),
    min_size=1, max_size=12,
)


@given(members=members_strategy)
def test_struct_fields_do_not_overlap(members):
    fields, size, align = layout_struct(members)
    spans = sorted((f.offset, f.offset + f.ctype.size) for f in fields)
    for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start


@given(members=members_strategy)
def test_struct_fields_are_aligned(members):
    fields, size, align = layout_struct(members)
    for f in fields:
        assert f.offset % f.ctype.align == 0


@given(members=members_strategy)
def test_struct_size_covers_all_fields_and_is_aligned(members):
    fields, size, align = layout_struct(members)
    assert all(f.offset + f.ctype.size <= size for f in fields)
    assert size % align == 0
    assert align == max(f.ctype.align for f in fields)


@given(members=members_strategy)
def test_struct_offsets_monotonic_in_declaration_order(members):
    fields, size, align = layout_struct(members)
    offsets = [f.offset for f in fields]
    assert offsets == sorted(offsets)


@given(members=members_strategy)
def test_union_members_at_zero_and_size_is_max(members):
    fields, size, align = layout_union(members)
    assert all(f.offset == 0 for f in fields)
    assert size >= max(f.ctype.size for f in fields)
    assert size % align == 0


@given(members=members_strategy)
def test_struct_at_least_as_large_as_union(members):
    _, ssize, _ = layout_struct(members)
    _, usize, _ = layout_union(members)
    assert ssize >= usize


@given(widths=st.lists(st.integers(1, 32), min_size=1, max_size=10))
def test_bitfields_fit_and_do_not_overlap(widths):
    members = [MemberDecl(f"b{i}", UINT, w) for i, w in enumerate(widths)]
    fields, size, align = layout_struct(members)
    seen: set[tuple[int, int]] = set()
    for f in fields:
        assert f.bit_offset + f.bit_width <= 32
        bits = {(f.offset * 8 + f.bit_offset + k)
                for k in range(f.bit_width)}
        for b in bits:
            assert (0, b) not in seen
            seen.add((0, b))
    assert size >= (sum(widths) + 31) // 32 * 4 - 4 or size > 0
