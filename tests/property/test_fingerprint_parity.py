"""Fingerprint parity: both engines key statements identically.

The statement-statistics table is only trustworthy as a fleet-wide
aggregate if the fingerprint never depends on *which* engine runs the
query.  Parity is structural — both engines evaluate the same AST
from the shared parser, and the fingerprint is a pure function of
that AST — but the property is worth pinning: a future engine-specific
parse tweak or normalization bug would silently split one query shape
into two table entries.
"""

import io

import pytest
from hypothesis import given, strategies as st

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.statemachine import StateMachineEvaluator
from repro.obs.fingerprint import fingerprint
from repro.obs.statements import StatementStats
from repro.target import builder

DATA = [3, -1, 7, 0, 12, -9, 2, 120, 5, -4]


def make_session():
    program = TargetProgram()
    builder.int_array(program, "x", DATA)
    return DuelSession(SimulatorBackend(program))


@pytest.fixture(scope="module")
def rig():
    return make_session(), make_session()


# The same SM-supported expression grammar test_engines.py drives.
ints = st.integers(-9, 9)


def leaf():
    return st.one_of(
        ints.map(str),
        st.just("x[0]"),
        st.builds(lambda a: f"x[{abs(a) % 10}]", ints),
    )


def combine(children):
    binop = st.sampled_from(["+", "-", "*", ",", ">?", "<?", "==?"])
    return st.one_of(
        st.tuples(binop, children, children).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"),
        st.tuples(children, children).map(
            lambda t: f"({t[0]} .. {t[1]})"),
        children.map(lambda c: f"(- {c})"),
    )


expressions = st.recursive(leaf(), combine, max_leaves=8)


@given(text=expressions)
def test_independent_parses_fingerprint_identically(rig, text):
    """Each engine parses in its own session; the keys must agree."""
    gen_session, sm_session = rig
    gen_fp = fingerprint(gen_session.compile(text))
    sm_fp = fingerprint(sm_session.compile(text))
    assert gen_fp == sm_fp


@given(text=expressions)
def test_engines_record_the_same_statements_key(rig, text):
    """Driving through either engine lands on one table entry."""
    gen_session, sm_session = rig
    table = StatementStats()

    node = gen_session.compile(text)
    list(gen_session.evaluator.eval(node))
    gen_fp = fingerprint(node)
    table.record(gen_fp.hash, gen_fp.text, outcome="done")

    sm_node = sm_session.compile(text)
    machine = StateMachineEvaluator(sm_session.evaluator)
    list(machine.drive(sm_node))
    sm_fp = fingerprint(sm_node)
    table.record(sm_fp.hash, sm_fp.text, outcome="done")

    assert len(table) == 1
    (row,) = table.snapshot()
    assert row["calls"] == 2


@given(a=st.integers(0, 9), b=st.integers(0, 9))
def test_literal_bucketing_is_engine_independent(rig, a, b):
    """Two literal variants fold to one shape in both sessions.

    Non-negative literals only: ``-1`` parses as unary minus over a
    constant — a different AST shape from a bare constant, and the
    fingerprint is honest about that.
    """
    gen_session, sm_session = rig
    fp_a = fingerprint(gen_session.compile(f"x[..5] >? {a}"))
    fp_b = fingerprint(sm_session.compile(f"x[..5] >? {b}"))
    assert fp_a == fp_b


def test_recording_session_keys_match_raw_fingerprints():
    """The fingerprint a *recording session* files under equals the
    pure-function fingerprint of the parsed query."""
    session = make_session()
    session.statements = StatementStats()
    session.duel("x[..5] >? 2", out=io.StringIO())
    assert session.last_fingerprint is not None
    raw = fingerprint(session.compile("x[..5] >? 9"))
    assert session.last_fingerprint.hash == raw.hash
    (row,) = session.statements.snapshot()
    assert row["fingerprint"] == raw.hash
