"""Paper invariant: "The symbolic value is a symbolic expression
(i.e., a legal Duel expression) that indicates how the value was
computed."

Every symbolic expression we print must therefore re-parse, and —
stronger — re-evaluating it must reproduce the very value it labels
(symbols are derivations, so replaying one lands on the same data).
"""

import pytest

from repro.core.parser import parse

PAPER_QUERIES = [
    "x[..10] >? 0",
    "x[1..3] == 7",
    "x[..10].if (_ < 0 || _ > 100) _",
    "(hash[..1024] !=? 0)->scope >? 5",
    "hash[1,9]->(scope,name)",
    "hash[0]-->next->scope",
    "hash[..1024]-->next-> if (next) scope <? next->scope",
    "root-->(left,right)->key",
    "L-->next->(value ==? next-->next->value)",
    "head-->next->value[[3,5]]",
    "argv[0..]@0",
    "i := 1..3 => {i} + 4",
]


@pytest.mark.parametrize("query", PAPER_QUERIES)
def test_symbolics_are_legal_duel(session, query):
    for value in session.eval(query):
        text = value.sym.render(session.fold)
        parse(text)  # must not raise


@pytest.mark.parametrize("query", [
    "x[..10] >? 0",
    "(hash[..1024] !=? 0)->scope >? 5",
    "hash[0]-->next->scope",
    "root-->(left,right)->key",
    "argv[0..]@0",
])
def test_replaying_a_symbol_reproduces_its_value(session, query):
    ops = session.evaluator.ops
    produced = [(v.sym.render(session.fold), ops.load(v))
                for v in session.eval(query)]
    for text, loaded in produced:
        replayed = session.eval_values(text)
        assert replayed == [loaded], text


def test_folded_chain_notation_replays(session):
    """Even the -->a[[k]] fold notation is executable DUEL."""
    (line,) = session.eval_lines(
        "hash[..1024]-->next-> if (next) scope <? next->scope")
    symbol = line.split(" = ")[0]
    assert symbol == "hash[287]-->next[[8]]->scope"
    assert session.eval_values(symbol) == [5]
