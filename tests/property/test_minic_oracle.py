"""Differential property test: mini-C arithmetic vs a Python oracle.

Random integer expressions are rendered as C, executed by the mini-C
interpreter inside the simulated inferior, and compared against direct
Python evaluation with C int semantics (32-bit wraparound,
truncate-toward-zero division).
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.ctype.kinds import Kind, wrap_int
from repro.minic import run_program


# -- a tiny expression AST we can both render to C and evaluate ---------
class E:
    pass


class Lit(E):
    def __init__(self, v):
        self.v = v

    def c(self):
        return str(self.v) if self.v >= 0 else f"(- {-self.v})"

    def py(self):
        return self.v


class Bin(E):
    def __init__(self, op, a, b):
        self.op, self.a, self.b = op, a, b

    def c(self):
        return f"({self.a.c()} {self.op} {self.b.c()})"

    def py(self):
        x, y = self.a.py(), self.b.py()
        if self.op == "+":
            r = x + y
        elif self.op == "-":
            r = x - y
        elif self.op == "*":
            r = x * y
        elif self.op == "/":
            if y == 0:
                raise ZeroDivisionError
            q = abs(x) // abs(y)
            r = q if (x >= 0) == (y >= 0) else -q
        elif self.op == "%":
            if y == 0:
                raise ZeroDivisionError
            q = abs(x) // abs(y)
            q = q if (x >= 0) == (y >= 0) else -q
            r = x - q * y
        elif self.op == "&":
            r = x & y
        elif self.op == "|":
            r = x | y
        elif self.op == "^":
            r = x ^ y
        elif self.op == "<":
            r = int(x < y)
        elif self.op == ">":
            r = int(x > y)
        elif self.op == "==":
            r = int(x == y)
        else:  # pragma: no cover
            raise AssertionError(self.op)
        return wrap_int(r, Kind.INT)


def exprs():
    leaves = st.integers(-100, 100).map(Lit)
    ops = st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                           "<", ">", "=="])
    return st.recursive(
        leaves,
        lambda kids: st.builds(Bin, ops, kids, kids),
        max_leaves=10,
    )


@settings(deadline=None, max_examples=60)
@given(e=exprs())
def test_minic_matches_python_oracle(e):
    try:
        expected = e.py()
    except ZeroDivisionError:
        assume(False)
        return
    source = "int main(void) { int r = %s; return r == (%d); }" % (
        e.c(), expected)
    interp = run_program(source)
    assert interp.exit_status == 1, (e.c(), expected)


@settings(deadline=None, max_examples=60)
@given(e=exprs())
def test_duel_matches_python_oracle(e):
    """DUEL's C subset gives the same answers on constant expressions."""
    from repro import DuelSession, SimulatorBackend, TargetProgram
    try:
        expected = e.py()
    except ZeroDivisionError:
        assume(False)
        return
    duel = DuelSession(SimulatorBackend(TargetProgram()))
    got = duel.eval_values(e.c())
    assert got == [expected], e.c()


@settings(deadline=None, max_examples=40)
@given(xs=st.lists(st.integers(-1000, 1000), min_size=1, max_size=12))
def test_minic_array_sum_matches(xs):
    body = "".join(f"a[{i}] = {v if v >= 0 else f'(-{-v})'};"
                   for i, v in enumerate(xs))
    source = (f"int a[{len(xs)}]; int main(void) {{ int i, s = 0; {body}"
              f" for (i = 0; i < {len(xs)}; i++) s += a[i];"
              " return s == (%d); }" % sum(xs))
    interp = run_program(source)
    assert interp.exit_status == 1
