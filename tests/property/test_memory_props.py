"""Property tests: target memory is a faithful, guarded byte store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctype.encode import decode_value, encode_value
from repro.ctype.kinds import Kind, int_bounds
from repro.ctype.types import CHAR, INT, LONG, PrimitiveType, UCHAR, UINT, ULONG
from repro.target.memory import Memory, TargetMemoryFault
from repro.target.program import TargetProgram

BASE = 0x1000
SIZE = 0x2000


def fresh():
    m = Memory()
    m.map_new("data", BASE, SIZE)
    return m


@given(offset=st.integers(0, SIZE - 64),
       data=st.binary(min_size=1, max_size=64))
def test_write_read_roundtrip(offset, data):
    m = fresh()
    m.write(BASE + offset, data)
    assert m.read(BASE + offset, len(data)) == data


@given(writes=st.lists(
    st.tuples(st.integers(0, SIZE - 16),
              st.binary(min_size=1, max_size=16)),
    max_size=12))
def test_last_write_wins(writes):
    """Replaying writes into a Python bytearray model must agree."""
    m = fresh()
    model = bytearray(SIZE)
    for offset, data in writes:
        m.write(BASE + offset, data)
        model[offset:offset + len(data)] = data
    assert m.read(BASE, SIZE) == bytes(model)


@given(offset=st.integers(0, SIZE - 8),
       skew=st.integers(1, 7))
def test_disjoint_writes_do_not_interfere(offset, skew):
    m = fresh()
    if offset + 8 + skew + 1 > SIZE:
        return
    m.write(BASE + offset, b"\xAA" * 4)
    m.write(BASE + offset + 4 + skew, b"\xBB")
    assert m.read(BASE + offset, 4) == b"\xAA" * 4


_INT_TYPES = [CHAR, UCHAR, INT, UINT, LONG, ULONG]


@given(index=st.integers(0, len(_INT_TYPES) - 1), data=st.data())
def test_typed_roundtrip_through_memory(index, data):
    ctype = _INT_TYPES[index]
    lo, hi = int_bounds(ctype.kind)
    value = data.draw(st.integers(lo, hi))
    m = fresh()
    m.write(BASE, encode_value(value, ctype))
    assert decode_value(m.read(BASE, ctype.size), ctype) == value


@given(value=st.floats(allow_nan=False, allow_infinity=False,
                       width=64))
def test_double_roundtrip_exact(value):
    from repro.ctype.types import DOUBLE
    raw = encode_value(value, DOUBLE)
    assert decode_value(raw, DOUBLE) == value


@given(address=st.integers(0, 2**48))
def test_reads_never_corrupt_state(address):
    """Failed reads must not change mapped contents."""
    m = fresh()
    m.write(BASE, b"sentinel")
    try:
        m.read(address, 4)
    except Exception:
        pass
    assert m.read(BASE, 8) == b"sentinel"


@given(sizes=st.lists(st.integers(1, 256), min_size=1, max_size=8),
       data=st.data())
def test_alloc_write_read_roundtrip(sizes, data):
    """Heap allocations are disjoint, mapped, zeroed, and faithful."""
    program = TargetProgram()
    blocks = []
    for size in sizes:
        address = program.alloc(size)
        assert program.memory.is_mapped(address, size)
        assert program.memory.read(address, size) == bytes(size)
        payload = data.draw(st.binary(min_size=size, max_size=size))
        program.memory.write(address, payload)
        blocks.append((address, payload))
    # Every block still holds its own bytes: no overlap, no bleed.
    for address, payload in blocks:
        assert program.memory.read(address, len(payload)) == payload


@given(address=st.integers(-2**16, 2**48), size=st.integers(1, 64))
def test_unmapped_access_always_faults(address, size):
    """is_mapped is the exact oracle for read/write faulting."""
    m = fresh()
    before = m.read(BASE, SIZE)
    if m.is_mapped(address, size):
        assert len(m.read(address, size)) == size
    else:
        with pytest.raises(TargetMemoryFault):
            m.read(address, size)
        with pytest.raises(TargetMemoryFault):
            m.write(address, b"\xFF" * size)
        # The failed write touched nothing.
        assert m.read(BASE, SIZE) == before


@given(tail=st.integers(1, 63))
def test_straddling_write_is_atomic(tail):
    """A write running off a region's end faults without partial effect."""
    m = fresh()
    m.write(BASE, bytes(range(256)) * (SIZE // 256))
    before = m.read(BASE, SIZE)
    with pytest.raises(TargetMemoryFault):
        m.write(BASE + SIZE - tail, b"\xEE" * 64)
    assert m.read(BASE, SIZE) == before


@given(offset=st.integers(0, SIZE - 1), size=st.integers(1, 64))
def test_is_mapped_matches_region_bounds(offset, size):
    m = fresh()
    assert m.is_mapped(BASE + offset, size) == (offset + size <= SIZE)
