"""Shared fixtures: simulated inferiors carrying the paper's workloads."""

from __future__ import annotations

import faulthandler

import pytest
from hypothesis import HealthCheck, settings

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.target import builder
from repro.target.stdlib import install_stdlib

# Property tests drive full interpreter stacks; wall-clock deadlines
# only add flakiness there.  Module-scoped session fixtures are shared
# deliberately (sessions are stateless between eval calls).
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")

#: Per-test wall-clock ceiling.  A governor regression that lets a
#: runaway query escape its deadline would otherwise hang the suite
#: (and CI) silently; this dumps every stack and kills the process
#: instead.  Generous: the slowest legitimate test runs in seconds.
TEST_WALL_CLOCK_LIMIT = 180.0


@pytest.fixture(autouse=True)
def _wall_clock_guard():
    faulthandler.dump_traceback_later(TEST_WALL_CLOCK_LIMIT, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def program() -> TargetProgram:
    """A fresh, empty inferior with the stdlib installed."""
    p = TargetProgram()
    install_stdlib(p)
    return p


@pytest.fixture
def paper(program) -> TargetProgram:
    """An inferior carrying every structure the paper's examples use,
    with fixed contents so expected outputs are exact."""
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    builder.symbol_hash_table(program,
                              entries=builder.paper_hash_entries())
    builder.linked_list(program, "L",
                        [10, 20, 30, 40, 27, 50, 60, 70, 80, 27])
    builder.linked_list(program, "head",
                        [11, 42, 5, 33, 19, 29, 8, 77], tag="hnode")
    builder.binary_tree(program, "root", (9, (3, 4, 5), 12))
    program.set_argv(["prog", "-v", "file.c"])
    return program


@pytest.fixture
def session(paper) -> DuelSession:
    """A DUEL session attached to the paper workload."""
    return DuelSession(SimulatorBackend(paper))


@pytest.fixture
def empty_session(program) -> DuelSession:
    """A DUEL session attached to an empty inferior."""
    return DuelSession(SimulatorBackend(program))


@pytest.fixture
def array_session(program) -> DuelSession:
    """Session over a small known array x[10]."""
    builder.int_array(program, "x",
                      [3, -1, 7, 0, 12, -9, 2, 120, 5, -4])
    return DuelSession(SimulatorBackend(program))
