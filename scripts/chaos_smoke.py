#!/usr/bin/env python
"""End-to-end chaos smoke of the query service (CI job).

Boots ``duel-serve`` (via ``python -m repro --serve``) as a real
subprocess, puts a :class:`~repro.serve.chaos.ChaosProxy` with a
**scripted, deterministic fault plan** in front of it, and drives
concurrent clients through the chaos — connections dropped mid-frame,
responses truncated at byte boundaries, a slow-loris stall, plus one
client that goes silent until the server's heartbeats reap it.  Every
client uses the library's retry/reconnect/idempotency machinery, so
the run proves the fault-tolerance layer end to end:

* a **global hang timeout** kills the whole run — the one failure
  mode chaos testing exists to catch is the hang;
* every client finishes with definite outcomes (or an explicit error
  after exhausted retries), never a wedge;
* the query log parses, qids are strictly monotone in file order
  (server lifecycle records carry no qid and are validated against
  their closed vocabulary instead);
* the idem-tagged write executed **at most once per client** even
  where the fault plan broke the conversation mid-reply;
* after the run every session is reaped: the final ``stats`` frame
  reports zero parked sessions and only the verifier connected.

Artifacts (query log, outcome summary, injected-fault record) land in
``--artifacts`` for CI upload.  Exits 0 on success, 1 with a
diagnostic on any failure.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.serve import protocol  # noqa: E402
from repro.serve.chaos import (ChaosProxy, FaultPlan, drop_after,  # noqa: E402
                               stall_after, truncate_after)
from repro.serve.client import (DuelClient, RetryPolicy,  # noqa: E402
                                ServeError)

CLIENTS = 6
HANG_TIMEOUT = 180.0

PROGRAM = """\
int data[40] = {3, -1, 7, 0, 12, -9, 2, 120, 5, -4,
                1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                -1, -2, -3, -4, -5, -6, -7, -8, -9, -10,
                11, 22, 33, 44, 55, 66, 77, 88, 99, 100};
int main(void) { return 0; }
"""

#: The scripted plan, by accepted-connection index.  Reconnects get
#: fresh indices, so the retried conversations run clean on purpose:
#: fault once, recover once, deterministic every run.
PLAN = {
    1: [truncate_after(600)],        # response cut mid-frame
    2: [drop_after(700)],            # orderly mid-conversation close
    3: [stall_after(400, 3.0)],      # slow-loris on the reply stream
    4: [drop_after(80, "up")],       # request never reaches the server
}


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def arm_hang_timeout(process):
    """The global backstop: kill everything if the smoke wedges."""

    def explode():
        print(f"FAIL: chaos smoke exceeded the {HANG_TIMEOUT:.0f}s "
              "hang timeout", file=sys.stderr)
        try:
            process.kill()
        except OSError:
            pass
        os._exit(1)

    timer = threading.Timer(HANG_TIMEOUT, explode)
    timer.daemon = True
    timer.start()
    return timer


def client_worker(port, index, summary):
    """One resilient client's workload through the chaos proxy."""
    outcomes = []
    client = DuelClient(port=port, client=f"chaos{index}",
                        timeout=15.0, connect=False,
                        retry=RetryPolicy(retries=4, base=0.3,
                                          factor=1.5, max_backoff=1.0,
                                          jitter=0.0))
    try:
        attempt = 0
        while True:
            try:
                client.connect()
                break
            except (OSError, ServeError):
                attempt += 1
                if attempt > client.retry.retries:
                    raise
                client._teardown()
                client.retry.wait(attempt)
        read = client.duel("data[..10]")
        outcomes.append(read.outcome)
        # The idempotent write: unique text per client, so the query
        # log can prove it executed at most once despite retries.
        write = client.duel(f"data[{index}] = {9000 + index}")
        outcomes.append(write.outcome)
        again = client.duel("data[..10]")
        outcomes.append(again.outcome)
        if again.outcome == "done" and read.outcome == "done" \
                and again.lines != read.lines:
            fail(f"client {index}: write leaked into a later read")
        client.close()
    except (ServeError, OSError) as error:
        outcomes.append(f"error: {error}")
    summary[index] = {"outcomes": outcomes,
                      "reconnects": client.reconnects,
                      "resumed": client.resumed}


def silent_client(port, summary):
    """Says hello, then nothing: the heartbeat reaper's test dummy."""
    import socket
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(30)
    rfile = sock.makefile("rb")
    sock.sendall(protocol.encode(protocol.hello("silent")))
    welcome = protocol.decode(rfile.readline())
    if welcome.get("ev") != "welcome":
        fail(f"silent client got {welcome!r} instead of a welcome")
    # Ignore every ping; the server must hang up on us.
    t0 = time.monotonic()
    reaped = False
    try:
        while time.monotonic() - t0 < 60:
            if not sock.recv(65536):
                reaped = True        # clean EOF: the reaper closed us
                break
    except OSError:
        reaped = True                # an RST from the reaper counts too
    if not reaped:
        fail("the server never reaped the silent client")
    sock.close()
    summary["silent"] = {"reaped_after_s":
                         round(time.monotonic() - t0, 2)}


def check_query_log(path):
    records = []
    for number, line in enumerate(open(path), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"{path}:{number} is not JSON: {error}")
    server_events = [r for r in records if r.get("ev") == "server"]
    queries = [r for r in records if r.get("ev") != "server"]
    received = [r["qid"] for r in queries if r["ev"] == "received"]
    if received != sorted(received):
        fail("received qids are not monotone in file order")
    if len(received) != len(set(received)):
        fail("duplicate qids in the query log")
    # Exactly-once: each client's unique write text drove at most one
    # execution (replays answer from the idempotency cache and never
    # reach the drive, hence never the log).
    for index in range(CLIENTS):
        text = f"data[{index}] = {9000 + index}"
        drives = [r for r in queries
                  if r["ev"] == "received" and r.get("text") == text]
        if len(drives) > 1:
            fail(f"idempotent write {text!r} executed "
                 f"{len(drives)} times")
    kinds = {}
    for record in server_events:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    if not kinds.get("reaped"):
        fail("no 'reaped' server event despite the silent client")
    if not kinds.get("drain_begin"):
        fail("shutdown never logged drain_begin")
    print(f"query log ok: {len(received)} queries, "
          f"server events {kinds}")
    return kinds


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--artifacts", default="chaos-smoke-artifacts",
                        help="directory the run's artifacts land in")
    args = parser.parse_args()
    os.makedirs(args.artifacts, exist_ok=True)
    source = os.path.join(args.artifacts, "prog.c")
    qlog_path = os.path.join(args.artifacts, "queries.jsonl")
    with open(source, "w") as handle:
        handle.write(PROGRAM)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve",
         "--port", "0", "--workers", "4", "--max-clients", "24",
         "--heartbeat-interval", "0.5", "--heartbeat-timeout", "2",
         "--resume-ttl", "5",
         "--query-log", qlog_path, source],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    timer = arm_hang_timeout(process)
    port = None
    try:
        deadline = time.monotonic() + 30
        while port is None and time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                fail("server exited before announcing its port")
            sys.stdout.write(line)
            if line.startswith("serving on "):
                port = int(line.rsplit(":", 1)[1])
        if port is None:
            fail("server never announced 'serving on host:port'")

        proxy = ChaosProxy(("127.0.0.1", port),
                           FaultPlan.scripted(PLAN))
        proxy_port = proxy.start()
        print(f"chaos proxy :{proxy_port} -> server :{port}, "
              f"faults scripted on connections {sorted(PLAN)}")

        summary = {}
        threads = [threading.Thread(target=client_worker,
                                    args=(proxy_port, index, summary))
                   for index in range(CLIENTS)]
        threads.append(threading.Thread(target=silent_client,
                                        args=(port, summary)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        if any(thread.is_alive() for thread in threads):
            fail("a chaos client hung")
        if len(summary) != CLIENTS + 1:
            fail(f"only {len(summary)}/{CLIENTS + 1} workers reported")
        for index in range(CLIENTS):
            outcomes = summary[index]["outcomes"]
            for outcome in outcomes:
                if outcome not in ("done", "truncated", "cancelled",
                                   "faulted", "rejected") \
                        and not str(outcome).startswith("error:"):
                    fail(f"client {index} saw a non-terminal outcome "
                         f"{outcome!r}")
        reconnects = sum(summary[i]["reconnects"]
                         for i in range(CLIENTS))
        print(f"clients done: {reconnects} reconnects across "
              f"{CLIENTS} clients, "
              f"silent client reaped after "
              f"{summary['silent']['reaped_after_s']}s")
        if not proxy.events:
            fail("the chaos proxy injected nothing — plan misfired")
        print(f"injected faults: {proxy.events}")
        proxy.stop()

        # Give the parked-session TTL a chance to expire, then ask
        # the server itself: every session must be reaped by now.
        time.sleep(6.0)
        verifier = DuelClient(port=port, client="verify", timeout=15.0)
        stats = verifier.stats()["server"]
        verifier.close()
        if stats["parked"] != 0:
            fail(f"{stats['parked']} sessions still parked after TTL")
        if stats["clients"] > 1:
            fail(f"{stats['clients']} connections still registered "
                 "(only the verifier should be)")
        if stats["reaped"] < 1:
            fail("the server never reaped the silent client")
        print(f"post-run stats ok: {stats}")

        with open(os.path.join(args.artifacts, "outcomes.json"),
                  "w") as handle:
            json.dump({"summary": {str(k): v
                                   for k, v in summary.items()},
                       "injected": proxy.events,
                       "stats": stats},
                      handle, indent=2, sort_keys=True)

        process.send_signal(signal.SIGINT)
        tail = process.stdout.read()
        sys.stdout.write(tail)
        if process.wait(timeout=60) != 0:
            fail(f"server exited with status {process.returncode}")
        if "draining..." not in tail:
            fail("server never reported draining")
    finally:
        timer.cancel()
        if process.poll() is None:
            process.kill()

    check_query_log(qlog_path)
    print("chaos smoke: all checks passed")


if __name__ == "__main__":
    main()
