#!/usr/bin/env python
"""End-to-end smoke of the unattended-run stack (CI job).

Boots ``python -m repro`` as a real subprocess with the query log,
flight recorder and metrics endpoint all on, drives a small batch that
deliberately truncates one query and target-faults another, scrapes
``/metrics`` over HTTP while the session is live, and then validates
every artifact:

* the query log parses line by line with exactly one terminal record
  per query and the expected outcomes;
* the flight recorder wrote post-mortem dumps naming both offending
  queries, the faulted one carrying its EXPLAIN tree;
* the Prometheus exposition is well-formed and reflects all queries.

Artifacts (query log, dumps, scraped metrics) are left in the
directory given by ``--artifacts`` so CI can upload them.  Exits 0 on
success, 1 with a diagnostic on any failure.  Stdlib only.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import time
import urllib.request

PROGRAM = """\
int data[10] = {3, -1, 7, 0, 12, -9, 2, 120, 5, -4};
int main(void) { return 0; }
"""

BATCH = ("data[..10]",       # truncated by the lines limit below
         "data[2000000]",    # faults: illegal memory reference
         "data[..4] >? 0")   # drains cleanly

SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.e+-]*$')
TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def scrape(url, want, timeout=30.0):
    """GET ``url`` until ``want`` appears in the body (the REPL runs
    queries asynchronously from this script's point of view)."""
    deadline = time.monotonic() + timeout
    body = ""
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode()
            if want in body:
                return body
        except OSError:
            pass
        time.sleep(0.2)
    fail(f"{url} never served {want!r}; last body:\n{body}")


def check_query_log(path):
    records = []
    for number, line in enumerate(open(path), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"{path}:{number} is not JSON: {error}")
    terminals = {}
    for record in records:
        if record["ev"] not in ("received", "parsed"):
            terminals.setdefault(record["qid"], []).append(record)
    if sorted(terminals) != [1, 2, 3]:
        fail(f"expected terminal records for qids 1..3, got "
             f"{sorted(terminals)}")
    for qid, rows in terminals.items():
        if len(rows) != 1:
            fail(f"query {qid} has {len(rows)} terminal records")
    outcomes = [terminals[qid][0]["ev"] for qid in (1, 2, 3)]
    if outcomes != ["truncated", "faulted", "drained"]:
        fail(f"unexpected outcomes {outcomes}")
    if terminals[1][0]["kind"] != "lines":
        fail(f"truncated query verdict {terminals[1][0].get('kind')!r}, "
             f"expected 'lines'")
    if terminals[2][0].get("error_type") != "DuelMemoryError":
        fail(f"faulted query error_type "
             f"{terminals[2][0].get('error_type')!r}")
    print(f"query log ok: {len(records)} records, outcomes {outcomes}")


def check_dumps(dump_dir):
    names = sorted(os.listdir(dump_dir))
    if len(names) < 2:
        fail(f"expected >=2 post-mortems in {dump_dir}, found {names}")
    faulted = None
    for name in names:
        artifact = json.load(open(os.path.join(dump_dir, name)))
        for key in ("version", "reason", "queries", "metrics", "limits"):
            if key not in artifact:
                fail(f"{name} is missing {key!r}")
        if "faulted" in artifact["reason"]:
            faulted = artifact
    if faulted is None:
        fail("no post-mortem names the faulted query")
    if "data[2000000]" not in faulted["reason"]:
        fail(f"faulted dump reason {faulted['reason']!r} does not "
             f"name the query")
    query = next(q for q in faulted["queries"]
                 if q["outcome"] == "faulted")
    if not query.get("explain"):
        fail("faulted query entry has no EXPLAIN tree")
    print(f"dumps ok: {names}, faulted dump carries "
          f"{len(query['explain'])}-node explain tree")


def check_metrics(body):
    for line in body.rstrip("\n").splitlines():
        if not (TYPE_LINE.match(line) or SAMPLE.match(line)):
            fail(f"invalid exposition line: {line!r}")
    for needle in ("duel_queries_total 3", "duel_governor_steps_total",
                   'duel_query_wall_ms_bucket{le="+Inf"} 3'):
        if needle not in body:
            fail(f"metrics body is missing {needle!r}")
    print(f"metrics ok: {len(body.splitlines())} exposition lines")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--artifacts", default="smoke-artifacts",
                        help="directory the run's artifacts land in")
    args = parser.parse_args()
    os.makedirs(args.artifacts, exist_ok=True)
    source = os.path.join(args.artifacts, "prog.c")
    qlog_path = os.path.join(args.artifacts, "queries.jsonl")
    dump_dir = os.path.join(args.artifacts, "dumps")
    with open(source, "w") as handle:
        handle.write(PROGRAM)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro",
         "--query-log", qlog_path, "--dump-dir", dump_dir,
         "--metrics-port", "0", source],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, env=env)
    try:
        url = None
        while url is None:
            line = process.stdout.readline()
            if not line:
                fail("REPL exited before announcing the metrics "
                     "endpoint")
            if line.startswith("metrics: "):
                url = line.split()[1]
        print(f"scraping {url}")
        process.stdin.write("limits lines 3\n")
        for text in BATCH:
            process.stdin.write(text + "\n")
        process.stdin.flush()
        body = scrape(url, "duel_queries_total 3")
        with open(os.path.join(args.artifacts, "metrics.prom"),
                  "w") as handle:
            handle.write(body)
        process.stdin.write("quit\n")
        process.stdin.close()
        if process.wait(timeout=30) != 0:
            fail(f"REPL exited with status {process.returncode}")
    finally:
        if process.poll() is None:
            process.kill()

    check_query_log(qlog_path)
    check_dumps(dump_dir)
    check_metrics(body)
    print("unattended smoke: all checks passed")


if __name__ == "__main__":
    main()
