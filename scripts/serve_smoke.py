#!/usr/bin/env python
"""End-to-end smoke of the query service (CI job).

Boots ``duel-serve`` (via ``python -m repro --serve``) as a real
subprocess with the query log and metrics endpoint on, parses the
announced ports, and drives it with **eight concurrent clients** over
real TCP — mixed read-only, side-effecting and runaway queries, plus
one mid-flight cancel — then shuts the server down with SIGINT and
validates everything:

* every client saw the outcomes isolation promises (writes visible to
  themselves only, runaways truncated with partials, cancels keeping
  their partial output);
* the shared query log parses line by line, qids strictly monotone in
  file order with exactly one terminal record per query;
* the live ``/metrics`` scrape shows the serve counters, the
  ``duel_stmt_*`` statement families, and **zero protocol errors**;
* every result carried a server-echoed trace id; a raw-frame probe
  with a client-chosen trace id sees it echoed on *every* frame, and
  the exported ``--trace-json`` span trees contain the full
  ``admission_queue → session_lock → parse → drive → stream`` server
  phases plus engine AST spans;
* the ``statements`` op aggregated the fleet's workload by shape with
  correct per-fingerprint call counts, and ``duel-top --once``
  renders (and ``--once --json`` emits) a snapshot of the live server
  with its locality panel;
* the ``accesses`` wire op classifies the array scan as sequential
  with a multi-page-size prefetch-advisor sweep, and the
  ``--access-trace`` JSONL holds exactly the head-sampled profiles;
* the server drains on SIGINT and reports its served/rejected totals.

Artifacts (query log, scraped metrics, outcome summary) land in
``--artifacts`` for CI upload.  Exits 0 on success, 1 with a
diagnostic on any failure.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.serve.client import DuelClient  # noqa: E402

CLIENTS = 8

#: ``--access-trace`` head-sampling: every 4th query exports a profile.
ACCESS_SAMPLE = 4

PROGRAM = """\
int data[40] = {3, -1, 7, 0, 12, -9, 2, 120, 5, -4,
                1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                -1, -2, -3, -4, -5, -6, -7, -8, -9, -10,
                11, 22, 33, 44, 55, 66, 77, 88, 99, 100};
int main(void) { return 0; }
"""


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def client_worker(port, index, summary):
    """One client's mixed workload; appends its outcomes to summary."""
    outcomes = []
    with DuelClient(port=port, client=f"smoke{index}",
                    timeout=60.0) as client:
        # Read-only query.
        read = client.duel("data[..10]")
        if read.outcome != "done" or len(read.lines) != 10:
            fail(f"client {index}: read came back {read.outcome} "
             f"with {len(read.lines)} lines")
        if not read.trace_id:
            fail(f"client {index}: read result carries no trace id")
        if not read.fingerprint:
            fail(f"client {index}: read result carries no fingerprint")
        outcomes.append(read.outcome)
        # Side-effecting write: visible to itself, then gone.
        write = client.duel(f"data[..10] = {5000 + index}")
        if write.outcome != "done":
            fail(f"client {index}: write came back {write.outcome}")
        again = client.duel("data[..10]")
        if again.lines != read.lines:
            fail(f"client {index}: write leaked into a later read")
        outcomes.extend([write.outcome, again.outcome])
        # Runaway: truncated by the default line budget, with partials.
        runaway = client.duel("data[(1..) % 40]")
        if runaway.outcome != "truncated" or not runaway.lines:
            fail(f"client {index}: runaway came back {runaway.outcome} "
                 f"with {len(runaway.lines)} lines")
        outcomes.append(runaway.outcome)
        # Cancel: issue a long query, cancel after the first values.
        client.limits("lines", 1_000_000)
        request = client.start("data[(1..) % 40]")
        seen = threading.Event()
        box = {}

        def collect():
            box["result"] = client.collect(
                request, on_line=lambda line: seen.set())

        thread = threading.Thread(target=collect)
        thread.start()
        if not seen.wait(timeout=60):
            fail(f"client {index}: cancel target produced no values")
        client.cancel(request)
        thread.join(timeout=60)
        if thread.is_alive():
            fail(f"client {index}: collect hung after cancel")
        cancelled = box["result"]
        if cancelled.outcome != "cancelled" or not cancelled.lines:
            fail(f"client {index}: cancel came back "
                 f"{cancelled.outcome} with {len(cancelled.lines)} lines")
        outcomes.append(cancelled.outcome)
    summary[index] = outcomes


def check_trace_propagation(port):
    """A client-chosen trace id must echo on every frame; the profile
    embed must contain the server phases and engine AST spans."""
    chosen = "smoke-trace-0123"
    with DuelClient(port=port, client="smoketrace",
                    timeout=60.0) as client:
        request = client.start("data[..5]", trace=chosen, profile=True)
        frames = []
        while True:
            frame = client.read_frame()
            if frame is None:
                fail("connection dropped during the trace probe")
            if frame.get("id") != request:
                continue
            frames.append(frame)
            if frame.get("ev") != "value":
                break
    for frame in frames:
        if frame.get("trace") != chosen:
            fail(f"{frame.get('ev')} frame lost the trace id: {frame}")
    terminal = frames[-1]
    if terminal.get("ev") != "done":
        fail(f"trace probe ended {terminal.get('ev')}")
    profile = terminal.get("profile")
    if not profile or profile.get("trace_id") != chosen:
        fail(f"terminal frame has no usable profile: {terminal}")
    phases = {span["name"] for span in profile["spans"]}
    missing = {"admission_queue", "session_lock", "parse", "drive",
               "stream"} - phases
    if missing:
        fail(f"profile is missing server phases {sorted(missing)}")
    if not profile.get("engine_spans"):
        fail("profile carries no engine AST spans")
    print(f"trace probe ok: {len(frames)} frames echoed "
          f"{chosen!r}, phases {sorted(phases)}")


def check_statements(port):
    """The fleet workload must aggregate by shape with exact counts.

    Every client ran the same five queries, so literal bucketing must
    fold them: ``data[..10]``, ``data[..5]`` and the re-read share one
    fingerprint (2 x CLIENTS + 1 probe calls), the write is its own
    shape (CLIENTS calls), and the runaway+cancel pair is one shape
    with CLIENTS truncations.
    """
    with DuelClient(port=port, client="smokestats",
                    timeout=60.0) as client:
        reply = client.statements(by="calls", limit=10)
        health = client.health()
    if not reply.get("enabled"):
        fail("statement statistics are disabled on the server")
    rows = reply["rows"]
    if reply["recorded"] != CLIENTS * 5 + 1:
        fail(f"statements recorded {reply['recorded']} queries, "
             f"expected {CLIENTS * 5 + 1}")
    by_calls = {row["calls"]: row for row in rows}
    reads = by_calls.get(2 * CLIENTS + 1)
    if reads is None or "=" in reads["text"]:
        fail(f"no read shape with {2 * CLIENTS + 1} calls in "
             f"{[(r['text'], r['calls']) for r in rows]}")
    truncated = [row for row in rows
                 if row["truncations"] == CLIENTS]
    if not truncated:
        fail(f"no shape with {CLIENTS} truncations in "
             f"{[(r['text'], r['truncations']) for r in rows]}")
    if health.get("status") != "ok":
        fail(f"health op reported {health.get('status')}")
    for key in ("breaker", "sessions", "watchdog"):
        if key not in health:
            fail(f"health op is missing the {key!r} subsystem")
    print(f"statements ok: {len(rows)} shapes, "
          f"{reply['recorded']} queries aggregated")


def check_traces_file(path):
    """Exported span trees must be valid JSONL tagged with trace ids."""
    records = []
    for number, line in enumerate(open(path), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"{path}:{number} is not JSON: {error}")
    if not records:
        fail("no traces were exported")
    for record in records:
        if record.get("ev") != "request" or not record.get("trace_id"):
            fail(f"malformed trace record: {record}")
    probe = [r for r in records
             if r["trace_id"] == "smoke-trace-0123"]
    if len(probe) != 1:
        fail(f"expected exactly one exported probe trace, "
             f"found {len(probe)}")
    names = {span["name"] for span in probe[0]["spans"]}
    if not {"admission_queue", "drive", "stream"} <= names:
        fail(f"probe trace spans incomplete: {sorted(names)}")
    print(f"trace export ok: {len(records)} span trees")


def check_accesses(port):
    """The ``accesses`` wire op must return a classified profile.

    ``data[..40] !=? 0`` is a contiguous int scan: the observatory
    must call it ``sequential``, report its page footprint, and the
    prefetch advisor must sweep at least two page sizes.
    """
    with DuelClient(port=port, client="smokeaccess",
                    timeout=60.0) as client:
        reply = client.accesses("data[..40] !=? 0")
        health = client.health()
    if reply.get("outcome") != "done":
        fail(f"accesses op came back {reply.get('outcome')}: {reply}")
    profile = reply.get("profile") or {}
    if profile.get("pattern") != "sequential":
        fail(f"expected a sequential classification for the array "
             f"scan, got {profile.get('pattern')!r}")
    if profile.get("reads", 0) < 40 or profile.get("unique_pages", 0) < 2:
        fail(f"implausible access profile: {profile}")
    advisor = reply.get("advisor") or []
    page_sizes = {entry.get("page_size") for entry in advisor}
    if len(page_sizes) < 2:
        fail(f"advisor swept {sorted(page_sizes)}, expected >= 2 "
             f"page sizes")
    if any(not 0.0 <= entry.get("hit_rate", -1) <= 1.0
           for entry in advisor):
        fail(f"advisor hit rates out of range: {advisor}")
    served = (health.get("accesses") or {}).get("served")
    if served != 1:
        fail(f"health reports {served} accesses ops, expected 1")
    print(f"accesses op ok: {profile['pattern']}, "
          f"{profile['reads']} reads, {profile['unique_pages']} pages, "
          f"advisor swept {len(advisor)} configurations")


def check_access_trace(path):
    """The ``--access-trace`` JSONL must parse with sane profiles.

    Sampling is counter-based (1-in-``ACCESS_SAMPLE``) and the
    ``accesses`` probe always exports, so the record count is exact
    whatever the client interleaving was.
    """
    records = []
    for number, line in enumerate(open(path), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"{path}:{number} is not JSON: {error}")
    sampled = (CLIENTS * 5 + 1) // ACCESS_SAMPLE
    expected = sampled + 1                     # + the forced probe
    if len(records) != expected:
        fail(f"expected {expected} access records ({sampled} sampled "
             f"+ 1 probe), found {len(records)}")
    for record in records:
        if record.get("ev") != "access":
            fail(f"malformed access record: {record}")
        profile = record.get("profile") or {}
        for key in ("pattern", "reads", "unique_pages",
                    "stride_histogram"):
            if key not in profile:
                fail(f"access profile missing {key!r}: {record}")
        if not record.get("fingerprint"):
            fail(f"access record without fingerprint: {record}")
    probes = [r for r in records if r["text"] == "data[..40] !=? 0"]
    if len(probes) != 1 or probes[0]["profile"]["pattern"] \
            != "sequential":
        fail(f"probe access record wrong: {probes}")
    print(f"access trace ok: {len(records)} profiles exported, "
          f"1-in-{ACCESS_SAMPLE} sampling held")


def check_duel_top(port, env, artifacts):
    """``duel-top --once`` (rendered and ``--json``) against the live
    server."""
    top = subprocess.run(
        [sys.executable, "-m", "repro.serve.ops",
         "--port", str(port), "--once"],
        capture_output=True, text=True, env=env, timeout=60)
    with open(os.path.join(artifacts, "duel-top.txt"), "w") as handle:
        handle.write(top.stdout)
        if top.stderr:
            handle.write(top.stderr)
    if top.returncode != 0:
        fail(f"duel-top --once exited {top.returncode}: {top.stderr}")
    for needle in ("duel-top", "breaker:", "top shapes by", "calls",
                   "locality:"):
        if needle not in top.stdout:
            fail(f"duel-top output is missing {needle!r}:\n"
                 f"{top.stdout}")
    as_json = subprocess.run(
        [sys.executable, "-m", "repro.serve.ops",
         "--port", str(port), "--once", "--json", "--by", "reads"],
        capture_output=True, text=True, env=env, timeout=60)
    if as_json.returncode != 0:
        fail(f"duel-top --json exited {as_json.returncode}: "
             f"{as_json.stderr}")
    try:
        doc = json.loads(as_json.stdout)
    except json.JSONDecodeError as error:
        fail(f"duel-top --json is not JSON: {error}")
    with open(os.path.join(artifacts, "duel-top.json"), "w") as handle:
        handle.write(as_json.stdout)
    if doc.get("status") != "ok":
        fail(f"duel-top --json reports status {doc.get('status')!r}")
    locality = doc.get("locality") or {}
    if locality.get("accesses", {}).get("served") != 1:
        fail(f"duel-top --json locality counters wrong: {locality}")
    if not locality.get("shapes"):
        fail("duel-top --json carries no profiled shapes")
    if not doc.get("statements", {}).get("rows"):
        fail("duel-top --json carries no statement rows")
    print("duel-top ok: rendered and JSON snapshots agree with "
          "the live server")


def check_query_log(path):
    records = []
    for number, line in enumerate(open(path), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            fail(f"{path}:{number} is not JSON: {error}")
    received = [r["qid"] for r in records if r["ev"] == "received"]
    if received != sorted(received):
        fail("received qids are not monotone in file order")
    if len(received) != len(set(received)):
        fail("duplicate qids in the query log")
    terminals = {}
    for record in records:
        if record["ev"] not in ("received", "parsed", "server"):
            terminals.setdefault(record["qid"], []).append(record["ev"])
    for qid, events in terminals.items():
        if len(events) != 1:
            fail(f"query {qid} has {len(events)} terminal records: "
                 f"{events}")
    # read, write, re-read, runaway, cancelled per client + the trace
    # probe + the accesses probe
    expected = CLIENTS * 5 + 2
    if len(received) != expected:
        fail(f"expected {expected} queries in the log, found "
             f"{len(received)}")
    for record in records:
        if record["ev"] in ("drained", "truncated", "cancelled"):
            if not record.get("trace_id"):
                fail(f"terminal record without trace_id: {record}")
            if not record.get("fingerprint"):
                fail(f"terminal record without fingerprint: {record}")
    counts = {}
    for events in terminals.values():
        counts[events[0]] = counts.get(events[0], 0) + 1
    if counts.get("drained") != CLIENTS * 3 + 2:
        fail(f"expected {CLIENTS * 3 + 2} drained queries, "
             f"got {counts}")
    if counts.get("truncated") != CLIENTS:
        fail(f"expected {CLIENTS} truncated queries, got {counts}")
    if counts.get("cancelled") != CLIENTS:
        fail(f"expected {CLIENTS} cancelled queries, got {counts}")
    print(f"query log ok: {len(records)} records, {len(received)} "
          f"queries, outcomes {counts}")


def check_metrics(body):
    for needle in ("duel_serve_connections_total",
                   "duel_serve_queries_total",
                   "duel_queries_total",
                   "duel_stmt_calls_total",
                   "duel_stmt_latency_ms",
                   "duel_stmt_table_entries",
                   "duel_target_reads_per_value",
                   "duel_target_page_locality",
                   "duel_target_pattern_total",
                   "duel_target_profiles_total"):
        if needle not in body:
            fail(f"metrics body is missing {needle!r}")
    if 'fingerprint="' not in body:
        fail("statement families carry no fingerprint labels")
    if "duel_serve_protocol_errors_total" in body:
        fail("server counted protocol errors during the smoke")
    if "duel_serve_internal_errors_total" in body:
        fail("server counted internal errors during the smoke")
    print(f"metrics ok: {len(body.splitlines())} exposition lines, "
          f"zero protocol errors")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--artifacts", default="serve-smoke-artifacts",
                        help="directory the run's artifacts land in")
    args = parser.parse_args()
    os.makedirs(args.artifacts, exist_ok=True)
    source = os.path.join(args.artifacts, "prog.c")
    qlog_path = os.path.join(args.artifacts, "queries.jsonl")
    traces_path = os.path.join(args.artifacts, "traces.jsonl")
    access_path = os.path.join(args.artifacts, "accesses.jsonl")
    with open(source, "w") as handle:
        handle.write(PROGRAM)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve",
         "--port", "0", "--workers", "4", "--max-clients", "16",
         "--query-log", qlog_path, "--trace-json", traces_path,
         "--access-trace", access_path,
         "--access-sample", str(ACCESS_SAMPLE),
         "--metrics-port", "0", source],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    metrics_url = None
    port = None
    try:
        deadline = time.monotonic() + 30
        while port is None and time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                fail("server exited before announcing its port")
            sys.stdout.write(line)
            if line.startswith("metrics: "):
                metrics_url = line.split()[1]
            elif line.startswith("serving on "):
                port = int(line.rsplit(":", 1)[1])
        if port is None:
            fail("server never announced 'serving on host:port'")
        if metrics_url is None:
            fail("server never announced its metrics endpoint")
        print(f"driving {CLIENTS} concurrent clients against :{port}")

        summary = {}
        threads = [threading.Thread(target=client_worker,
                                    args=(port, index, summary))
                   for index in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        if any(thread.is_alive() for thread in threads):
            fail("a client hung")
        if len(summary) != CLIENTS:
            fail(f"only {len(summary)}/{CLIENTS} clients finished")

        check_trace_propagation(port)
        check_statements(port)
        check_accesses(port)
        check_duel_top(port, env, args.artifacts)

        with urllib.request.urlopen(metrics_url, timeout=10) as response:
            body = response.read().decode()
        with open(os.path.join(args.artifacts, "metrics.prom"),
                  "w") as handle:
            handle.write(body)
        with open(os.path.join(args.artifacts, "outcomes.json"),
                  "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)

        # Graceful drain on SIGINT.
        process.send_signal(signal.SIGINT)
        tail = process.stdout.read()
        sys.stdout.write(tail)
        if process.wait(timeout=60) != 0:
            fail(f"server exited with status {process.returncode}")
        if "draining..." not in tail:
            fail("server never reported draining")
        if f"served {CLIENTS * 5 + 2} queries" not in tail:
            fail(f"server's served count is off: {tail!r}")
    finally:
        if process.poll() is None:
            process.kill()

    check_query_log(qlog_path)
    check_metrics(body)
    check_traces_file(traces_path)
    check_access_trace(access_path)
    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
