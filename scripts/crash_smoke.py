#!/usr/bin/env python
"""End-to-end crash smoke of the durable query service (CI job).

Boots ``duel-serve`` as a real subprocess with a ``--state-dir``,
drives concurrent clients through a committed-write workload, then
**SIGKILLs the server mid-workload** — no drain, no destructor, no
goodbye — and restarts it over the same state directory.  The run
proves the crash-only durability layer end to end:

* a **global hang timeout** kills the whole run — recovery that
  wedges is the failure mode this smoke exists to catch, and the
  restart itself must announce readiness within a wall-clock bound;
* every client **resumes its own session** across the restart — the
  resume keys issued by the killed lifetime are honored by the
  recovered one, with aliases intact;
* background readers **ride out the gap** via the client's restart
  window: refused dials during the restart wait instead of burning
  retries, and the same ``duel()`` call completes after recovery;
* committed writes are **exactly-once across the crash**: an
  idempotent increment retried after the restart is answered from
  the recovered cache (``replayed``), the final cell value shows a
  single application, and a cross-restart audit of both lifetimes'
  query logs finds each unique write text executed at most once;
* the recovered lifetime's query log carries the
  ``recover_begin``/``recover_done`` lifecycle records.

Artifacts (both query logs, the outcome summary) land in
``--artifacts`` for CI upload.  Exits 0 on success, 1 with a
diagnostic on any failure.
"""

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.serve.chaos import ServerProcess  # noqa: E402
from repro.serve.client import (DuelClient, RetryPolicy,  # noqa: E402
                                ServeError)

CLIENTS = 4
HANG_TIMEOUT = 180.0
RESTART_BOUND = 30.0

PROGRAM = """\
int data[40] = {3, -1, 7, 0, 12, -9, 2, 120, 5, -4,
                1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                -1, -2, -3, -4, -5, -6, -7, -8, -9, -10,
                11, 22, 33, 44, 55, 66, 77, 88, 99, 100};
int main(void) { return 0; }
"""

#: data[i] before the increment, straight from the initializer.
INITIAL = [3, -1, 7, 0]


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def arm_hang_timeout(server):
    def explode():
        print(f"FAIL: crash smoke exceeded the {HANG_TIMEOUT:.0f}s "
              "hang timeout", file=sys.stderr)
        try:
            server.terminate()
        except Exception:
            pass
        os._exit(1)

    timer = threading.Timer(HANG_TIMEOUT, explode)
    timer.daemon = True
    timer.start()
    return timer


def free_port():
    """A fixed port so both server lifetimes answer at one address."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def write_text(index):
    """Each client's unique idempotent increment (audit anchor)."""
    return f"data[{index}] = data[{index}] + 7"


def make_client(port, index):
    return DuelClient(
        port=port, client=f"crash{index}", timeout=20.0,
        retry=RetryPolicy(retries=6, base=0.3, factor=1.5,
                          max_backoff=1.0, jitter=0.0),
        restart_window=45.0)


def reader_loop(client, stop, record):
    """Background reads that must ride out the kill + restart."""
    ok = errors = 0
    while not stop.is_set():
        try:
            result = client.duel("data[..5]")
            if result.outcome == "done":
                ok += 1
            time.sleep(0.1)
        except (ServeError, OSError) as error:
            errors += 1
            record["last_error"] = str(error)
    record["reads_ok"] = ok
    record["errors"] = errors


def check_checkpoint_epoch(state_dir):
    """The durable checkpoint must carry the target's memory epoch.

    Page caches (PR 10) invalidate on epoch movement; a recovered
    server restores the checkpoint snapshot and advances past its
    recorded epoch, so no session can ever serve pre-crash cached
    pages.  This guards the serialization side: the ``DUELSNAP1``
    payload inside the newest checkpoint actually records an epoch.
    """
    import pickle
    import zlib

    from repro.serve.journal import StateStore
    from repro.target.snapshot import SNAP_MAGIC

    loaded = StateStore(state_dir, fsync="off").load_checkpoint()
    if loaded is None:
        fail(f"no valid checkpoint found under {state_dir!r}")
    lsn, payload = loaded
    blob = payload.get("snapshot", b"")
    if not blob.startswith(SNAP_MAGIC):
        fail("checkpoint snapshot is not a DUELSNAP1 blob")
    snap = pickle.loads(zlib.decompress(blob[len(SNAP_MAGIC):]))
    epoch = snap.get("epoch")
    if not isinstance(epoch, int) or epoch <= 0:
        fail(f"checkpoint lsn {lsn} snapshot carries no usable "
             f"memory epoch (got {epoch!r})")
    print(f"checkpoint epoch ok: lsn {lsn} snapshot records "
          f"epoch {epoch}")


def check_exactly_once(qlog_paths):
    """Each unique write text drove at most one execution, across
    every lifetime's audit log (recovery replays run unaudited)."""
    received = []
    server_kinds = {}
    for path in qlog_paths:
        for number, line in enumerate(open(path), 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{path}:{number} is not JSON: {error}")
            if record.get("ev") == "server":
                kind = record["kind"]
                server_kinds[kind] = server_kinds.get(kind, 0) + 1
            elif record.get("ev") == "received":
                received.append(record.get("text"))
    for index in range(CLIENTS):
        drives = received.count(write_text(index))
        if drives != 1:
            fail(f"write {write_text(index)!r} executed {drives} "
                 "times across the restart (want exactly 1)")
    for kind in ("recover_begin", "recover_done"):
        if not server_kinds.get(kind):
            fail(f"the recovered lifetime never logged {kind!r}")
    print(f"qlog audit ok: {len(received)} query drives across "
          f"{len(qlog_paths)} lifetimes, server events {server_kinds}")
    return server_kinds


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--artifacts", default="crash-smoke-artifacts",
                        help="directory the run's artifacts land in")
    args = parser.parse_args()
    os.makedirs(args.artifacts, exist_ok=True)
    source = os.path.join(args.artifacts, "prog.c")
    state_dir = os.path.join(args.artifacts, "state")
    qlogs = [os.path.join(args.artifacts, f"queries-life{n}.jsonl")
             for n in (1, 2)]
    with open(source, "w") as handle:
        handle.write(PROGRAM)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    port = free_port()
    server = ServerProcess(
        [source, "--serve", "--port", str(port),
         "--state-dir", state_dir, "--commit-writes",
         "--journal-fsync", "interval:1.0",
         "--checkpoint-interval", "2",
         "--query-log", qlogs[0], "--query-log-fsync",
         "--workers", "4", "--max-clients", "16",
         "--heartbeat-interval", "0.5", "--heartbeat-timeout", "5",
         "--resume-ttl", "120"],
        timeout=60.0, env=env)
    timer = arm_hang_timeout(server)
    try:
        server.start()
        print(f"lifetime 1 serving on :{server.port}")

        # Phase A: every client aliases a cell and commits its unique
        # idempotent increment, then starts a background read loop.
        clients, tokens, readers = [], [], []
        stop = threading.Event()
        reader_stats = [dict() for _ in range(CLIENTS)]
        for index in range(CLIENTS):
            client = make_client(port, index)
            token = f"inc-{index}"
            if client.duel(f"t{index} := data[{index}]").outcome != "done":
                fail(f"client {index}: alias define failed")
            result = client.duel(write_text(index), idem=token)
            if result.outcome != "done":
                fail(f"client {index}: write outcome {result.outcome!r}")
            clients.append(client)
            tokens.append(token)
            thread = threading.Thread(
                target=reader_loop,
                args=(client, stop, reader_stats[index]))
            thread.start()
            readers.append(thread)
        time.sleep(0.5)                    # readers mid-flight

        # The crash: SIGKILL, then restart over the same state dir
        # (fresh audit log — the killed lifetime's file stays as
        # evidence), with the readers still hammering.
        server.sigkill()
        print("SIGKILL delivered mid-workload")
        server.args[server.args.index(qlogs[0])] = qlogs[1]
        restart_started = time.monotonic()
        server.restart()
        restart_s = time.monotonic() - restart_started
        print(f"lifetime 2 serving on :{server.port} "
              f"after {restart_s:.2f}s")
        if restart_s > RESTART_BOUND:
            fail(f"restart took {restart_s:.1f}s "
                 f"(bound {RESTART_BOUND:.0f}s)")
        state_lines = [line for line in server.stdout_lines
                       if line.startswith("state:")]
        if not state_lines:
            fail("recovered lifetime never announced its state dir")
        print(state_lines[-1].strip())
        if f"recovered {CLIENTS} sessions" not in state_lines[-1]:
            fail(f"expected {CLIENTS} recovered sessions in "
                 f"{state_lines[-1].strip()!r}")

        # Let every reader ride out the gap: the restart window keeps
        # its refused redials uncharged until the recovered lifetime
        # answers and the client resumes its parked session.
        deadline = time.monotonic() + 60
        while (not all(client.resumed for client in clients)
               and time.monotonic() < deadline):
            time.sleep(0.2)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
        if any(thread.is_alive() for thread in readers):
            fail("a background reader hung across the restart")

        # Phase B: same client objects, same tokens — the retry must
        # replay from the recovered idempotency cache, the cell must
        # show exactly one increment, and the alias must still bind.
        summary = {}
        for index, client in enumerate(clients):
            if not client.resumed:
                fail(f"client {index} did not resume its session "
                     "across the restart")
            retry = client.duel(write_text(index), idem=tokens[index])
            if retry.outcome != "done":
                fail(f"client {index}: retry outcome "
                     f"{retry.outcome!r}")
            if not retry.replayed:
                fail(f"client {index}: retried token was re-executed, "
                     "not replayed from the recovered cache")
            want = INITIAL[index] + 7
            read = client.duel(f"data[{index}]")
            line = read.lines[-1] if read.lines else ""
            if line != f"data[{index}] = {want}":
                fail(f"client {index}: expected exactly one increment "
                     f"(data[{index}] = {want}), got {line!r}")
            alias = client.duel(f"t{index}")
            aline = alias.lines[-1] if alias.lines else ""
            if aline != f"t{index} = {want}":
                fail(f"client {index}: alias lost across restart "
                     f"(got {aline!r})")
            summary[index] = {"resumed": client.resumed,
                              "replayed": retry.replayed,
                              "final": line,
                              "reader": reader_stats[index]}
            client.close()
        print(f"clients ok: {CLIENTS} resumed, {CLIENTS} replayed, "
              "exactly-once increments verified")

        with open(os.path.join(args.artifacts, "outcomes.json"),
                  "w") as handle:
            json.dump({"summary": {str(k): v
                                   for k, v in summary.items()},
                       "restart_s": round(restart_s, 3)},
                      handle, indent=2, sort_keys=True)

        # Clean shutdown of the recovered lifetime (SIGTERM drains).
        server.proc.send_signal(signal.SIGTERM)
        if server.proc.wait(timeout=60) != 0:
            fail(f"recovered server exited with status "
                 f"{server.proc.returncode}")
    finally:
        timer.cancel()
        server.terminate()

    check_checkpoint_epoch(state_dir)
    check_exactly_once(qlogs)
    print("crash smoke: all checks passed")


if __name__ == "__main__":
    main()
