"""Prometheus text-format exposition for the metrics registry.

The :class:`~repro.obs.metrics.MetricsRegistry` already accumulates
counters, gauges and fixed-bucket histograms across queries; this
module renders that state in the Prometheus text exposition format
(version 0.0.4) and serves it from a daemon-thread HTTP endpoint, so
a long-running ``duel`` session is scrapeable like any service::

    duel_queries_total 42
    duel_query_wall_ms_bucket{le="0.5"} 17
    duel_query_wall_ms_bucket{le="+Inf"} 42
    duel_query_wall_ms_sum 104.2
    duel_query_wall_ms_count 42

Registry histograms store per-bucket (non-cumulative) counts with
inclusive upper bounds — exactly Prometheus ``le`` semantics — so the
renderer only has to accumulate them left to right; the overflow
bucket becomes the ``+Inf`` bucket.  Output is deterministic: names
are sorted within each section, making successive scrapes diffable.

The server is intentionally tiny (stdlib ``http.server``, daemon
threads, bound to localhost by default); it serves ``GET /metrics``
and a ``GET /healthz`` liveness probe and nothing else.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

#: The content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default metric-name prefix (the exposition namespace).
PREFIX = "duel_"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize(name: str) -> str:
    """A valid Prometheus metric name for ``name``."""
    cleaned = _INVALID.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """``value`` escaped for use inside ``{label="..."}``.

    The text format requires backslash, double-quote and newline to be
    escaped inside label values — statement fingerprints carry raw
    query shapes (``(string ?)``, C declarations with quotes), so the
    statement families must escape or the exposition breaks mid-scrape.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _number(value) -> str:
    """Render a sample value (ints stay integral, floats full-precision)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry, prefix: str = PREFIX,
                      collectors=()) -> str:
    """The whole registry in Prometheus text format (trailing newline).

    ``collectors`` are extra callables returning pre-rendered exposition
    lines (already prefixed/escaped) appended after the registry — the
    serve layer plugs the labeled statement-statistics families in
    here.  A failing collector is skipped: a scrape must never 500
    because one subsystem's renderer raised.
    """
    lines: list[str] = []
    for name, counter in registry.counters().items():
        full = prefix + sanitize(name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_number(counter.value)}")
    for name, gauge in registry.gauges().items():
        full = prefix + sanitize(name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_number(gauge.value)}")
    for name, hist in registry.histograms().items():
        full = prefix + sanitize(name)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(f'{full}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{full}_sum {_number(hist.total)}")
        lines.append(f"{full}_count {hist.count}")
    for collector in collectors:
        try:
            lines.extend(collector())
        except Exception:
            continue
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Serves ``/metrics`` from a daemon thread (``--metrics-port``).

    ``port=0`` binds an ephemeral port; :meth:`start` returns the
    actual one.  The handler renders the registry at request time, so
    every scrape sees current totals.  :meth:`stop` shuts the server
    down and joins the thread; the daemon flag means a forgotten
    server never blocks interpreter exit.
    """

    def __init__(self, registry, port: int = 0, host: str = "127.0.0.1",
                 health=None, collectors=()):
        self.registry = registry
        self.host = host
        self.port = port
        #: Extra exposition-line collectors appended to every scrape
        #: (see :func:`render_prometheus`).
        self.collectors = tuple(collectors)
        #: Optional callable returning ``(status code, body text)`` for
        #: ``/healthz`` — the serve layer plugs its
        #: :meth:`~repro.serve.health.ServerHealth.healthz` in here so
        #: the probe reports ok/degraded/draining instead of a static
        #: liveness "ok".
        self.health = health
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        if self._server is not None:
            return self.port
        registry = self.registry
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                status = 200
                if path in ("/", "/metrics"):
                    body = render_prometheus(
                        registry,
                        collectors=server.collectors).encode("utf-8")
                    content_type = CONTENT_TYPE
                elif path == "/healthz":
                    if server.health is not None:
                        try:
                            status, text = server.health()
                        except Exception:
                            status, text = 500, "health probe failed\n"
                        body = text.encode("utf-8")
                    else:
                        body = b"ok\n"
                    content_type = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass                  # scrapes must not spam the REPL

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="duel-metrics", daemon=True)
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def stop(self) -> None:
        """Shut down the server and join its thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5)
