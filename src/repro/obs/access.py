"""Target memory-access observatory: traces, profiles, prefetch advice.

The fleet is legible at the query level (spans, qlog, statements,
``duel-top``) but the scalar read counter says nothing about *where*
target traffic lands: BENCH_3 records ``hash_scan`` issuing 1234
``get_target_bytes`` calls to yield 2 values with no addresses, no
strides, no locality.  This module instruments the same narrow
DebuggerInterface Hanson's design already funnels everything through
(:class:`~repro.target.interface.AccessTracingBackend` is the hook)
and turns the raw access stream into answers:

* :class:`AccessTracer` — a bounded, lock-safe ring of per-query
  access records ``(op, address, size, span)`` where ``span`` is the
  preorder index of the AST node being pulled (attributed through the
  engine's :class:`~repro.obs.trace.QueryTracer` stack, the same way
  read *counts* land on spans today);
* :func:`profile_records` — the per-query **access profile**: total
  and unique bytes (interval-merged), unique pages at a configurable
  page size, re-read ratio, a stride histogram over consecutive read
  addresses, and a scan-pattern classification;
* :func:`classify_pattern` — ``sequential`` (dominant stride equals
  the access size: a contiguous scan), ``strided`` (one dominant
  stride, e.g. one field per array-of-struct slot), ``pointer-chase``
  (irregular strides but every cell touched about once — a chain
  walk), ``random`` (irregular strides with re-reads), or ``scalar``
  for queries too small to call;
* :func:`simulate_page_cache` / :func:`advise` — the **prefetch
  advisor**: replay the recorded trace through a simulated LRU page
  cache, sweeping page size × capacity, and report the projected hit
  rate each configuration would have had.  This quantifies ROADMAP
  item 1's page-cache/prefetcher win *before* anyone builds it;
* :class:`AccessLog` — ``--access-trace`` JSONL export with the same
  head-based 1-in-N sampling discipline as the request-trace log.

Hot-path discipline matches every prior observability layer: with
access tracing off the evaluator splices the
:class:`~repro.target.interface.AccessTracingBackend` hop out of the
read path entirely (attach/detach rebinds the outer counter's bound
methods), gated <5% on P3 by ``benchmarks/bench_access.py``;
everything in this module runs only when a tracer is attached.
"""

from __future__ import annotations

import json
import os
import threading
from collections import Counter, OrderedDict, deque
from typing import Optional

#: Default page size (bytes) profiles aggregate locality at.
DEFAULT_PAGE_SIZE = 64

#: Default ring capacity: enough for the worst observed workload
#: (hash_scan's 1234 reads) with two orders of magnitude of headroom.
DEFAULT_CAPACITY = 65536

#: The advisor's default sweep: page size × cache capacity (pages).
ADVISOR_PAGE_SIZES = (64, 256, 4096)
ADVISOR_CAPACITIES = (4, 32)

#: Classification vocabulary, closed on purpose (Prometheus labels).
PATTERNS = ("sequential", "strided", "pointer-chase", "random", "scalar")

#: Minimum consecutive-read deltas before a pattern is called.
_MIN_DELTAS = 4

#: Dominant-stride share at or above which a scan is regular.
_DOMINANT_SHARE = 0.70

#: Revisit ratio below which an irregular scan is a chain walk
#: (every cell visited about once) rather than random access.
_CHASE_REVISIT = 0.05


class AccessTracer:
    """A bounded, lock-safe ring of one query's target accesses.

    Fed by :class:`~repro.target.interface.AccessTracingBackend` with
    one :meth:`on_access` call per ``get_target_bytes`` /
    ``put_target_bytes``.  ``spans`` is the query's engine tracer
    (:class:`~repro.obs.trace.QueryTracer`); when given, each record
    carries the preorder index of the AST node currently being pulled,
    so a profile can say *which generator* produced the traffic.  The
    ring drops oldest records past ``capacity`` (``dropped`` counts
    them) — an unbounded ``1..`` query cannot grow memory here.
    """

    __slots__ = ("capacity", "_records", "dropped", "total_bytes",
                 "reads", "writes", "_spans", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, spans=None):
        self.capacity = capacity
        self._records: deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0
        #: Cumulative bytes moved (survives ring rollover).
        self.total_bytes = 0
        self.reads = 0
        self.writes = 0
        self._spans = spans
        self._lock = threading.Lock()

    def on_access(self, op: str, address: int, size: int) -> None:
        """Record one target access (``op`` is ``"r"`` or ``"w"``)."""
        spans = self._spans
        stack = spans._stack if spans is not None else None
        span = stack[-1].index if stack else -1
        with self._lock:
            if len(self._records) == self.capacity:
                self.dropped += 1
            self._records.append((op, address, size, span))
            self.total_bytes += size
            if op == "r":
                self.reads += 1
            else:
                self.writes += 1

    def records(self) -> list[tuple]:
        """A consistent copy of the ring's ``(op, addr, size, span)``."""
        with self._lock:
            return list(self._records)

    def accesses(self) -> list[tuple[str, int, int]]:
        """The ``(op, address, size)`` sequence (engine-parity oracle)."""
        return [(op, addr, size) for op, addr, size, _ in self.records()]

    def profile(self, page_size: int = DEFAULT_PAGE_SIZE) -> dict:
        """The query's access profile (see :func:`profile_records`)."""
        profile = profile_records(self.records(), page_size=page_size)
        profile["dropped"] = self.dropped
        return profile


def _merge_intervals(intervals: list[tuple[int, int]]) -> int:
    """Total covered length of ``[start, end)`` intervals."""
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    start, end = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > end:
            covered += end - start
            start, end = lo, hi
        elif hi > end:
            end = hi
    return covered + (end - start)


def classify_pattern(stride_counts: Counter, deltas: int,
                     dominant_size: int, revisit_ratio: float) -> str:
    """Name the scan pattern from the stride histogram.

    ``stride_counts`` histograms the *non-zero* deltas between
    consecutive read addresses (in-place re-reads say nothing about
    scan direction); ``dominant_size`` is the most common access
    size; ``revisit_ratio`` is the fraction of reads that returned to
    an address left earlier.  The heuristics, in order: too few
    deltas is ``scalar``; one stride covering ≥70% of the deltas is a
    regular scan — ``sequential`` when the stride equals the access
    size (contiguous), ``strided`` otherwise (e.g. one field per
    struct slot); an irregular scan that touches each cell about once
    (revisit ratio ≤5%) is a ``pointer-chase`` (each address came out
    of the previous read — a chain has no reason to come back);
    irregular with revisits is ``random``.
    """
    if deltas < _MIN_DELTAS:
        return "scalar"
    stride, count = stride_counts.most_common(1)[0]
    share = count / deltas
    if share >= _DOMINANT_SHARE:
        if 0 < stride <= dominant_size:
            return "sequential"
        return "strided"
    if revisit_ratio <= _CHASE_REVISIT:
        return "pointer-chase"
    return "random"


def profile_records(records: list[tuple],
                    page_size: int = DEFAULT_PAGE_SIZE) -> dict:
    """Aggregate raw access records into one per-query profile dict.

    Pure function of the recorded ring — the serve layer, the REPL
    ``accesses`` report, the statements table and the JSONL export all
    consume this one shape.
    """
    if page_size < 1:
        raise ValueError("page size must be >= 1")
    reads = writes = 0
    total_bytes = 0
    intervals: list[tuple[int, int]] = []
    pages: set[int] = set()
    by_span: Counter = Counter()
    strides: Counter = Counter()
    sizes: Counter = Counter()
    seen: set[int] = set()
    inplace = 0
    revisits = 0
    last_read: Optional[int] = None
    for op, address, size, span in records:
        total_bytes += size
        intervals.append((address, address + size))
        pages.update(range(address // page_size,
                           (address + size - 1) // page_size + 1))
        by_span[span] += 1
        if op == "r":
            reads += 1
            sizes[size] += 1
            if last_read is not None:
                delta = address - last_read
                if delta:
                    strides[delta] += 1
                    if address in seen:
                        revisits += 1
                else:
                    # An in-place re-read (the evaluator loading the
                    # same cell twice) says nothing about the scan
                    # direction — counted apart so a sequential scan
                    # with double-loads still classifies sequential.
                    inplace += 1
            seen.add(address)
            last_read = address
        else:
            writes += 1
    accesses = reads + writes
    unique_bytes = _merge_intervals(intervals)
    reread_ratio = ((total_bytes - unique_bytes) / total_bytes
                    if total_bytes else 0.0)
    deltas = sum(strides.values())
    dominant_size = sizes.most_common(1)[0][0] if sizes else 0
    revisit_ratio = revisits / reads if reads else 0.0
    if strides:
        dominant_stride, dominant_count = strides.most_common(1)[0]
        dominant_share = dominant_count / deltas
    else:
        dominant_stride, dominant_share = None, 0.0
    pattern = classify_pattern(strides, deltas, dominant_size,
                               revisit_ratio)
    unique_pages = len(pages)
    return {
        "accesses": accesses,
        "reads": reads,
        "writes": writes,
        "total_bytes": total_bytes,
        "unique_bytes": unique_bytes,
        "reread_ratio": round(reread_ratio, 4),
        "page_size": page_size,
        "unique_pages": unique_pages,
        # Accesses per touched page: the locality number an operator
        # compares against page_size/access_size (the contiguous ideal).
        "page_locality": round(accesses / unique_pages, 2)
        if unique_pages else 0.0,
        "stride_histogram": [[stride, count] for stride, count
                             in strides.most_common(8)],
        "inplace_rereads": inplace,
        "revisit_ratio": round(revisit_ratio, 4),
        "dominant_stride": dominant_stride,
        "dominant_share": round(dominant_share, 4),
        "pattern": pattern,
        "top_spans": [[span, count] for span, count
                      in by_span.most_common(4)],
        "dropped": 0,
    }


def compact_profile(profile: dict) -> dict:
    """The handful of locality fields qlog terminal records carry."""
    return {"accesses": profile["accesses"],
            "unique_bytes": profile["unique_bytes"],
            "unique_pages": profile["unique_pages"],
            "page_size": profile["page_size"],
            "reread_ratio": profile["reread_ratio"],
            "pattern": profile["pattern"]}


# -- the prefetch advisor ----------------------------------------------------

def simulate_page_cache(records: list[tuple], page_size: int,
                        capacity: int) -> dict:
    """Replay the recorded trace through a simulated LRU page cache.

    Every access touches the page(s) covering its byte range; a page
    already resident is a hit (and refreshed), a missing page is a
    miss that evicts the least recently used page past ``capacity``.
    The projected hit rate is what a page-granular read cache in front
    of ``get_target_bytes`` (ROADMAP item 1) would have delivered for
    this exact query — measured from the trace, not guessed.
    """
    if page_size < 1 or capacity < 1:
        raise ValueError("page size and capacity must be >= 1")
    lru: OrderedDict = OrderedDict()
    hits = misses = 0
    for op, address, size, _span in records:
        for page in range(address // page_size,
                          (address + size - 1) // page_size + 1):
            if page in lru:
                hits += 1
                lru.move_to_end(page)
            else:
                misses += 1
                lru[page] = None
                if len(lru) > capacity:
                    lru.popitem(last=False)
    touches = hits + misses
    return {"page_size": page_size,
            "capacity": capacity,
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / touches, 4) if touches else 0.0,
            "fetched_bytes": misses * page_size}


def advise(records: list[tuple],
           page_sizes=ADVISOR_PAGE_SIZES,
           capacities=ADVISOR_CAPACITIES) -> list[dict]:
    """Sweep page size × capacity; best projected hit rate first.

    Ties break toward the smaller cache footprint (page_size ×
    capacity): the advisor should recommend the cheapest cache that
    achieves the hit rate, not the biggest.
    """
    projections = [simulate_page_cache(records, page_size, capacity)
                   for page_size in page_sizes
                   for capacity in capacities]
    projections.sort(key=lambda p: (-p["hit_rate"],
                                    p["page_size"] * p["capacity"]))
    return projections


def render_report(text: str, profile: dict,
                  advice: list[dict],
                  cache: Optional[dict] = None) -> list[str]:
    """Human-readable lines for the REPL ``accesses`` command.

    ``cache`` (when a real page cache is attached to the session) is
    the :meth:`~repro.core.session.DuelSession.cache_report` dict:
    the measured hit rate at the configured (page size, capacity)
    point rendered next to the advisor's projection for the same
    recorded trace, so operators can see whether the model that
    recommended the configuration still predicts the cache they got.
    """
    lines = [f"accesses: {text}"]
    lines.append(
        f"  {profile['accesses']} accesses "
        f"({profile['reads']} reads, {profile['writes']} writes), "
        f"{profile['total_bytes']} bytes moved, "
        f"{profile['unique_bytes']} unique "
        f"(re-read {profile['reread_ratio'] * 100:.1f}%)")
    dominant = profile["dominant_stride"]
    if dominant is not None:
        lines.append(
            f"  pattern: {profile['pattern']} "
            f"(dominant stride {dominant:+d} = "
            f"{profile['dominant_share'] * 100:.1f}% of deltas)")
    else:
        lines.append(f"  pattern: {profile['pattern']}")
    lines.append(
        f"  pages({profile['page_size']}B): "
        f"{profile['unique_pages']} unique, locality "
        f"{profile['page_locality']:.1f} accesses/page")
    if profile["stride_histogram"]:
        top = "  ".join(f"{stride:+d}×{count}"
                        for stride, count in profile["stride_histogram"])
        lines.append(f"  strides: {top}")
    if profile.get("dropped"):
        lines.append(f"  (ring dropped {profile['dropped']} oldest "
                     f"records; profile covers the tail)")
    if advice:
        lines.append("  prefetch advisor (simulated LRU page cache):")
        for entry in advice:
            lines.append(
                f"    {entry['page_size']:>5}B × "
                f"{entry['capacity']:>3} pages: "
                f"{entry['hit_rate'] * 100:5.1f}% hits "
                f"({entry['misses']} fetches, "
                f"{entry['fetched_bytes']}B fetched)")
        best = advice[0]
        lines.append(
            f"  projected best: {best['page_size']}B × "
            f"{best['capacity']} pages → "
            f"{best['hit_rate'] * 100:.1f}% of "
            f"{profile['accesses']} accesses served from cache "
            f"({best['misses']} bulk fetches)")
    if cache:
        lines.append(
            f"  page cache ({cache['mode']}, {cache['page_size']}B × "
            f"{cache['capacity']} pages): "
            f"{cache['measured_hit_rate'] * 100:.1f}% hits measured, "
            f"{cache['logical_reads']} logical → "
            f"{cache['physical_reads']} physical reads")
        projected = cache.get("projected_hit_rate")
        if projected is not None:
            gap = cache.get("projection_gap", 0.0)
            lines.append(
                f"  advisor projection at this point: "
                f"{projected * 100:.1f}% hits "
                f"(measured {gap * 100:+.1f}pp vs projected)")
        if cache.get("prefetched_bytes"):
            lines.append(
                f"  prefetched {cache['prefetched_bytes']}B ahead of "
                f"use (pattern: {cache['pattern']})")
    return lines


class AccessLog:
    """Thread-safe JSONL exporter for per-query access profiles.

    The ``--access-trace`` sink.  Rides the same head-based sampling
    discipline as :class:`~repro.obs.reqtrace.TraceLog`: ``sample=N``
    profiles (and exports) every Nth query — counter-based, so tests
    are deterministic — and the caller pays the tracing cost only for
    sampled queries.  :meth:`export` writes whatever it is handed; the
    sampling policy lives with the caller.
    """

    def __init__(self, stream_or_path, sample: int = 1):
        if sample < 1:
            raise ValueError("access sample must be >= 1")
        if isinstance(stream_or_path, (str, os.PathLike)):
            self._stream = open(stream_or_path, "w")
            self._owns = True
        else:
            self._stream = stream_or_path
            self._owns = False
        self.sample = sample
        self._lock = threading.Lock()
        self._admissions = 0
        #: Profiles written so far.
        self.exported = 0

    def sample_next(self) -> bool:
        """The head-sampling coin: True for every Nth query."""
        with self._lock:
            self._admissions += 1
            return self._admissions % self.sample == 0

    def export(self, record: dict) -> None:
        """Write one ``{"ev": "access", ...}`` record (flushed)."""
        line = json.dumps(record) + "\n"
        with self._lock:
            self._stream.write(line)
            self.exported += 1
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self._owns:
                self._stream.close()
