"""Per-query execution tracing for the generator engines.

A traced query records, for every AST node, a :class:`NodeSpan`
aggregate — how many times the node was *pulled* (asked for its next
value), how many values it *yielded*, the cumulative wall-clock spent
inside it (inclusive of its children, measured with
``time.perf_counter_ns``), and the target traffic (reads, writes,
calls) attributed to it — plus, optionally, the full ordered stream of
``pull``/``yield`` events delivered to a :class:`TraceSink`.

Hot-path discipline (same as the governor's): with tracing *off* the
only cost is one predicate check per node activation in
``Evaluator.eval`` / ``StateMachineEvaluator.eval`` and one per target
read in ``TracingBackend`` (bench-verified ≤5% on the P3 workload by
``benchmarks/bench_trace.py``).  With tracing *on*, every pull pays
two ``perf_counter_ns`` calls and a stack push/pop.

Both evaluation engines funnel through the same :class:`QueryTracer`:
the generator engine wraps each node's iterator
(:meth:`QueryTracer.wrap`), the paper's state-machine engine brackets
each ``eval`` call (:meth:`QueryTracer.enter` /
:meth:`QueryTracer.exit_yield` / :meth:`QueryTracer.exit_end`).  The
two instrumentation points are placed so that **the engines emit
identical event sequences for the same query** — checked by the
parity property tests in ``tests/property/test_engines.py``, which
makes the trace stream a correctness oracle for the state machine.

Trace JSON schema (one object per JSONL line):

``{"ev": "query", "q": N, "text": "...", "nodes": [{"i":, "op":, "label":}...]}``
    query header: the AST's nodes in preorder, ``i`` indexing them;
``{"ev": "pull", "q": N, "i": node}`` / ``{"ev": "yield", ...}``
    one line per pull/yield event, in execution order;
``{"ev": "span", "q": N, "i":, "op":, "label":, "depth":, "pulls":,
"yields":, "ns":, "reads":, "writes":, "calls":}``
    one line per node at query end: the final aggregates.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import perf_counter_ns
from typing import Iterator, Optional

from repro.core import nodes as N


class NodeSpan:
    """Aggregated execution profile of one AST node within one query."""

    __slots__ = ("index", "op", "label", "depth", "pulls", "yields",
                 "time_ns", "reads", "writes", "calls")

    def __init__(self, index: int, op: str, label: str, depth: int):
        self.index = index
        self.op = op
        self.label = label
        #: Static nesting depth in the AST (root = 0).
        self.depth = depth
        self.pulls = 0
        self.yields = 0
        #: Inclusive wall-clock nanoseconds (children included).
        self.time_ns = 0
        self.reads = 0
        self.writes = 0
        self.calls = 0

    def as_dict(self) -> dict:
        return {"i": self.index, "op": self.op, "label": self.label,
                "depth": self.depth, "pulls": self.pulls,
                "yields": self.yields, "ns": self.time_ns,
                "reads": self.reads, "writes": self.writes,
                "calls": self.calls}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<span {self.index} {self.label!r} pulls={self.pulls} "
                f"yields={self.yields} ns={self.time_ns}>")


def node_label(node: N.Node) -> str:
    """The node's short symbolic form, matching the sexpr notation."""
    extra = node._sexpr_extra()
    return f"{node.op} {extra}" if extra else node.op


class TraceSink:
    """Where trace events go.  Base class: drops everything."""

    def begin_query(self, text: str, spans: list) -> None:
        """A traced query is starting (``spans`` in preorder)."""

    def emit(self, kind: str, index: int) -> None:
        """One ``pull``/``yield`` event for node ``index``."""

    def end_query(self, spans: list) -> None:
        """The query finished; ``spans`` hold the final aggregates."""

    def flush(self) -> None:
        """Push buffered events to durable storage (file sinks)."""

    def close(self) -> None:
        """Release any resources (files) held by the sink."""


class RingBufferSink(TraceSink):
    """In-memory sink keeping the last ``capacity`` events.

    The ring bounds memory for unbounded queries (``1..`` under
    ``trace on``): old events fall off the front, ``dropped`` counts
    them so consumers know the window is partial.

    Thread-safe: the length check, ``dropped`` increment and append
    must be one atomic step (two tracers sharing a sink would
    under-count drops and interleave half-recorded state), and
    :meth:`snapshot` copies under the same lock so a reader racing
    live emits never sees the deque mid-rotation.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self.events: deque[tuple[str, int]] = deque(maxlen=capacity)
        self.dropped = 0
        self.queries = 0
        self._lock = threading.Lock()

    def begin_query(self, text: str, spans: list) -> None:
        with self._lock:
            self.queries += 1

    def emit(self, kind: str, index: int) -> None:
        with self._lock:
            if len(self.events) == self.capacity:
                self.dropped += 1
            self.events.append((kind, index))

    def snapshot(self) -> list[tuple[str, int]]:
        """A consistent copy of the buffered events."""
        with self._lock:
            return list(self.events)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            self.dropped = 0


class JsonlSink(TraceSink):
    """Writes the trace as JSON-lines (the ``--trace-json`` exporter).

    Accepts any writable text stream; :meth:`close` only closes
    streams this sink opened itself (when given a path).
    ``fsync=True`` additionally fsyncs on every flush point, so the
    trace survives losing the machine, not just losing the process.
    """

    def __init__(self, stream_or_path, fsync: bool = False):
        if isinstance(stream_or_path, str):
            self._stream = open(stream_or_path, "w")
            self._owns = True
        else:
            self._stream = stream_or_path
            self._owns = False
        self._fsync = fsync
        self._query = 0

    def _flush(self) -> None:
        self._stream.flush()
        if self._fsync:
            try:
                import os
                os.fsync(self._stream.fileno())
            except (OSError, ValueError, AttributeError):
                pass               # in-memory streams have no fileno

    def begin_query(self, text: str, spans: list) -> None:
        self._query += 1
        nodes = [{"i": s.index, "op": s.op, "label": s.label}
                 for s in spans]
        self._write({"ev": "query", "q": self._query, "text": text,
                     "nodes": nodes})

    def emit(self, kind: str, index: int) -> None:
        self._write({"ev": kind, "q": self._query, "i": index})

    def end_query(self, spans: list) -> None:
        for span in spans:
            record = {"ev": "span", "q": self._query}
            record.update(span.as_dict())
            self._write(record)
        self._flush()

    def _write(self, record: dict) -> None:
        self._stream.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        self._flush()

    def close(self) -> None:
        """Flush, then close the stream if this sink opened it.

        ``end_query`` flushes after every query (and the tracer's
        ``finish`` runs in the drive's ``finally``, interrupts
        included), so even a query aborted by ^C leaves its records on
        disk; close is belt-and-braces for session teardown.
        """
        self._flush()
        if self._owns:
            self._stream.close()


class QueryTracer:
    """Per-query span recorder + event emitter, shared by both engines.

    Life cycle: :meth:`begin` walks the AST assigning preorder indices
    and fresh spans; the engines then report pulls/yields through
    :meth:`wrap` (generator engine) or :meth:`enter`/``exit_*`` (state
    machine); :meth:`finish` flushes span aggregates to the sink.
    Target traffic lands on the innermost active span via
    :meth:`on_read`/:meth:`on_write`/:meth:`on_call`, fed by
    :class:`~repro.target.interface.TracingBackend`.
    """

    __slots__ = ("sink", "spans", "_by_id", "_stack", "query_text")

    def __init__(self, sink: Optional[TraceSink] = None):
        self.sink = sink
        self.spans: list[NodeSpan] = []
        self._by_id: dict[int, NodeSpan] = {}
        self._stack: list[NodeSpan] = []
        self.query_text = ""

    # -- life cycle --------------------------------------------------------
    def begin(self, root: N.Node, text: str = "") -> None:
        """Assign preorder indices to ``root``'s tree and reset spans."""
        self.query_text = text
        self.spans = []
        self._by_id = {}
        self._stack = []
        self._register_tree(root, 0)
        if self.sink is not None:
            self.sink.begin_query(text, self.spans)

    def _register_tree(self, node: N.Node, depth: int) -> None:
        span = NodeSpan(len(self.spans), node.op, node_label(node), depth)
        self.spans.append(span)
        self._by_id[id(node)] = span
        for kid in node.kids:
            self._register_tree(kid, depth + 1)

    def finish(self) -> None:
        """Flush the final span aggregates to the sink."""
        if self.sink is not None:
            self.sink.end_query(self.spans)

    def span_for(self, node: N.Node) -> NodeSpan:
        """The node's span (registering stragglers deterministically)."""
        span = self._by_id.get(id(node))
        if span is None:
            # A node outside the registered tree (defensive): register
            # at first encounter — both engines meet nodes in the same
            # order, so parity is preserved.
            depth = len(self._stack)
            span = NodeSpan(len(self.spans), node.op, node_label(node),
                            depth)
            self.spans.append(span)
            self._by_id[id(node)] = span
        return span

    # -- generator engine --------------------------------------------------
    def wrap(self, node: N.Node, it: Iterator) -> Iterator:
        """Meter one activation of ``node``'s value iterator."""
        span = self.span_for(node)
        sink = self.sink
        stack = self._stack
        index = span.index
        while True:
            span.pulls += 1
            if sink is not None:
                sink.emit("pull", index)
            stack.append(span)
            t0 = perf_counter_ns()
            try:
                value = next(it)
            except StopIteration:
                span.time_ns += perf_counter_ns() - t0
                stack.pop()
                return
            except BaseException:
                span.time_ns += perf_counter_ns() - t0
                stack.pop()
                raise
            span.time_ns += perf_counter_ns() - t0
            stack.pop()
            span.yields += 1
            if sink is not None:
                sink.emit("yield", index)
            yield value

    # -- state-machine engine ----------------------------------------------
    def enter(self, node: N.Node) -> tuple[NodeSpan, int]:
        """One eval call (= one pull) of ``node`` is starting."""
        span = self.span_for(node)
        span.pulls += 1
        if self.sink is not None:
            self.sink.emit("pull", span.index)
        self._stack.append(span)
        return span, perf_counter_ns()

    def exit_yield(self, span: NodeSpan, t0: int) -> None:
        """The eval call produced a value."""
        span.time_ns += perf_counter_ns() - t0
        self._stack.pop()
        span.yields += 1
        if self.sink is not None:
            self.sink.emit("yield", span.index)

    def exit_end(self, span: NodeSpan, t0: int) -> None:
        """The eval call returned NOVALUE (sequence exhausted)."""
        span.time_ns += perf_counter_ns() - t0
        self._stack.pop()

    def exit_error(self, span: NodeSpan, t0: int) -> None:
        """The eval call raised; unwind like the generator wrapper."""
        span.time_ns += perf_counter_ns() - t0
        self._stack.pop()

    # -- target-traffic attribution ----------------------------------------
    def on_read(self) -> None:
        stack = self._stack
        if stack:
            stack[-1].reads += 1

    def on_write(self) -> None:
        stack = self._stack
        if stack:
            stack[-1].writes += 1

    def on_call(self) -> None:
        stack = self._stack
        if stack:
            stack[-1].calls += 1

    # -- reporting ---------------------------------------------------------
    def events(self) -> list[tuple[str, int]]:
        """The recorded event sequence (ring-buffer sinks only)."""
        if isinstance(self.sink, RingBufferSink):
            return self.sink.snapshot()
        return []

    def total_ns(self) -> int:
        """Inclusive nanoseconds of the root span (index 0)."""
        return self.spans[0].time_ns if self.spans else 0
