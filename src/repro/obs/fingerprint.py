"""Canonical AST fingerprints — the key for statement statistics.

``pg_stat_statements`` aggregates load by *query shape*, not query
text: ``data[..10] = 5001`` and ``data[..10] = 5002`` are the same
statement with different literals.  This module computes the analogous
key for DUEL: a canonical rendering of the parsed AST with

* **literals bucketed** — every :class:`~repro.core.nodes.Constant`
  and :class:`~repro.core.nodes.StringLiteral` renders as ``?``, so
  differing constants collapse into one fingerprint;
* **aliases resolved** — names *bound inside the query* (``x := e``
  definitions and ``e#i`` index aliases) are replaced positionally by
  ``$1``, ``$2``, ... in binding order, along with every reference to
  them, so ``x := data[..10]`` and ``y := data[..10]`` fingerprint
  identically while references to *program* symbols (``data``,
  ``head``) keep their names — those define the shape;
* **stable hash** — 16 hex chars of SHA-256 over the canonical text,
  stable across processes and sessions (no ``PYTHONHASHSEED``
  dependence).

The fingerprint is a pure function of the AST, and both engines
evaluate the *same* AST from the shared parser, so engine parity is
structural: identical query text ⇒ identical node tree ⇒ identical
fingerprint.  This canonical key — paired with a target memory epoch —
is exactly what ROADMAP item 5's result cache will be keyed on.
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple

from repro.core import nodes as N


class Fingerprint(NamedTuple):
    """A statement fingerprint: stable hash plus canonical text."""

    hash: str       #: 16 hex chars of SHA-256 over ``text``.
    text: str       #: The canonical (normalized) AST rendering.


def bound_names(node: N.Node) -> dict:
    """Names bound *by this query*, mapped to ``$N`` placeholders.

    Binding order is preorder position — deterministic for a given
    AST — so the placeholder assignment never depends on evaluation.
    """
    mapping: dict[str, str] = {}
    for n in N.walk(node):
        if isinstance(n, (N.Define, N.IndexAlias)):
            if n.name not in mapping:
                mapping[n.name] = f"${len(mapping) + 1}"
    return mapping


def canonical(node: N.Node) -> str:
    """The normalized rendering the fingerprint hashes."""
    return _render(node, bound_names(node))


def _render(node: N.Node, aliases: dict) -> str:
    parts = [node.op]
    extra = _extra(node, aliases)
    if extra is not None:
        parts.append(extra)
    parts.extend(_render(kid, aliases) for kid in node.kids)
    return "(" + " ".join(parts) + ")"


def _extra(node: N.Node, aliases: dict):
    """The node-specific payload, normalized; None when there is none."""
    if isinstance(node, (N.Constant, N.StringLiteral)):
        return "?"
    if isinstance(node, N.Name):
        return aliases.get(node.name, node.name)
    if isinstance(node, (N.Define, N.IndexAlias)):
        return aliases[node.name]
    if isinstance(node, N.To):
        # Open endpoints change arity silently; keep them distinct.
        if node.lo is None:
            return "prefix"
        if node.hi is None:
            return "unbounded"
        return None
    if isinstance(node, N.Declaration):
        return node.text
    if isinstance(node, N.Cast):
        return node.type_text
    if isinstance(node, N.SizeOf):
        return node.type_text
    return None


def fingerprint(node: N.Node) -> Fingerprint:
    """Canonicalize and hash one parsed query."""
    text = canonical(node)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    return Fingerprint(digest, text)
