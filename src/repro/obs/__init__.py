"""Query observability: tracing, metrics, and EXPLAIN profiles.

The paper's central claim is that a DUEL query is *driven* lazily
through a tree of generators; this package makes that execution
visible.  Three layers:

* :mod:`repro.obs.trace` — per-AST-node spans (pulls, yields,
  cumulative time, target traffic) plus a structured pull/yield event
  stream, with a ring-buffered in-memory sink and a JSONL exporter.
  Both evaluation engines emit *identical* event sequences for the
  same query, so tracing doubles as a correctness oracle for the
  state-machine engine.
* :mod:`repro.obs.metrics` — a process-level registry of counters,
  gauges and fixed-bucket histograms aggregating governor counters,
  target traffic, cache hit rates and phase timings across queries.
* :mod:`repro.obs.explain` — renders a traced query as an annotated
  tree (the ``explain`` REPL command): each node's form with pulls,
  yields, time share and target reads.

On top of those per-query layers, three process/service-level ones
turn a long-running session into something an external system can
audit, post-mortem and scrape:

* :mod:`repro.obs.qlog` — the structured query log: monotone query
  IDs and one JSONL record per lifecycle event (received → parsed →
  drained/truncated/cancelled/faulted), with governor verdicts, phase
  timings and target traffic on the terminal record.
* :mod:`repro.obs.recorder` — the flight recorder: a bounded window
  of recent queries (stats + EXPLAIN trees + event rings) written out
  as a self-contained post-mortem JSON on faults, cancellations,
  truncations, or the ``dump`` command.
* :mod:`repro.obs.exposition` — the metrics registry rendered in
  Prometheus text format, served by a daemon-thread HTTP endpoint
  (``--metrics-port``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    registry
from repro.obs.trace import JsonlSink, NodeSpan, QueryTracer, \
    RingBufferSink, TraceSink
from repro.obs.explain import render_profile
from repro.obs.qlog import QueryLog, drive_logged
from repro.obs.recorder import FlightRecorder
from repro.obs.exposition import MetricsServer, render_prometheus

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "registry",
    "JsonlSink", "NodeSpan", "QueryTracer", "RingBufferSink", "TraceSink",
    "render_profile",
    "QueryLog", "drive_logged", "FlightRecorder",
    "MetricsServer", "render_prometheus",
]
