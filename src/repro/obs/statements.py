"""Fleet-wide statement statistics, à la ``pg_stat_statements``.

A bounded, lock-safe aggregation table keyed by statement fingerprint
(:mod:`repro.obs.fingerprint`): per query *shape* — not per query text
— it accumulates calls, values produced, target reads/writes,
truncation/fault counts, and per-phase latency distributions
(parse/eval/format from the session, queue/lock/stream from the serve
layer) in the registry's fixed-bucket :class:`~repro.obs.metrics.
Histogram`, so every fingerprint can answer min/max/p50/p95 by phase.

Bounds: the table holds at most ``capacity`` fingerprints.  When a new
fingerprint arrives at capacity, the entry with the fewest calls is
evicted (ties broken by least recently recorded) and ``evicted``
counts it — a long-tail of one-off shapes can never grow the table
without bound, while the hot shapes a dashboard cares about are
exactly the ones eviction preserves.

Surfaced three ways: the ``statements`` REPL/protocol op
(:meth:`StatementStats.snapshot`), a labeled Prometheus family on
``/metrics`` (:meth:`StatementStats.prometheus_lines`), and the
``fingerprint`` field on qlog terminal records.  Everything is behind
the established ``is not None`` fast-path guard: a session without a
table attached pays one predicate per query.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.exposition import escape_label_value, sanitize
from repro.obs.metrics import DEFAULT_MS_BUCKETS, Histogram

#: Phases every entry tracks.  Session phases come from
#: ``DuelSession.last_query_phases``; serve phases from the server's
#: request span tree.  Unknown phase names are dropped, keeping the
#: per-entry memory bound exact.
PHASES = ("queue", "lock", "parse", "eval", "format", "stream")

#: Snapshot orderings the ``statements`` op accepts.  ``reads`` and
#: ``reads_per_value`` rank I/O-heavy shapes by *logical* traffic (the
#: memory observatory's view — cache-independent, so ``by reads``
#: means the same thing whatever the cache policy); ``physical_reads``
#: ranks by what actually crossed the target interface after the page
#: cache.  Keep :data:`repro.serve.protocol.STATEMENT_ORDERINGS` in
#: sync.
ORDERINGS = ("total_ms", "calls", "mean_ms", "max_ms", "reads",
             "reads_per_value", "physical_reads")


class StatementEntry:
    """Aggregates for one statement fingerprint (lock held by table)."""

    __slots__ = ("fingerprint", "text", "calls", "values", "reads",
                 "physical_reads", "cached_calls", "cache_hits",
                 "cache_misses", "writes", "truncations", "faults",
                 "wall", "phases", "seq", "profiles", "acc_accesses",
                 "acc_pages", "acc_reread", "patterns")

    def __init__(self, fingerprint: str, text: str):
        self.fingerprint = fingerprint
        self.text = text
        self.calls = 0
        self.values = 0
        self.reads = 0
        #: Reads that actually crossed the target interface.  Without
        #: a page cache this equals ``reads``; with one it is the
        #: bulk-read count — both aggregate so ``by reads`` (logical)
        #: keeps its meaning and ``by physical_reads`` shows what the
        #: cache saved.
        self.physical_reads = 0
        self.cached_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.writes = 0
        self.truncations = 0
        self.faults = 0
        #: End-to-end latency (ms) distribution across calls.
        self.wall = Histogram(DEFAULT_MS_BUCKETS)
        #: Per-phase latency (ms) distributions, created on first use.
        self.phases: dict[str, Histogram] = {}
        #: Recency tiebreaker for eviction (table's record sequence).
        self.seq = 0
        #: Memory-access observatory aggregates: how many calls ran
        #: access-profiled, their cumulative accesses / unique pages /
        #: re-read ratios, and the scan-pattern vote counts (a closed
        #: vocabulary — :data:`repro.obs.access.PATTERNS` — so the
        #: per-entry memory bound stays exact).
        self.profiles = 0
        self.acc_accesses = 0
        self.acc_pages = 0
        self.acc_reread = 0.0
        self.patterns: dict[str, int] = {}

    def as_dict(self) -> dict:
        """One snapshot row (plain JSON-able dict)."""
        row = {
            "fingerprint": self.fingerprint,
            "text": self.text,
            "calls": self.calls,
            "values": self.values,
            "reads": self.reads,
            "physical_reads": self.physical_reads,
            "cached_calls": self.cached_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "writes": self.writes,
            "truncations": self.truncations,
            "faults": self.faults,
            "wall_ms": self.wall.as_dict(),
            "phases": {name: hist.as_dict()
                       for name, hist in sorted(self.phases.items())},
        }
        row["profiles"] = self.profiles
        if self.profiles:
            # Dominant pattern by vote (ties: alphabetical, stable).
            row["pattern"] = max(sorted(self.patterns),
                                 key=lambda p: self.patterns[p])
            row["page_locality"] = round(
                self.acc_accesses / self.acc_pages, 2) \
                if self.acc_pages else 0.0
            row["reread_ratio"] = round(
                self.acc_reread / self.profiles, 4)
            row["pages_per_call"] = round(
                self.acc_pages / self.profiles, 1)
        return row


class StatementStats:
    """The bounded, thread-safe fingerprint → aggregates table."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("statements capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[str, StatementEntry] = {}
        self._lock = threading.Lock()
        self._seq = 0
        #: Entries dropped to stay within ``capacity``.
        self.evicted = 0
        #: Total queries folded in (including into evicted entries).
        self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- recording ---------------------------------------------------------
    def record(self, fingerprint: str, text: str, *, outcome: str,
               values: int = 0, stats: Optional[dict] = None,
               phases: Optional[dict] = None,
               wall_ms: Optional[float] = None) -> None:
        """Fold one finished query into its fingerprint's aggregates.

        ``stats`` is the session's per-query stats dict (reads/writes/
        wall_ms are used); ``phases`` maps phase name → milliseconds
        (session and serve phases mixed freely; unknown names are
        ignored).  ``wall_ms`` overrides ``stats["wall_ms"]`` when the
        caller measured a wider interval (the serve layer passes the
        admission-to-stream total).
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                if len(self._entries) >= self.capacity:
                    self._evict_locked()
                entry = StatementEntry(fingerprint, text)
                self._entries[fingerprint] = entry
            self._seq += 1
            entry.seq = self._seq
            self.recorded += 1
            entry.calls += 1
            entry.values += values
            if stats:
                reads = stats.get("reads", 0)
                entry.reads += reads
                # Uncached queries cross the interface once per
                # logical read, so physical == logical keeps the
                # column truthful whatever mix of cached and uncached
                # sessions feeds one table.
                entry.physical_reads += stats.get("physical_reads",
                                                  reads)
                if "physical_reads" in stats:
                    entry.cached_calls += 1
                    entry.cache_hits += stats.get("cache_hits", 0)
                    entry.cache_misses += stats.get("cache_misses", 0)
                entry.writes += stats.get("writes", 0)
            if outcome == "truncated":
                entry.truncations += 1
            elif outcome == "faulted":
                entry.faults += 1
            if wall_ms is None and stats:
                wall_ms = stats.get("wall_ms")
            if wall_ms is not None:
                entry.wall.observe(wall_ms)
            if phases:
                for name, ms in phases.items():
                    if name not in PHASES:
                        continue
                    hist = entry.phases.get(name)
                    if hist is None:
                        hist = entry.phases[name] = \
                            Histogram(DEFAULT_MS_BUCKETS)
                    hist.observe(ms)

    def record_access(self, fingerprint: str,
                      profile: Optional[dict]) -> None:
        """Fold one query's access profile into an existing entry.

        No call bump — :meth:`record` already counted the query; this
        adds the memory observatory's view (reads-per-value surfaces
        from the existing ``reads``/``values`` columns; here land the
        page-locality and pattern aggregates only a profiled run can
        measure).  Like :meth:`record_phases`, a fingerprint the table
        no longer holds is silently dropped.
        """
        if not profile:
            return
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            entry.profiles += 1
            entry.acc_accesses += profile.get("accesses", 0)
            entry.acc_pages += profile.get("unique_pages", 0)
            entry.acc_reread += profile.get("reread_ratio", 0.0)
            pattern = profile.get("pattern")
            if pattern is not None:
                entry.patterns[pattern] = \
                    entry.patterns.get(pattern, 0) + 1

    def record_phases(self, fingerprint: str,
                      phases: Optional[dict]) -> None:
        """Fold extra phase timings into an existing entry.

        No call bump: the session already counted the call with its
        parse/eval/format phases; the serve layer adds the
        queue/lock/stream phases it alone can measure through here.  A
        fingerprint the table no longer holds (evicted between the two
        records) is silently dropped — the table is a cache of hot
        shapes, not an audit log.
        """
        if not phases:
            return
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            for name, ms in phases.items():
                if name not in PHASES:
                    continue
                hist = entry.phases.get(name)
                if hist is None:
                    hist = entry.phases[name] = \
                        Histogram(DEFAULT_MS_BUCKETS)
                hist.observe(ms)

    def _evict_locked(self) -> None:
        """Drop the least-called (then least-recent) entry."""
        victim = min(self._entries.values(),
                     key=lambda e: (e.calls, e.seq))
        del self._entries[victim.fingerprint]
        self.evicted += 1

    # -- surfacing ---------------------------------------------------------
    def snapshot(self, by: str = "total_ms",
                 limit: Optional[int] = None) -> list[dict]:
        """Top entries as plain dicts, ordered by ``by`` descending.

        ``by`` is one of :data:`ORDERINGS`.  The rows are rendered
        under the table lock, so a snapshot racing live aggregation is
        internally consistent (no half-recorded query splits a row's
        ``calls`` from its latency count).
        """
        if by not in ORDERINGS:
            raise ValueError(f"unknown statements ordering {by!r} "
                             f"(expected one of {', '.join(ORDERINGS)})")
        with self._lock:
            rows = [entry.as_dict() for entry in self._entries.values()]
        for row in rows:
            wall = row["wall_ms"]
            row["total_ms"] = wall["sum"]
            row["mean_ms"] = wall["mean"]
            row["max_ms"] = wall["max"] if wall["max"] is not None else 0.0
            # A shape that produced nothing ranks by its raw reads —
            # 1234 reads for 0 values is the worst ratio there is.
            row["reads_per_value"] = round(row["reads"] / row["values"], 2) \
                if row["values"] else float(row["reads"])
            row["physical_reads_per_value"] = round(
                row["physical_reads"] / row["values"], 2) \
                if row["values"] else float(row["physical_reads"])
            looked = row["cache_hits"] + row["cache_misses"]
            row["cache_hit_rate"] = round(
                row["cache_hits"] / looked, 4) if looked else 0.0
        rows.sort(key=lambda r: (r[by], r["calls"], r["fingerprint"]),
                  reverse=True)
        if limit is not None:
            rows = rows[:limit]
        return rows

    def state(self) -> dict:
        """Table-level accounting (the ``statements`` op's header)."""
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "evicted": self.evicted,
                    "recorded": self.recorded}

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evicted = 0
            self.recorded = 0
            self._seq = 0

    # -- Prometheus --------------------------------------------------------
    def prometheus_lines(self, prefix: str = "duel_",
                         limit: int = 32) -> list[str]:
        """The labeled statement families for ``/metrics``.

        Exposes the top ``limit`` fingerprints by total latency —
        labeled cardinality must stay bounded even though the table
        holds more — as counters plus a summary-style latency family::

            duel_stmt_calls_total{fingerprint="...",text="..."} 42
            duel_stmt_latency_ms_sum{fingerprint="..."} 104.2
            duel_stmt_latency_ms_count{fingerprint="..."} 42

        Label values are escaped (:func:`~repro.obs.exposition.
        escape_label_value`); the whole family renders from one
        consistent snapshot.
        """
        rows = self.snapshot(by="total_ms", limit=limit)
        base = prefix + sanitize("stmt")
        lines = [f"# TYPE {base}_calls_total counter",
                 f"# TYPE {base}_values_total counter",
                 f"# TYPE {base}_truncated_total counter",
                 f"# TYPE {base}_faulted_total counter",
                 f"# TYPE {base}_latency_ms summary"]
        for row in rows:
            fp = escape_label_value(row["fingerprint"])
            text = escape_label_value(row["text"])
            labels = f'{{fingerprint="{fp}",text="{text}"}}'
            key = f'{{fingerprint="{fp}"}}'
            wall = row["wall_ms"]
            lines.append(f"{base}_calls_total{labels} {row['calls']}")
            lines.append(f"{base}_values_total{key} {row['values']}")
            lines.append(
                f"{base}_truncated_total{key} {row['truncations']}")
            lines.append(f"{base}_faulted_total{key} {row['faults']}")
            lines.append(
                f'{base}_latency_ms{{fingerprint="{fp}",'
                f'quantile="0.5"}} {wall["p50"]:g}')
            lines.append(
                f'{base}_latency_ms{{fingerprint="{fp}",'
                f'quantile="0.95"}} {wall["p95"]:g}')
            lines.append(f"{base}_latency_ms_sum{key} {wall['sum']:g}")
            lines.append(f"{base}_latency_ms_count{key} {wall['count']}")
        state = self.state()
        lines.append(f"# TYPE {base}_table_entries gauge")
        lines.append(f"{base}_table_entries {state['entries']}")
        lines.append(f"# TYPE {base}_table_evicted_total counter")
        lines.append(f"{base}_table_evicted_total {state['evicted']}")
        return lines

    def prometheus_target_lines(self, prefix: str = "duel_",
                                limit: int = 32) -> list[str]:
        """The memory-observatory families for ``/metrics``.

        Per-fingerprint target-traffic gauges plus pattern counters,
        capped at the top ``limit`` fingerprints by reads — same
        bounded-cardinality discipline as the ``duel_stmt_*``
        families.  Shapes that never ran access-profiled still expose
        ``reads_per_value`` (the scalar counters suffice); the
        locality and pattern families need a profiled run::

            duel_target_reads_per_value{fingerprint="..."} 617.5
            duel_target_page_locality{fingerprint="..."} 15.9
            duel_target_pattern_total{fingerprint="...",pattern="strided"} 3
            duel_target_profiles_total 7
        """
        rows = self.snapshot(by="reads", limit=limit)
        base = prefix + sanitize("target")
        lines = [f"# TYPE {base}_reads_per_value gauge",
                 f"# TYPE {base}_physical_reads_per_value gauge",
                 f"# TYPE {base}_cache_hit_rate gauge",
                 f"# TYPE {base}_page_locality gauge",
                 f"# TYPE {base}_reread_ratio gauge",
                 f"# TYPE {base}_pattern_total counter"]
        profiles_total = 0
        for row in rows:
            fp = escape_label_value(row["fingerprint"])
            key = f'{{fingerprint="{fp}"}}'
            lines.append(
                f"{base}_reads_per_value{key} {row['reads_per_value']:g}")
            lines.append(
                f"{base}_physical_reads_per_value{key} "
                f"{row['physical_reads_per_value']:g}")
            if row["cached_calls"]:
                lines.append(
                    f"{base}_cache_hit_rate{key} "
                    f"{row['cache_hit_rate']:g}")
            if not row["profiles"]:
                continue
            profiles_total += row["profiles"]
            lines.append(
                f"{base}_page_locality{key} {row['page_locality']:g}")
            lines.append(
                f"{base}_reread_ratio{key} {row['reread_ratio']:g}")
            pattern = escape_label_value(row["pattern"])
            lines.append(
                f'{base}_pattern_total{{fingerprint="{fp}",'
                f'pattern="{pattern}"}} '
                f'{self._pattern_count(row["fingerprint"], row["pattern"])}')
        lines.append(f"# TYPE {base}_profiles_total counter")
        lines.append(f"{base}_profiles_total {profiles_total}")
        return lines

    def _pattern_count(self, fingerprint: str, pattern: str) -> int:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return 0
            return entry.patterns.get(pattern, 0)


def describe(rows: list[dict], state: Optional[dict] = None) -> list[str]:
    """Human-readable lines for the REPL/ops ``statements`` command."""
    lines = []
    if state is not None:
        lines.append(f"statements: {state['entries']} shapes "
                     f"(capacity {state['capacity']}, "
                     f"{state['evicted']} evicted, "
                     f"{state['recorded']} recorded)")
    header = (f"{'calls':>7} {'total ms':>10} {'mean ms':>9} "
              f"{'p95 ms':>9} {'values':>8} {'rd/val':>8} "
              f"{'phys/val':>9} {'trunc':>6} {'fault':>6}  shape")
    lines.append(header)
    for row in rows:
        wall = row["wall_ms"]
        values = row.get("values", 0)
        rpv = row.get("reads_per_value")
        if rpv is None:
            rpv = row.get("reads", 0) / values if values \
                else float(row.get("reads", 0))
        ppv = row.get("physical_reads_per_value")
        if ppv is None:
            physical = row.get("physical_reads", row.get("reads", 0))
            ppv = physical / values if values else float(physical)
        lines.append(
            f"{row['calls']:>7} {wall['sum']:>10.2f} "
            f"{wall['mean']:>9.3f} {wall['p95']:>9.3f} "
            f"{row['values']:>8} {rpv:>8.1f} {ppv:>9.1f} "
            f"{row['truncations']:>6} "
            f"{row['faults']:>6}  {row['text']}")
    return lines
