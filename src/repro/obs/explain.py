"""Render a traced query as an annotated per-node profile tree.

The ``explain`` / ``trace <expr>`` REPL commands drive a query with a
:class:`~repro.obs.trace.QueryTracer` attached and hand the AST plus
the tracer here.  Output is one line per AST node, in tree shape,
annotating each with its pulls, yields, inclusive time (and share of
the root's time), and attributed target reads — so for the paper's
``x[..100] >? 5`` the cost of the ``to`` node is visibly separate from
the filter's::

    ifgt                      pulls=101  yields=3    time=1.52ms  100.0%  reads=100
    ├─ index                  pulls=101  yields=100  time=1.31ms   86.2%  reads=100
    │  ├─ name "x"            pulls=2    yields=1    time=0.01ms    0.7%
    │  └─ to prefix           pulls=101  yields=100  time=0.12ms    7.9%
    │     └─ constant 100     pulls=2    yields=1    time=0.00ms    0.1%
    └─ constant 5             pulls=200  yields=100  time=0.08ms    5.3%
"""

from __future__ import annotations

from repro.core import nodes as N
from repro.obs.trace import QueryTracer


def render_profile(root: N.Node, tracer: QueryTracer,
                   min_label_width: int = 24) -> list[str]:
    """The annotated tree, one line per AST node."""
    total_ns = max(tracer.total_ns(), 1)
    span_of = tracer.span_for
    rows: list[tuple[str, object]] = []

    def walk(node: N.Node, prefix: str, child_prefix: str) -> None:
        rows.append((prefix + span_of(node).label, span_of(node)))
        kids = node.kids
        for position, kid in enumerate(kids):
            last = position == len(kids) - 1
            connector = "└─ " if last else "├─ "
            descend = "   " if last else "│  "
            walk(kid, child_prefix + connector, child_prefix + descend)

    walk(root, "", "")
    width = max(min_label_width, max(len(head) for head, _ in rows))
    lines = []
    for head, span in rows:
        ms = span.time_ns / 1e6
        share = 100.0 * span.time_ns / total_ns
        text = (f"{head:<{width}} "
                f"pulls={span.pulls:<6} yields={span.yields:<6} "
                f"time={ms:.2f}ms {share:5.1f}%")
        if span.reads:
            text += f"  reads={span.reads}"
        if span.writes:
            text += f" writes={span.writes}"
        if span.calls:
            text += f" calls={span.calls}"
        lines.append(text)
    return lines


def profile_footer(produced: int, wall_ms: float, traffic: dict,
                   engine: str = "generator") -> str:
    """The one-line summary printed under the tree."""
    return (f"-- {produced} values in {wall_ms:.1f}ms; "
            f"{traffic.get('reads', 0)} reads, "
            f"{traffic.get('writes', 0)} writes, "
            f"{traffic.get('calls', 0)} calls ({engine} engine)")
