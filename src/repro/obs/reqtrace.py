"""Wire-propagated request tracing for the query service.

The engine tracer (:mod:`repro.obs.trace`) profiles a query from parse
to last value — *inside* the session.  A served query spends time in
places the engine never sees: the admission queue, the session RW
lock, the stream back to the client.  This module adds the server-side
span tree that closes that gap:

``admission_queue → session_lock (read|write) → parse → drive → stream``

Every ``duel`` op carries a ``trace`` id — client-generated when the
client wants to correlate, server-assigned otherwise — and the server
echoes it on **every** frame it sends for that request, so a slow
query seen by a client is attributable end to end.  Completed traces
export as one JSONL record per request through :class:`TraceLog`,
tagged with trace_id/session_id and carrying both the server phase
spans and the engine's per-AST-node spans when the query ran traced.

Sampling is head-based: ``--trace-sample N`` exports 1-in-N requests
(decided at admission, counter-based so exactly every Nth request is
taken — deterministic for tests), **plus** every request that ends
truncated, faulted, cancelled or slower than the slow-query threshold,
regardless of the coin.  The sampled flag also decides whether the
engine tracer runs, so the per-node instrumentation cost follows the
same 1-in-N dilution.
"""

from __future__ import annotations

import binascii
import json
import os
import threading
from typing import Optional

#: Server phase names, in causal order.
SERVER_PHASES = ("admission_queue", "session_lock", "parse", "drive",
                 "stream")

#: Outcomes that force export even when the head-sampling coin said no.
ALWAYS_EXPORT = frozenset({"truncated", "faulted", "cancelled"})

#: Longest client-supplied trace id the server will echo verbatim.
TRACE_ID_MAX = 128


def make_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision-safe per process run)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


class RequestTrace:
    """The span tree of one served request (built by one worker).

    Spans are ``(name, milliseconds)`` plus optional attributes; the
    worker that drives the request is the only writer, so no lock —
    the trace is handed to the :class:`TraceLog` whole, after the
    terminal frame.
    """

    __slots__ = ("trace_id", "session_id", "request_id", "text",
                 "sampled", "spans", "engine_spans", "outcome",
                 "fingerprint")

    def __init__(self, trace_id: str, session_id: str,
                 request_id: Optional[str] = None, text: str = "",
                 sampled: bool = True):
        self.trace_id = trace_id
        self.session_id = session_id
        self.request_id = request_id
        self.text = text
        self.sampled = sampled
        self.spans: list[dict] = []
        self.engine_spans: list[dict] = []
        self.outcome: Optional[str] = None
        self.fingerprint: Optional[str] = None

    def span(self, name: str, ms: float, **attrs) -> None:
        """Record one server phase (monotonic-clock milliseconds)."""
        record = {"name": name, "ms": round(ms, 3)}
        if attrs:
            record.update(attrs)
        self.spans.append(record)

    def phase_ms(self) -> dict:
        """Phase name → milliseconds (statement-statistics feed).

        ``session_lock`` maps to ``lock`` and ``admission_queue`` to
        ``queue`` so the statements table uses one short vocabulary
        across session and serve phases.
        """
        short = {"admission_queue": "queue", "session_lock": "lock"}
        return {short.get(s["name"], s["name"]): s["ms"]
                for s in self.spans}

    def total_ms(self) -> float:
        return sum(s["ms"] for s in self.spans)

    def as_dict(self) -> dict:
        record = {
            "ev": "request",
            "trace_id": self.trace_id,
            "session_id": self.session_id,
            "outcome": self.outcome,
            "wall_ms": round(self.total_ms(), 3),
            "spans": list(self.spans),
        }
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.text:
            record["text"] = self.text
        if self.fingerprint is not None:
            record["fingerprint"] = self.fingerprint
        if self.engine_spans:
            record["engine_spans"] = self.engine_spans
        return record


class TraceLog:
    """Thread-safe JSONL exporter for completed request traces.

    Accepts a path (opened and owned) or any writable text stream.
    ``sample=N`` takes every Nth admission (:meth:`sample_next`); the
    exporter itself never drops — :meth:`export` writes whatever it is
    handed, because the caller already applied the sampling policy
    (head coin OR the always-export outcomes).
    """

    def __init__(self, stream_or_path, sample: int = 1,
                 fsync: bool = False):
        if sample < 1:
            raise ValueError("trace sample must be >= 1")
        if isinstance(stream_or_path, str):
            self._stream = open(stream_or_path, "w")
            self._owns = True
        else:
            self._stream = stream_or_path
            self._owns = False
        self.sample = sample
        self._fsync = fsync
        self._lock = threading.Lock()
        self._admissions = 0
        #: Traces written so far.
        self.exported = 0

    def sample_next(self) -> bool:
        """The head-sampling coin: True for every Nth admission."""
        with self._lock:
            self._admissions += 1
            return self._admissions % self.sample == 0

    def should_export(self, trace: RequestTrace,
                      slow: bool = False) -> bool:
        """Head coin OR the tail conditions (bad outcome / slow)."""
        if trace.sampled or slow:
            return True
        return trace.outcome in ALWAYS_EXPORT

    def export(self, trace: RequestTrace) -> None:
        """Write one completed trace (whole record, flushed)."""
        line = json.dumps(trace.as_dict()) + "\n"
        with self._lock:
            self._stream.write(line)
            self.exported += 1
            self._stream.flush()
            if self._fsync:
                try:
                    os.fsync(self._stream.fileno())
                except (OSError, ValueError, AttributeError):
                    pass           # in-memory streams have no fileno

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self._owns:
                self._stream.close()


def valid_trace_id(value) -> bool:
    """Is ``value`` a trace id the server will echo verbatim?

    Printable, no whitespace, bounded length — the id lands in JSONL
    logs and Prometheus exemplars, so control characters are out.
    """
    if not isinstance(value, str) or not value:
        return False
    if len(value) > TRACE_ID_MAX:
        return False
    return all(33 <= ord(ch) < 127 for ch in value)
