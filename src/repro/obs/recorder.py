"""Flight recorder: bounded in-memory history + post-mortem dumps.

A long unattended ``duel`` run that dies at 3am used to leave, at
best, a stack trace.  The flight recorder keeps a bounded deque of the
last ``capacity`` completed queries — text, outcome, governor stats,
phase timings, and (because enabling the recorder turns per-query
tracing on) each query's EXPLAIN profile tree and a bounded ring of
its pull/yield events — and, when something goes wrong, writes the
whole window plus a metrics snapshot and the governor limits in force
to one self-contained post-mortem JSON file.

Dump triggers (all of them subject to a ``dump_dir`` being set):

* a target-side fault (:class:`~repro.core.errors.DuelTargetError` or
  :class:`~repro.core.errors.DuelMemoryError`) — the debuggee broke;
* a cooperative cancellation (:class:`~repro.core.errors.DuelCancelled`)
  — someone hit ^C, capture what they were looking at;
* a governor truncation — the workload outgrew its budgets;
* the explicit ``dump`` REPL command.

Plain user errors (typos, name errors, rejected parses) do *not*
dump: they are part of normal interactive use, and auto-dumping them
would bury the interesting post-mortems.

Memory discipline: ``entries`` is a ``deque(maxlen=capacity)``, so
the recorder holds at most ``capacity`` queries no matter how many
run; each entry's event ring is clipped to ``ring_capacity``.  With
the recorder detached (``session.recorder is None``) the cost is one
predicate per query — the same gate the tracer and query log use.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Optional

from repro.core.errors import DuelMemoryError, DuelTargetError

#: Post-mortem schema version (bump on incompatible shape changes).
DUMP_VERSION = 1

#: Terminal outcomes that always trigger an automatic dump.
_AUTODUMP_OUTCOMES = frozenset({"truncated", "cancelled"})


def should_dump(outcome: str, failure=None) -> bool:
    """True when a query's ending warrants an automatic post-mortem."""
    if outcome in _AUTODUMP_OUTCOMES:
        return True
    if outcome == "faulted":
        return isinstance(failure, (DuelTargetError, DuelMemoryError))
    return False


class FlightRecorder:
    """Bounded history of completed queries, dumpable as JSON.

    ``capacity`` bounds the query window; ``ring_capacity`` bounds the
    per-query pull/yield event ring kept in each entry; ``dump_dir``
    (optional) is where post-mortems land — without it the recorder
    still records and :meth:`dump` requires an explicit directory.
    """

    def __init__(self, capacity: int = 32,
                 dump_dir: Optional[str] = None,
                 ring_capacity: int = 512, clock=time.time,
                 pin_capacity: int = 16):
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.capacity = capacity
        self.ring_capacity = ring_capacity
        self.dump_dir = dump_dir
        self.entries: deque[dict] = deque(maxlen=capacity)
        #: Pinned records live outside the rolling window: a burst of
        #: ordinary queries cannot evict them (bounded separately).
        self.pinned: deque[dict] = deque(maxlen=pin_capacity)
        self._clock = clock
        self._lock = threading.Lock()
        #: Queries recorded over the recorder's lifetime (not clipped).
        self.recorded = 0
        #: Post-mortems written so far (also the dump file sequence).
        self.dumps = 0

    # -- recording ---------------------------------------------------------
    def record(self, entry: dict) -> None:
        """Append one completed query's record (oldest falls off).

        Lock-guarded: concurrent sessions sharing one recorder (the
        ``repro.serve`` front end) must not lose ``recorded`` counts
        or interleave with a :meth:`dump` snapshotting the window.
        """
        events = entry.get("events")
        if events is not None and len(events) > self.ring_capacity:
            entry["events"] = events[-self.ring_capacity:]
            entry["events_clipped"] = True
        with self._lock:
            self.entries.append(entry)
            self.recorded += 1

    def pin(self, reason: str, entry: dict) -> None:
        """Keep one record outside the rolling window's eviction.

        The serve layer pins slow-query traces here: the query that
        tripped ``--slow-ms`` stays dumpable even after ``capacity``
        ordinary queries have rolled the main window past it.
        """
        record = {"pin_reason": reason, "pinned_at": self._clock()}
        record.update(entry)
        with self._lock:
            self.pinned.append(record)

    def last(self, n: Optional[int] = None) -> list[dict]:
        """The most recent ``n`` entries (all of them by default)."""
        with self._lock:
            window = list(self.entries)
        return window if n is None else window[-n:]

    # -- post-mortems ------------------------------------------------------
    def dump(self, reason: str, metrics=None, governor=None,
             dump_dir: Optional[str] = None) -> str:
        """Write a self-contained post-mortem JSON; returns its path.

        ``metrics`` (a registry) and ``governor`` enrich the artifact
        with a metrics snapshot and the limits/policies in force.
        Raises :class:`ValueError` when no directory is configured and
        none is given.
        """
        directory = dump_dir if dump_dir is not None else self.dump_dir
        if directory is None:
            raise ValueError("no dump directory configured "
                             "(set dump_dir or pass one)")
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            self.dumps += 1
            recorded = self.recorded
            window = list(self.entries)
            pinned = list(self.pinned)
        artifact = {
            "version": DUMP_VERSION,
            "reason": reason,
            "dumped_at": self._clock(),
            "queries_recorded": recorded,
            "queries": window,
            "pinned": pinned,
            "metrics": metrics.snapshot() if metrics is not None else None,
            "limits": dict(governor.limits) if governor is not None
            else None,
            "policies": dict(governor.policies) if governor is not None
            else None,
        }
        path = os.path.join(directory,
                            f"duel-postmortem-{self.dumps:04d}.json")
        with open(path, "w") as handle:
            json.dump(artifact, handle, indent=2)
            handle.write("\n")
        return path
