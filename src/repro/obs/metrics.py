"""Process-level metrics: counters, gauges, fixed-bucket histograms.

The governor (PR 3) counts steps/calls/allocs per query and throws the
numbers away after the stats footer; this registry is where they
accumulate *across* queries, together with target-backend traffic,
cache hit rates, and parse/eval/format phase timings, so a long
debugging session (or a benchmark harness) can ask "where has the time
gone so far".  Everything is snapshot-able to a plain dict / JSON —
the shape ``benchmarks/emit_json.py`` records into ``BENCH_3.json``.

One shared process-level instance lives at :func:`registry`;
:class:`~repro.core.session.DuelSession` records into it by default
(pass ``metrics=MetricsRegistry()`` for an isolated one).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Optional, Sequence

#: Default latency buckets, in milliseconds (upper bounds; the last
#: bucket is open-ended).
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0)


class Counter:
    """A monotonically increasing count (thread-safe).

    ``value += amount`` is three interleavable bytecodes under
    CPython, so concurrent sessions recording into one registry (the
    ``repro.serve`` front end multiplexes every client into the
    process registry) would drop increments without the lock.  The
    lock is per-instrument and only taken per *query*, never per
    value, so the hot path is untouched.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (last write wins, thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count and quantile estimates.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.  :meth:`quantile`
    interpolates within the winning bucket — coarse, but stable and
    allocation-free, which is what a hot-path metric wants.

    Thread-safe: :meth:`observe` mutates seven fields that must stay
    mutually consistent (``sum``/``count``/bucket counts), and
    :meth:`as_dict` snapshots under the same lock so an exposition
    scrape racing an observation never renders ``count`` and ``sum``
    from different instants.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "count",
                 "minimum", "maximum", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_MS_BUCKETS):
        self.bounds = tuple(float(b) for b in buckets)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect_left(self.bounds, value)
            if index == len(self.bounds):
                self.overflow += 1
            else:
                self.counts[index] += 1
            self.total += value
            self.count += 1
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts."""
        return self._quantile(q, self.snapshot_state())

    def _quantile(self, q: float, state: tuple) -> float:
        counts, _, _, count, _, maximum = state
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0.0
        lower = 0.0
        for bound, bucket in zip(self.bounds, counts):
            if bucket:
                if seen + bucket >= rank:
                    within = (rank - seen) / bucket
                    return lower + (bound - lower) * within
                seen += bucket
            lower = bound
        return maximum if maximum is not None else lower

    def snapshot_state(self) -> tuple:
        """A consistent ``(counts, overflow, total, count, min, max)``."""
        with self._lock:
            return (list(self.counts), self.overflow, self.total,
                    self.count, self.minimum, self.maximum)

    def as_dict(self) -> dict:
        state = self.snapshot_state()
        counts, overflow, total, count, minimum, maximum = state
        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": total / count if count else 0.0,
            "p50": self._quantile(0.50, state),
            "p95": self._quantile(0.95, state),
            "buckets": [[bound, n] for bound, n
                        in zip(self.bounds, counts) if n],
            "overflow": overflow,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use.

    Thread-safe: instrument creation is lock-guarded (two sessions
    racing ``counter("queries_total")`` get the *same* counter, never
    two), each instrument guards its own mutation, and the iteration
    views copy the maps under the lock — so an exposition scrape or a
    ``metrics`` command racing live queries always sees a coherent
    registry.  The ``repro.serve`` front end funnels every client
    session into one shared registry, which is what forced the issue.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- accessors ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter()
            return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge()
            return found

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS
                  ) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(buckets)
            return found

    # -- iteration (exposition renderers) ----------------------------------
    def counters(self) -> dict[str, Counter]:
        """All counters, name-sorted (a copy; safe to iterate)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, Gauge]:
        """All gauges, name-sorted (a copy; safe to iterate)."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histograms(self) -> dict[str, Histogram]:
        """All histograms, name-sorted (a copy; safe to iterate)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    # -- aggregation helpers ----------------------------------------------
    def record_query(self, stats: dict, traffic: Optional[dict] = None,
                     phases: Optional[dict] = None) -> None:
        """Fold one finished query into the process totals.

        ``stats`` is :meth:`ResourceGovernor.stats` output; ``traffic``
        carries per-query reads/writes/calls/allocs deltas from the
        :class:`~repro.target.interface.TracingBackend`; ``phases``
        maps phase name (parse/eval/format) to milliseconds.
        """
        self.counter("queries_total").inc()
        for name in ("steps", "expand", "lines", "calls", "allocs",
                     "symnodes"):
            if name in stats:
                self.counter(f"governor_{name}_total").inc(stats[name])
        if "wall_ms" in stats:
            self.histogram("query_wall_ms").observe(stats["wall_ms"])
        if traffic:
            for name, amount in traffic.items():
                self.counter(f"target_{name}_total").inc(amount)
        if phases:
            for name, ms in phases.items():
                self.histogram(f"phase_{name}_ms").observe(ms)

    def cache_rate(self, name: str) -> float:
        """Hit rate of a ``<name>_hits`` / ``<name>_misses`` pair."""
        hits = self.counter(f"{name}_hits").value
        misses = self.counter(f"{name}_misses").value
        total = hits + misses
        return hits / total if total else 0.0

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as one plain (JSON-able) dict."""
        return {
            "counters": {name: c.value
                         for name, c in self.counters().items()},
            "gauges": {name: g.value
                       for name, g in self.gauges().items()},
            "histograms": {name: h.as_dict()
                           for name, h in self.histograms().items()},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def describe(self) -> list[str]:
        """Human-readable lines (the REPL ``metrics`` command).

        One line per metric, sorted *globally* by name across all
        three kinds, so successive ``metrics`` outputs — and outputs
        from different runs of the same workload — diff cleanly.
        """
        rows: list[tuple[str, str]] = []
        for name, counter in self.counters().items():
            rows.append((name, f"{name:<28} {counter.value}"))
        for name, gauge in self.gauges().items():
            rows.append((name, f"{name:<28} {gauge.value:g}"))
        for name, hist in self.histograms().items():
            state = hist.snapshot_state()
            count, total = state[3], state[2]
            mean = total / count if count else 0.0
            rows.append((name, f"{name:<28} count={count} "
                         f"mean={mean:.3f} "
                         f"p50={hist._quantile(.5, state):.3f} "
                         f"p95={hist._quantile(.95, state):.3f}"))
        return [text for _, text in sorted(rows)]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The shared process-level registry (sessions default to this).
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-level registry instance."""
    return _REGISTRY
