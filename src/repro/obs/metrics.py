"""Process-level metrics: counters, gauges, fixed-bucket histograms.

The governor (PR 3) counts steps/calls/allocs per query and throws the
numbers away after the stats footer; this registry is where they
accumulate *across* queries, together with target-backend traffic,
cache hit rates, and parse/eval/format phase timings, so a long
debugging session (or a benchmark harness) can ask "where has the time
gone so far".  Everything is snapshot-able to a plain dict / JSON —
the shape ``benchmarks/emit_json.py`` records into ``BENCH_3.json``.

One shared process-level instance lives at :func:`registry`;
:class:`~repro.core.session.DuelSession` records into it by default
(pass ``metrics=MetricsRegistry()`` for an isolated one).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Optional, Sequence

#: Default latency buckets, in milliseconds (upper bounds; the last
#: bucket is open-ended).
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count and quantile estimates.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.  :meth:`quantile`
    interpolates within the winning bucket — coarse, but stable and
    allocation-free, which is what a hot-path metric wants.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "count",
                 "minimum", "maximum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_MS_BUCKETS):
        self.bounds = tuple(float(b) for b in buckets)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += value
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if count:
                if seen + count >= rank:
                    within = (rank - seen) / count
                    return lower + (bound - lower) * within
                seen += count
            lower = bound
        return self.maximum if self.maximum is not None else lower

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "buckets": [[bound, count] for bound, count
                        in zip(self.bounds, self.counts) if count],
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- accessors ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter()
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge()
        return found

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_MS_BUCKETS
                  ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(buckets)
        return found

    # -- iteration (exposition renderers) ----------------------------------
    def counters(self) -> dict[str, Counter]:
        """All counters, name-sorted (a copy; safe to iterate)."""
        return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, Gauge]:
        """All gauges, name-sorted (a copy; safe to iterate)."""
        return dict(sorted(self._gauges.items()))

    def histograms(self) -> dict[str, Histogram]:
        """All histograms, name-sorted (a copy; safe to iterate)."""
        return dict(sorted(self._histograms.items()))

    # -- aggregation helpers ----------------------------------------------
    def record_query(self, stats: dict, traffic: Optional[dict] = None,
                     phases: Optional[dict] = None) -> None:
        """Fold one finished query into the process totals.

        ``stats`` is :meth:`ResourceGovernor.stats` output; ``traffic``
        carries per-query reads/writes/calls/allocs deltas from the
        :class:`~repro.target.interface.TracingBackend`; ``phases``
        maps phase name (parse/eval/format) to milliseconds.
        """
        self.counter("queries_total").inc()
        for name in ("steps", "expand", "lines", "calls", "allocs",
                     "symnodes"):
            if name in stats:
                self.counter(f"governor_{name}_total").inc(stats[name])
        if "wall_ms" in stats:
            self.histogram("query_wall_ms").observe(stats["wall_ms"])
        if traffic:
            for name, amount in traffic.items():
                self.counter(f"target_{name}_total").inc(amount)
        if phases:
            for name, ms in phases.items():
                self.histogram(f"phase_{name}_ms").observe(ms)

    def cache_rate(self, name: str) -> float:
        """Hit rate of a ``<name>_hits`` / ``<name>_misses`` pair."""
        hits = self.counter(f"{name}_hits").value
        misses = self.counter(f"{name}_misses").value
        total = hits + misses
        return hits / total if total else 0.0

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as one plain (JSON-able) dict."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def describe(self) -> list[str]:
        """Human-readable lines (the REPL ``metrics`` command).

        One line per metric, sorted *globally* by name across all
        three kinds, so successive ``metrics`` outputs — and outputs
        from different runs of the same workload — diff cleanly.
        """
        rows: list[tuple[str, str]] = []
        for name, counter in self._counters.items():
            rows.append((name, f"{name:<28} {counter.value}"))
        for name, gauge in self._gauges.items():
            rows.append((name, f"{name:<28} {gauge.value:g}"))
        for name, hist in self._histograms.items():
            rows.append((name, f"{name:<28} count={hist.count} "
                         f"mean={hist.mean:.3f} p50={hist.quantile(.5):.3f} "
                         f"p95={hist.quantile(.95):.3f}"))
        return [text for _, text in sorted(rows)]

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The shared process-level registry (sessions default to this).
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-level registry instance."""
    return _REGISTRY
