"""Structured query log: one JSONL record per query lifecycle event.

PR 3's tracer answers "where did *this* query spend its time" and
forgets the answer when the next query starts.  The query log is the
durable complement: every query a session drives gets a monotonically
assigned query ID and an append-only JSONL audit trail —

``{"ev": "received", "qid": N, "ts": ..., "text": ..., "engine": ...}``
    the query text arrived;
``{"ev": "parsed", "qid": N, "parse_ms": ..., "nodes": ...}``
    it compiled (AST size recorded);
``{"ev": "drained" | "truncated" | "cancelled" | "faulted" |
"rejected", "qid": N, "values": ..., ...}``
    exactly one terminal record per query: how it ended, how many
    values it produced, the governor verdict
    (:attr:`~repro.core.errors.DuelEvalLimit.kind`) when a limit
    tripped, the error text when it faulted, per-phase timings
    (parse/eval/format, milliseconds) and the query's target traffic
    (reads/writes/calls/allocs).

A query that fails to compile gets ``received`` → ``rejected`` (no
``parsed`` record).  Terminal records are flushed as they are written,
so an unattended run killed mid-session still leaves a parseable log
up to and including its last completed query.

The serve layer additionally writes qid-less **server records** for
connection-level lifecycle events the fault-tolerance machinery
produces (``{"ev": "server", "kind": ..., ...}``): heartbeat reaps,
watchdog hard-cancels, circuit-breaker trips and recoveries, session
parking and resumption.  Analyzers keying on qids should filter on
``ev != "server"``; :data:`SERVER_EVENT_KINDS` names the vocabulary.

Cost discipline: the log is consulted once per *query*, never per
value, behind the same single-predicate gate the tracer uses
(``session.qlog is not None``); ``benchmarks/bench_trace.py`` gates
the qlog-off drive overhead at <5% on the P3 workload.

Both evaluation engines produce identical lifecycle sequences for the
same query — :func:`drive_logged` brackets an engine-agnostic drive
with the full lifecycle, and the parity property tests in
``tests/property/test_engines.py`` diff the resulting records.
"""

from __future__ import annotations

import json
import threading
import time
from time import perf_counter_ns
from typing import Optional

from repro.core import nodes as N
from repro.core.errors import DuelCancelled, DuelError, DuelTruncation

#: Every terminal lifecycle event (exactly one per query).
TERMINAL_EVENTS = frozenset(
    {"drained", "truncated", "cancelled", "faulted", "rejected"})

#: Connection/server lifecycle record kinds (``ev: "server"``).
SERVER_EVENT_KINDS = frozenset(
    {"reaped", "hard_cancel", "worker_lost", "breaker_open",
     "breaker_closed", "session_parked", "session_resumed",
     "session_expired", "drain_begin", "drain_fast",
     "checkpoint", "recover_begin", "recover_done", "journal_torn",
     "slow_query"})

#: Stats keys copied onto terminal records (insertion order kept).
_STAT_FIELDS = ("steps", "lines", "reads", "writes", "calls", "allocs")


class QueryLog:
    """Append-only JSONL sink for query lifecycle records.

    Accepts a path (opened for writing, closed by :meth:`close`) or
    any writable text stream.  Query IDs are assigned monotonically by
    :meth:`begin` and never reused within one log.  ``clock`` is the
    wall-clock source for the ``ts`` field (override for deterministic
    tests).

    Safe to share between sessions on different threads (the
    ``repro.serve`` front end funnels every client into one log): qid
    allocation and the ``received`` write are one atomic step under a
    single lock, so qids are globally monotone *and* appear in the
    file in qid order; every record is written whole — concurrent
    queries interleave at record granularity, never mid-line.

    ``fsync=True`` additionally fsyncs the file on every flush point
    (terminal and server records): flushed records always survive a
    SIGKILL of this process, but only synced records survive losing
    the machine — and a log used as the ground truth of an
    exactly-once audit across crashes should opt in.
    """

    def __init__(self, stream_or_path, clock=time.time,
                 fsync: bool = False):
        if isinstance(stream_or_path, str):
            self._stream = open(stream_or_path, "w")
            self._owns = True
        else:
            self._stream = stream_or_path
            self._owns = False
        self._clock = clock
        self._fsync = fsync
        self._next_qid = 1
        self._lock = threading.Lock()
        #: Records written so far (all kinds).
        self.records = 0

    def _flush_locked(self) -> None:
        self._stream.flush()
        if self._fsync:
            try:
                import os
                os.fsync(self._stream.fileno())
            except (OSError, ValueError, AttributeError):
                pass               # in-memory streams have no fileno

    # -- lifecycle events --------------------------------------------------
    def begin(self, text: str, engine: str = "generator") -> int:
        """Assign the next query ID and log the ``received`` event.

        Allocation and write share one critical section: if they were
        separate lock acquisitions, two threads could allocate qids 7
        and 8 and then write 8's record first, breaking the "file is
        sorted by arrival" property downstream analyzers lean on.
        """
        with self._lock:
            qid = self._next_qid
            self._next_qid = qid + 1
            self._write_locked({"ev": "received", "qid": qid,
                                "ts": self._clock(), "text": text,
                                "engine": engine})
        return qid

    def parsed(self, qid: int, parse_ms: float, node) -> None:
        """The query compiled; ``node`` is the AST root (or a count)."""
        nodes = node if isinstance(node, int) \
            else sum(1 for _ in N.walk(node))
        self._write({"ev": "parsed", "qid": qid, "ts": self._clock(),
                     "parse_ms": round(parse_ms, 3), "nodes": nodes})

    def end(self, qid: int, outcome: str, *, values: int = 0,
            kind: Optional[str] = None, error=None,
            stats: Optional[dict] = None,
            phases: Optional[dict] = None,
            fingerprint: Optional[str] = None,
            trace_id: Optional[str] = None,
            access: Optional[dict] = None) -> None:
        """The query's terminal record (flushed immediately).

        ``fingerprint`` is the statement fingerprint hash
        (:mod:`repro.obs.fingerprint`) and ``trace_id`` the wire trace
        id (:mod:`repro.obs.reqtrace`) — both optional so in-process
        sessions without the serve layer keep their record shape.
        ``access`` is the compact memory-locality summary
        (:func:`repro.obs.access.compact_profile`) for queries that
        ran with the access tracer sampled on.
        """
        if outcome not in TERMINAL_EVENTS:
            raise ValueError(f"unknown terminal outcome {outcome!r} "
                             f"(know: {', '.join(sorted(TERMINAL_EVENTS))})")
        record: dict = {"ev": outcome, "qid": qid, "ts": self._clock(),
                        "values": values}
        if kind is not None:
            record["kind"] = kind
        if fingerprint is not None:
            record["fingerprint"] = fingerprint
        if trace_id is not None:
            record["trace_id"] = trace_id
        if error is not None:
            record["error"] = str(error)
            record["error_type"] = type(error).__name__
        if stats:
            for name in _STAT_FIELDS:
                if name in stats:
                    record[name] = stats[name]
            if "wall_ms" in stats:
                record["wall_ms"] = round(stats["wall_ms"], 3)
        if phases:
            record["phases"] = {name: round(ms, 3)
                                for name, ms in phases.items()}
        if access:
            record["access"] = dict(access)
        with self._lock:
            self._write_locked(record)
            self._flush_locked()

    def server_event(self, kind: str, **fields) -> None:
        """A qid-less server lifecycle record (flushed immediately).

        ``kind`` must come from :data:`SERVER_EVENT_KINDS` so the
        vocabulary stays closed and greppable; extra ``fields`` are
        copied onto the record (client ids, reasons, counts).
        """
        if kind not in SERVER_EVENT_KINDS:
            raise ValueError(
                f"unknown server event kind {kind!r} "
                f"(know: {', '.join(sorted(SERVER_EVENT_KINDS))})")
        record = {"ev": "server", "kind": kind, "ts": self._clock()}
        record.update(fields)
        with self._lock:
            self._write_locked(record)
            self._flush_locked()

    # -- plumbing ----------------------------------------------------------
    def _write(self, record: dict) -> None:
        with self._lock:
            self._write_locked(record)

    def _write_locked(self, record: dict) -> None:
        self._stream.write(json.dumps(record) + "\n")
        self.records += 1

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush, and close the stream if this log opened it."""
        with self._lock:
            self._flush_locked()
            if self._owns:
                self._stream.close()


def classify(failure) -> tuple[str, Optional[str]]:
    """Map a drive exception (or None) to ``(outcome, verdict kind)``.

    The single classification point shared by the session drive and
    :func:`drive_logged`, so every producer of terminal records agrees
    on what ``truncated`` vs ``cancelled`` vs ``faulted`` means.
    """
    if failure is None:
        return "drained", None
    if isinstance(failure, DuelCancelled):
        return "cancelled", failure.kind
    if isinstance(failure, DuelTruncation):
        return "truncated", failure.kind
    return "faulted", getattr(failure, "kind", None)


def drive_logged(qlog: QueryLog, session, text: str, drive,
                 engine: str = "generator") -> tuple[str, int]:
    """Drive one query under full lifecycle logging, engine-agnostic.

    ``drive(node)`` must return an iterator of values and charge the
    session's governor as the engines do; pass
    ``session.evaluator.eval`` for the generator engine or
    ``StateMachineEvaluator.iter_drive`` for the paper's state
    machine.  Returns ``(outcome, values produced)``.  This is the
    parity harness: for the same query both engines must leave
    byte-identical records modulo timings.
    """
    governor = session.governor
    governor.begin_query()
    qid = qlog.begin(text, engine)
    t0 = perf_counter_ns()
    try:
        node = session.compile(text)
    except DuelError as error:
        governor.end_query()
        qlog.end(qid, "rejected", error=error)
        return "rejected", 0
    qlog.parsed(qid, (perf_counter_ns() - t0) / 1e6, node)
    backend = session.evaluator.backend
    reads0, writes0 = backend.reads, backend.writes
    calls0, allocs0 = backend.calls, backend.allocs
    session.evaluator.reset()
    values = 0
    failure = None
    try:
        for _ in drive(node):
            values += 1
    except DuelError as error:
        failure = error
    finally:
        governor.end_query()
    outcome, kind = classify(failure)
    stats = governor.stats()
    stats["reads"] = backend.reads - reads0
    stats["writes"] = backend.writes - writes0
    stats["calls"] = backend.calls - calls0
    stats["allocs"] = backend.allocs - allocs0
    qlog.end(qid, outcome, values=values, kind=kind,
             error=failure if outcome == "faulted" else None, stats=stats)
    return outcome, values
