"""Symbols and symbol tables for the simulated inferior.

A :class:`Symbol` is what the debugger interface hands back for a name
lookup: the declared type plus the address where the object lives in
target memory (for functions, the text-segment entry point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ctype.types import CType


class SymbolKind(enum.Enum):
    """Storage class of a symbol."""

    GLOBAL = "global"
    LOCAL = "local"
    PARAMETER = "parameter"
    FUNCTION = "function"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolKind.{self.name}"


@dataclass
class Symbol:
    """One named object in the target: type, address, storage class."""

    name: str
    ctype: CType
    address: int
    kind: SymbolKind = SymbolKind.GLOBAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Symbol({self.name!r}, {self.ctype.name()}, "
                f"{self.address:#x}, {self.kind.value})")


class SymbolTable:
    """An ordered name → :class:`Symbol` mapping (one scope's symbols)."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        """Install ``symbol``; redefinition replaces the previous entry."""
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def copy_state(self) -> dict[str, Symbol]:
        """Shallow snapshot of the bindings (see repro.target.snapshot)."""
        return dict(self._symbols)

    def restore_state(self, state: dict[str, Symbol]) -> None:
        self._symbols = dict(state)
