"""Page-granular target read cache with an adaptive prefetcher.

The classic remote-debugger amortization (Hanson's revisited machine-
independent debugger): the evaluator asks the target for 4 and 8 byte
values one at a time, but the narrow interface underneath may be a
slow channel — so batch.  :class:`PageCachingBackend` sits in the
evaluator's wrapper chain between the access observatory
(:class:`~repro.target.interface.AccessTracingBackend`, which must
keep seeing *logical* reads — the engine-parity oracle and the scan
classifier both depend on that stream being cache-independent) and
the quota layer (:class:`~repro.target.interface.GovernedBackend`):
every read the evaluator issues is served from fixed-size pages, and
each miss turns into **one bulk inner read** covering the whole run
of missing pages.  The inner reads are the *physical* traffic; the
``reads`` counter on the outer
:class:`~repro.target.interface.TracingBackend` stays logical.

Coherence is epoch-based.  :class:`~repro.target.memory.Memory` bumps
a monotone ``epoch`` on every mutation (writes, mappings, unmappings
— which covers query writes, mini-C execution, fault-injected unmaps
and snapshot restore, since restore rebuilds the region map and then
advances past the snapshot's recorded epoch).  A cache checks the
epoch on every read and drops everything when it moved; its *own*
write-through invalidates just the touched pages and resyncs, so a
single-writer session keeps its cache warm across its own writes.
Under the serve layer's shared-program RW lock writers are exclusive,
so the check-then-serve sequence can never interleave with a foreign
write — each session's private cache stays coherent without any
cross-session protocol beyond the counter.

The prefetcher consumes the PR 9 scan classifier *online*: it keeps a
small stride window over recent logical reads and, on a miss during a
``sequential``/``strided`` scan, extends the bulk fill to the pages
the dominant stride predicts next (stride-aware: a sparse stride
skips pages a contiguous scan would fetch).  ``pointer-chase`` and
``random`` patterns never prefetch — a chase's next address lives in
memory it has not read yet, so speculation only pollutes the LRU.

Policy is static per session: ``off`` (not even constructed — the
evaluator splices the hop out exactly like the access tracer, so the
off-path cost is zero), ``demand`` (cache, no speculation), or
``adaptive`` (cache + prefetch).
"""

from __future__ import annotations

from collections import Counter, OrderedDict, deque
from dataclasses import dataclass

from repro.target.memory import TargetMemoryFault

#: Default page size in bytes (power of two; matches the advisor's
#: middle sweep point, where BENCH_9's projection put the knee).
DEFAULT_PAGE_SIZE = 256
#: Default capacity in pages (64 × 256 B = 16 KiB resident).
DEFAULT_CAPACITY = 64
#: Logical reads remembered for online stride classification.
STRIDE_WINDOW = 48
#: How many *pages* a regular scan prefetches ahead of use (bounded
#: by half the capacity, so speculation can never evict the demand
#: working set wholesale).
PREFETCH_PAGES = 8
#: Reclassify every N logical reads (classification is cheap but not
#: free; patterns do not change faster than this).
CLASSIFY_EVERY = 16

MODES = ("off", "demand", "adaptive")


@dataclass(frozen=True)
class PageCachePolicy:
    """Static page-cache configuration (the ``--page-cache`` knob)."""

    mode: str = "adaptive"
    page_size: int = DEFAULT_PAGE_SIZE
    capacity: int = DEFAULT_CAPACITY

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(
                f"page-cache mode must be one of {'|'.join(MODES)}, "
                f"not {self.mode!r}")
        if self.page_size < 8 or self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a power of two >= 8")
        if self.capacity < 1:
            raise ValueError("page-cache capacity must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"


def parse_policy(mode: str, page_size: int = DEFAULT_PAGE_SIZE,
                 capacity: int = DEFAULT_CAPACITY) -> PageCachePolicy:
    """Build a policy from CLI-ish inputs (raises ``ValueError``)."""
    return PageCachePolicy(mode=str(mode).lower(), page_size=page_size,
                           capacity=capacity)


class PageCachingBackend:
    """Serves ``get_target_bytes`` from an LRU of fixed-size pages.

    ``inner`` is the next backend down (the governed backend);
    ``epoch_source`` is a zero-argument callable returning the
    target's current memory epoch — normally ``program.memory`` is
    reachable through the chain and the evaluator binds
    ``lambda: memory.epoch``.  Everything that is not a read or a
    write delegates transparently.
    """

    def __init__(self, inner, policy: PageCachePolicy, epoch_source):
        if not policy.enabled:
            raise ValueError("PageCachingBackend requires mode "
                             "'demand' or 'adaptive' (off means: do "
                             "not construct one)")
        self.inner = inner
        self.policy = policy
        self._epoch_source = epoch_source
        self._inner_get = inner.get_target_bytes
        self._inner_put = inner.put_target_bytes
        self._page_size = policy.page_size
        self._shift = policy.page_size.bit_length() - 1
        self._capacity = policy.capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._epoch = epoch_source()
        self._adaptive = policy.mode == "adaptive"
        # -- online stride classifier state (adaptive only) --------------
        self._last_addr: int | None = None
        self._deltas: deque[int] = deque(maxlen=STRIDE_WINDOW)
        self._stride_counts: Counter = Counter()
        self._sizes: Counter = Counter()
        self._size_window: deque[int] = deque(maxlen=STRIDE_WINDOW)
        self._reads_since_classify = 0
        self._pattern = "scalar"
        self._stride = 0
        self._prefetched: set[int] = set()
        # -- counters ----------------------------------------------------
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.physical_reads = 0
        self.physical_bytes = 0
        self.prefetched_pages = 0
        self.prefetched_bytes = 0
        self.prefetch_hits = 0
        self.uncacheable = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # -- coherence -------------------------------------------------------
    def invalidate_all(self) -> None:
        """Drop every cached page (rollback/restore hook; also the
        lazy epoch-mismatch path)."""
        if self._pages:
            self._pages.clear()
            self._prefetched.clear()
            self.flushes += 1
        self._epoch = self._epoch_source()

    # -- reads -----------------------------------------------------------
    def get_target_bytes(self, address: int, size: int) -> bytes:
        epoch = self._epoch_source()
        if epoch != self._epoch:
            # Someone mutated memory since the cache was filled — a
            # foreign session's committed write, a snapshot restore,
            # target-call side effects.  Drop everything.
            if self._pages:
                self._pages.clear()
                self._prefetched.clear()
                self.flushes += 1
            self._epoch = epoch
        if self._adaptive:
            self._observe(address, size)
        shift = self._shift
        first = address >> shift
        last = (address + size - 1) >> shift
        pages = self._pages
        if first == last:
            data = pages.get(first)
            if data is not None:
                self.hits += 1
                pages.move_to_end(first)
                if first in self._prefetched:
                    self._prefetched.discard(first)
                    self.prefetch_hits += 1
                offset = address - (first << shift)
                return data[offset:offset + size]
            return self._fill(first, last, address, size)
        missing = [p for p in range(first, last + 1) if p not in pages]
        if not missing:
            self.hits += 1
            parts = []
            for page in range(first, last + 1):
                data = pages[page]
                pages.move_to_end(page)
                if page in self._prefetched:
                    self._prefetched.discard(page)
                    self.prefetch_hits += 1
                base = page << shift
                lo = max(address, base) - base
                hi = min(address + size, base + self._page_size) - base
                parts.append(data[lo:hi])
            return b"".join(parts)
        return self._fill(first, last, address, size)

    # -- writes ----------------------------------------------------------
    def put_target_bytes(self, address: int, data: bytes) -> None:
        before = self._epoch_source()
        self._inner_put(address, data)
        after = self._epoch_source()
        shift = self._shift
        last = (address + max(len(data), 1) - 1) >> shift
        for page in range(address >> shift, last + 1):
            self._pages.pop(page, None)
            self._prefetched.discard(page)
        if self._epoch == before:
            # No foreign mutation intervened: our own write-through
            # invalidation covers the delta, so resync instead of
            # flushing the whole cache on the next read.
            self._epoch = after

    # -- miss path -------------------------------------------------------
    def _fill(self, first: int, last: int, address: int,
              size: int) -> bytes:
        """One miss: bulk-read every missing page in ``[first, last]``
        (plus predicted pages under adaptive policy) and serve."""
        self.misses += 1
        pages = self._pages
        shift = self._shift
        page_size = self._page_size
        wanted = [p for p in range(first, last + 1) if p not in pages]
        prefetch: list[int] = []
        if self._adaptive and self._stride:
            prefetch = self._predict(address, size, first, last)
        fetched_prefetch: set[int] = set()
        for run_start, run_len in _runs(sorted(set(wanted) | set(prefetch))):
            base = run_start << shift
            length = run_len << shift
            try:
                blob = self._inner_get(base, length)
            except TargetMemoryFault:
                # The page run pads past a region boundary (or the
                # demanded range itself is unmapped).  Retry page by
                # page so a bad speculative page can't fail a good
                # demand read, then fall back to the exact range.
                blob = None
            if blob is not None:
                self.physical_reads += 1
                self.physical_bytes += length
                for index in range(run_len):
                    page = run_start + index
                    pages[page] = blob[index << shift:
                                       (index + 1) << shift]
                    pages.move_to_end(page)
                    if page in prefetch and page not in wanted:
                        fetched_prefetch.add(page)
                continue
            for page in range(run_start, run_start + run_len):
                if page in pages:
                    continue
                base = page << shift
                try:
                    blob = self._inner_get(base, page_size)
                except TargetMemoryFault:
                    continue
                self.physical_reads += 1
                self.physical_bytes += page_size
                pages[page] = blob
                pages.move_to_end(page)
                if page in prefetch and page not in wanted:
                    fetched_prefetch.add(page)
        if fetched_prefetch:
            self._prefetched |= fetched_prefetch
            self.prefetched_pages += len(fetched_prefetch)
            self.prefetched_bytes += len(fetched_prefetch) * page_size
        while len(pages) > self._capacity:
            evicted, _ = pages.popitem(last=False)
            self._prefetched.discard(evicted)
            self.evictions += 1
        if any(p not in pages for p in range(first, last + 1)):
            # Some demanded page would not fill whole (region edge or
            # genuinely unmapped address): serve the exact range
            # uncached so fault semantics match the uncached chain
            # byte for byte.
            self.uncacheable += 1
            data = self._inner_get(address, size)
            self.physical_reads += 1
            self.physical_bytes += size
            return data
        parts = []
        for page in range(first, last + 1):
            data = pages[page]
            base = page << shift
            lo = max(address, base) - base
            hi = min(address + size, base + page_size) - base
            parts.append(data[lo:hi])
        return parts[0] if len(parts) == 1 else b"".join(parts)

    # -- online classification / prediction ------------------------------
    def _observe(self, address: int, size: int) -> None:
        last = self._last_addr
        self._last_addr = address
        if len(self._size_window) == STRIDE_WINDOW:
            old = self._size_window[0]
            self._sizes[old] -= 1
            if not self._sizes[old]:
                del self._sizes[old]
        self._size_window.append(size)
        self._sizes[size] += 1
        if last is not None:
            delta = address - last
            if delta:
                if len(self._deltas) == STRIDE_WINDOW:
                    old = self._deltas[0]
                    self._stride_counts[old] -= 1
                    if not self._stride_counts[old]:
                        del self._stride_counts[old]
                self._deltas.append(delta)
                self._stride_counts[delta] += 1
        self._reads_since_classify += 1
        if self._reads_since_classify >= CLASSIFY_EVERY:
            self._reads_since_classify = 0
            self._classify()

    def _classify(self) -> None:
        from repro.obs.access import classify_pattern
        deltas = len(self._deltas)
        if not deltas:
            self._pattern, self._stride = "scalar", 0
            return
        dominant_size = self._sizes.most_common(1)[0][0]
        # Revisit tracking needs an unbounded seen-set; the cache only
        # uses the classifier to separate regular scans from
        # everything else, and chase-vs-random both mean "demand
        # only", so 0.0 is a safe stand-in.
        pattern = classify_pattern(self._stride_counts, deltas,
                                   dominant_size, 0.0)
        if pattern in ("sequential", "strided"):
            self._pattern = pattern
            self._stride = self._stride_counts.most_common(1)[0][0]
        else:
            self._pattern = pattern
            self._stride = 0

    def _predict(self, address: int, size: int, first: int,
                 last: int) -> list[int]:
        """Pages the dominant stride says the scan touches next.

        Stride-aware in both regimes: a dense scan (|stride| within a
        page) wants the next run of *consecutive* pages in scan
        direction — the bulk fill then turns one miss into one big
        contiguous read; a sparse stride (> page size) lands on
        scattered pages, so only the pages the stride actually hits
        are speculated — fetching the gaps would be pure pollution.
        """
        stride = self._stride
        shift = self._shift
        limit = min(PREFETCH_PAGES, max(1, self._capacity // 2))
        predicted: list[int] = []
        if abs(stride) <= self._page_size:
            direction = 1 if stride > 0 else -1
            edge = last if direction > 0 else first
            for k in range(1, limit + 1):
                page = edge + k * direction
                if page >= 0 and page not in self._pages:
                    predicted.append(page)
            return predicted
        addr = address
        seen: set[int] = set()
        for _ in range(4 * limit):
            addr += stride
            for page in (addr >> shift, (addr + size - 1) >> shift):
                if page < 0 or first <= page <= last or page in seen:
                    continue
                seen.add(page)
                if page not in self._pages:
                    predicted.append(page)
            if len(predicted) >= limit:
                break
        return predicted[:limit]

    # -- observability ---------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Raw monotone counters (per-query deltas come from here)."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_flushes": self.flushes,
            "physical_reads": self.physical_reads,
            "physical_bytes": self.physical_bytes,
            "prefetched_pages": self.prefetched_pages,
            "prefetched_bytes": self.prefetched_bytes,
            "prefetch_hits": self.prefetch_hits,
        }

    def stats(self) -> dict:
        """Counters plus configuration and derived rates (the REPL
        ``cache`` command / health section shape)."""
        return {
            **self.counters(),
            "hit_rate": round(self.hit_rate, 4),
            "pattern": self._pattern,
            "stride": self._stride,
            "resident_pages": len(self._pages),
            "page_size": self._page_size,
            "capacity": self._capacity,
            "mode": self.policy.mode,
            "epoch": self._epoch,
        }


def _runs(pages: list[int]):
    """Yield ``(start, length)`` for each maximal consecutive run."""
    start = prev = None
    for page in pages:
        if start is None:
            start = prev = page
            continue
        if page == prev + 1:
            prev = page
            continue
        yield start, prev - start + 1
        start = prev = page
    if start is not None:
        yield start, prev - start + 1
