"""The paper's narrow, machine-independent debugger interface.

Everything above the target — the DUEL evaluator, the mini-C
interpreter, the CLI — talks to the debuggee exclusively through
:class:`DebuggerInterface` (cf. Hanson's *A Machine-Independent
Debugger — Revisited*: keep the unreliable target access behind a tiny
interface).  :class:`SimulatorBackend` binds it to a simulated
:class:`~repro.target.program.TargetProgram`;
:class:`~repro.target.gdbadapter.GdbBackend` binds the same interface
to a live gdb.  :class:`FaultInjectingBackend` wraps any backend with
deterministic fault injection so the error-reporting and recovery
paths can be tested without a flaky real target.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from repro.target.memory import TargetMemoryFault
from repro.target.program import TargetProgram
from repro.target.symbols import Symbol


class DebuggerInterface(abc.ABC):
    """The minimal set of target operations DUEL needs.

    Memory-access failures raise
    :class:`~repro.target.memory.TargetMemoryFault`; the core layer
    converts them to the paper-format ``DuelMemoryError``.  Lookup
    methods return ``None`` for absence rather than raising.
    """

    # -- symbols and types -------------------------------------------------
    @abc.abstractmethod
    def get_target_variable(self, name: str) -> Optional[Symbol]:
        """The symbol for ``name`` (innermost frame, then globals)."""

    @abc.abstractmethod
    def get_target_typedef(self, name: str):
        """The target's typedef ``name``, or None."""

    @abc.abstractmethod
    def get_target_struct(self, tag: str):
        """The target's ``struct tag``, or None."""

    @abc.abstractmethod
    def get_target_union(self, tag: str):
        """The target's ``union tag``, or None."""

    @abc.abstractmethod
    def get_target_enum(self, tag: str):
        """The target's ``enum tag``, or None."""

    @abc.abstractmethod
    def enum_constant(self, name: str):
        """``(value, ctype)`` for an enumeration constant, or None."""

    # -- frames ------------------------------------------------------------
    @abc.abstractmethod
    def frames_count(self) -> int:
        """Number of live stack frames."""

    @abc.abstractmethod
    def get_frame_variable(self, index: int, name: str) -> Optional[Symbol]:
        """The symbol for ``name`` in frame ``index`` (0 = innermost)."""

    # -- memory ------------------------------------------------------------
    @abc.abstractmethod
    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True when ``[address, address+size)`` is readable."""

    @abc.abstractmethod
    def get_target_bytes(self, address: int, size: int) -> bytes:
        """Read raw target bytes (faults on unmapped access)."""

    @abc.abstractmethod
    def put_target_bytes(self, address: int, data: bytes) -> None:
        """Write raw target bytes (faults on unmapped access)."""

    @abc.abstractmethod
    def alloc_target_space(self, size: int) -> int:
        """Allocate debugger scratch space in the target."""

    # -- calls -------------------------------------------------------------
    @abc.abstractmethod
    def call_target_func(self, target, raw_args: Sequence):
        """Call a target function by name or entry address."""


class SimulatorBackend(DebuggerInterface):
    """The interface bound to a simulated inferior."""

    def __init__(self, program: TargetProgram):
        self.program = program

    # -- symbols and types -------------------------------------------------
    def get_target_variable(self, name: str) -> Optional[Symbol]:
        return self.program.lookup(name)

    def get_target_typedef(self, name: str):
        return self.program.types.typedefs.get(name)

    def get_target_struct(self, tag: str):
        return self.program.types.structs.get(tag)

    def get_target_union(self, tag: str):
        return self.program.types.unions.get(tag)

    def get_target_enum(self, tag: str):
        return self.program.types.enums.get(tag)

    def enum_constant(self, name: str):
        return self.program.types.enum_constants.get(name)

    # -- frames ------------------------------------------------------------
    def frames_count(self) -> int:
        return self.program.stack.depth

    def get_frame_variable(self, index: int, name: str) -> Optional[Symbol]:
        if not 0 <= index < self.program.stack.depth:
            return None
        return self.program.stack.frame(index).symbols.lookup(name)

    # -- memory ------------------------------------------------------------
    def is_mapped(self, address: int, size: int = 1) -> bool:
        return self.program.memory.is_mapped(address, size)

    def get_target_bytes(self, address: int, size: int) -> bytes:
        return self.program.memory.read(address, size)

    def put_target_bytes(self, address: int, data: bytes) -> None:
        self.program.memory.write(address, data)

    def alloc_target_space(self, size: int) -> int:
        return self.program.alloc(size)

    # -- calls -------------------------------------------------------------
    def call_target_func(self, target, raw_args: Sequence):
        return self.program.call(target, raw_args)


class GovernedBackend:
    """Meters target traffic against a query's resource governor.

    The evaluator wraps its backend in this before use, so the
    boundary Hanson's design keeps narrow is also where quotas are
    enforced: target function calls and scratch allocations charge the
    ``calls`` / ``allocs`` quotas, and both honour the cooperative
    cancel token first — a ^C lands *between* target operations, not
    only between generator steps.  Everything else delegates
    transparently (reads stay zero-overhead: the step budget already
    bounds them, one step per value).
    """

    def __init__(self, inner: DebuggerInterface, governor):
        self.inner = inner
        self.governor = governor

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def call_target_func(self, target, raw_args: Sequence):
        governor = self.governor
        governor.checkpoint()
        governor.charge("calls")
        return self.inner.call_target_func(target, raw_args)

    def alloc_target_space(self, size: int) -> int:
        governor = self.governor
        governor.checkpoint()
        governor.charge("allocs")
        return self.inner.alloc_target_space(size)


class TracingBackend:
    """Counts target traffic and attributes it to the active trace span.

    Sits outermost in the evaluator's wrapper chain (around
    :class:`GovernedBackend`), so every read/write/call/alloc the
    query performs — whichever engine drives it — bumps a process-wide
    counter here, and, when a
    :class:`~repro.obs.trace.QueryTracer` is attached, lands on the
    AST node currently being pulled.  With tracing off the per-read
    cost is one increment and one predicate check; the bound inner
    methods are resolved once at construction to keep the
    ``__getattr__`` delegation hop off the read/write hot path.
    """

    def __init__(self, inner, tracer=None):
        self.inner = inner
        self.tracer = tracer
        self.reads = 0
        self.writes = 0
        self.calls = 0
        self.allocs = 0
        self._inner_get = inner.get_target_bytes
        self._inner_put = inner.put_target_bytes

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # -- metered hot paths -------------------------------------------------
    def get_target_bytes(self, address: int, size: int) -> bytes:
        self.reads += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_read()
        return self._inner_get(address, size)

    def put_target_bytes(self, address: int, data: bytes) -> None:
        self.writes += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_write()
        self._inner_put(address, data)

    def call_target_func(self, target, raw_args: Sequence):
        self.calls += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_call()
        return self.inner.call_target_func(target, raw_args)

    def alloc_target_space(self, size: int) -> int:
        self.allocs += 1
        return self.inner.alloc_target_space(size)

    # -- reporting ---------------------------------------------------------
    def counts(self) -> dict:
        """The cumulative traffic counters as a plain dict."""
        return {"reads": self.reads, "writes": self.writes,
                "calls": self.calls, "allocs": self.allocs}


class AccessTracingBackend:
    """Streams each target access (op, address, size) to a tracer.

    The memory-access observatory's hook, sitting *inside*
    :class:`TracingBackend` (which owns the scalar counters and span
    attribution) and outside :class:`GovernedBackend` — so the
    addresses it sees are exactly the ones the evaluator asked for,
    whatever engine drives the query.  Same hot-path discipline as its
    neighbours, taken one step further: with no tracer attached the
    evaluator splices this hop out of the read/write path entirely
    (:meth:`~repro.core.eval.Evaluator.set_access_tracer` repoints the
    outer counter's bound methods), so direct use costs one predicate
    and the shipped stack costs nothing.  The tracer is an
    :class:`~repro.obs.access.AccessTracer` (anything with an
    ``on_access(op, address, size)`` method works).
    """

    def __init__(self, inner, tracer=None):
        self.inner = inner
        self.tracer = tracer
        self._inner_get = inner.get_target_bytes
        self._inner_put = inner.put_target_bytes

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def get_target_bytes(self, address: int, size: int) -> bytes:
        tracer = self.tracer
        if tracer is not None:
            tracer.on_access("r", address, size)
        return self._inner_get(address, size)

    def put_target_bytes(self, address: int, data: bytes) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.on_access("w", address, len(data))
        self._inner_put(address, data)


class FaultInjectingBackend(DebuggerInterface):
    """A deterministic fault-injecting wrapper around any backend.

    Robustness-test harness: reproduces the failure modes of a real,
    flaky target at the interface boundary so the paper-format error
    reporting and session recovery can be exercised on demand.

    Parameters (all faults are deterministic given the arguments):

    ``fail_read_at``
        1-based read indices (int or iterable) at which
        ``get_target_bytes`` raises a
        :class:`~repro.target.memory.TargetMemoryFault`.
    ``read_fault_rate`` / ``seed``
        Probability that any given read faults, driven by a private
        ``random.Random(seed)`` — reproducible pseudo-random chaos.
    ``unmap_after_reads`` / ``unmap_region``
        After the Nth read completes, unmap the named region of the
        underlying program — a structure disappearing mid-generator.
    ``fail_calls``
        When true, every ``call_target_func`` raises.

    The wrapper records what it injected in :attr:`injected`.
    """

    def __init__(self, inner: DebuggerInterface, *,
                 fail_read_at=(), read_fault_rate: float = 0.0,
                 seed: int = 0, unmap_after_reads: Optional[int] = None,
                 unmap_region: str = "heap", fail_calls: bool = False):
        self.inner = inner
        if isinstance(fail_read_at, int):
            fail_read_at = (fail_read_at,)
        self._fail_read_at = frozenset(fail_read_at)
        self._read_fault_rate = read_fault_rate
        self._rng = random.Random(seed)
        self._unmap_after_reads = unmap_after_reads
        self._unmap_region = unmap_region
        self._fail_calls = fail_calls
        #: Count of get_target_bytes calls seen so far.
        self.reads = 0
        #: Log of injected faults: (kind, detail) tuples.
        self.injected: list[tuple[str, object]] = []

    @property
    def program(self):
        """The underlying program (lets snapshot recovery see through)."""
        return getattr(self.inner, "program", None)

    # -- fault points ------------------------------------------------------
    def get_target_bytes(self, address: int, size: int) -> bytes:
        self.reads += 1
        if (self.reads in self._fail_read_at
                or (self._read_fault_rate
                    and self._rng.random() < self._read_fault_rate)):
            self.injected.append(("read", self.reads))
            raise TargetMemoryFault(address, size, "read",
                                    f"injected fault on read #{self.reads}")
        data = self.inner.get_target_bytes(address, size)
        if self._unmap_after_reads is not None \
                and self.reads == self._unmap_after_reads \
                and self.program is not None:
            self.injected.append(("unmap", self._unmap_region))
            self.program.memory.unmap(self._unmap_region)
        return data

    def call_target_func(self, target, raw_args: Sequence):
        if self._fail_calls:
            self.injected.append(("call", target))
            raise TargetMemoryFault(
                0, 0, "call", f"injected fault calling {target!r}")
        return self.inner.call_target_func(target, raw_args)

    # -- transparent delegation --------------------------------------------
    def get_target_variable(self, name: str) -> Optional[Symbol]:
        return self.inner.get_target_variable(name)

    def get_target_typedef(self, name: str):
        return self.inner.get_target_typedef(name)

    def get_target_struct(self, tag: str):
        return self.inner.get_target_struct(tag)

    def get_target_union(self, tag: str):
        return self.inner.get_target_union(tag)

    def get_target_enum(self, tag: str):
        return self.inner.get_target_enum(tag)

    def enum_constant(self, name: str):
        return self.inner.enum_constant(name)

    def frames_count(self) -> int:
        return self.inner.frames_count()

    def get_frame_variable(self, index: int, name: str) -> Optional[Symbol]:
        return self.inner.get_frame_variable(index, name)

    def is_mapped(self, address: int, size: int = 1) -> bool:
        return self.inner.is_mapped(address, size)

    def put_target_bytes(self, address: int, data: bytes) -> None:
        self.inner.put_target_bytes(address, data)

    def alloc_target_space(self, size: int) -> int:
        return self.inner.alloc_target_space(size)
