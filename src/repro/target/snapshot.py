"""Checkpoint and rollback for the simulated inferior.

``take`` captures everything a failed or side-effecting query could
disturb — region contents (and the region map itself, so an injected
unmap is undone), heap bookkeeping, globals, functions, frames, type
tables, interned strings, and output — and ``restore`` puts it back in
place, leaving the same :class:`~repro.target.program.TargetProgram`
object usable by every session already attached to it.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass

from repro.target.program import TargetProgram

#: Serialized-snapshot magic prefix (bump on incompatible changes).
SNAP_MAGIC = b"DUELSNAP1"


@dataclass
class Snapshot:
    """An opaque captured program state (pass back to :func:`restore`)."""

    regions: list
    heap: tuple
    stack: tuple
    globals: dict
    functions: dict
    function_symbols: dict
    types: tuple
    interned: dict
    output: list
    data_next: int
    text_next: int
    #: Memory epoch at capture time.  ``restore`` never rewinds the
    #: live counter to this value — it advances *past* it, so page
    #: caches filled before the restore (or, after a crash, before
    #: the checkpoint was taken) can never serve stale bytes.
    epoch: int = 0

    def serialize(self) -> bytes:
        """A durable byte encoding of this snapshot.

        Everything pickles except ``functions``: the mini-C function
        implementations are closures over their interpreter, so only
        the *names* travel — :meth:`deserialize` rebinds each name to
        the implementation a freshly rebuilt program provides.  That
        is sound because the serving layer always reconstructs the
        target from the same program source before restoring.  Region
        contents are mostly zeros, so the pickle is zlib-compressed
        (level 1: the win is ~100x, the speed cost negligible).
        """
        payload = {
            "regions": self.regions,
            "heap": self.heap,
            "stack": self.stack,
            "globals": self.globals,
            "function_names": sorted(self.functions),
            "function_symbols": self.function_symbols,
            "types": self.types,
            "interned": self.interned,
            "output": self.output,
            "data_next": self.data_next,
            "text_next": self.text_next,
            "epoch": self.epoch,
        }
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return SNAP_MAGIC + zlib.compress(body, 1)

    @classmethod
    def deserialize(cls, data: bytes, program: TargetProgram) -> "Snapshot":
        """Rebuild a snapshot from :meth:`serialize` output.

        ``program`` must be a freshly built instance of the same
        target program — it supplies the function implementations the
        encoding deliberately left out.  Raises :class:`ValueError`
        on bad magic, corrupt payload, or a function name the program
        no longer defines.
        """
        if not data.startswith(SNAP_MAGIC):
            raise ValueError("not a serialized DUEL snapshot")
        try:
            payload = pickle.loads(zlib.decompress(data[len(SNAP_MAGIC):]))
        except (zlib.error, pickle.UnpicklingError, EOFError,
                AttributeError, ValueError) as error:
            raise ValueError(
                f"corrupt serialized snapshot: {error}") from error
        functions = {}
        for name in payload["function_names"]:
            entry = program.functions.get(name)
            if entry is None:
                raise ValueError(
                    f"snapshot references function {name!r} the rebuilt "
                    "program does not define")
            functions[name] = entry.impl
        return cls(
            regions=payload["regions"],
            heap=payload["heap"],
            stack=payload["stack"],
            globals=payload["globals"],
            functions=functions,
            function_symbols=payload["function_symbols"],
            types=payload["types"],
            interned=payload["interned"],
            output=payload["output"],
            data_next=payload["data_next"],
            text_next=payload["text_next"],
            epoch=payload.get("epoch", 0),
        )


def take(program: TargetProgram) -> Snapshot:
    """Capture ``program``'s full state."""
    types = program.types
    return Snapshot(
        regions=[(r.name, r.base, r.size, bytes(r.data))
                 for r in program.memory.regions],
        heap=program.heap.copy_state(),
        stack=program.stack.copy_state(),
        globals=program.globals.copy_state(),
        functions={name: entry.impl
                   for name, entry in program.functions.items()},
        function_symbols={name: entry.symbol
                          for name, entry in program.functions.items()},
        types=(dict(types.structs), dict(types.unions), dict(types.enums),
               dict(types.typedefs), dict(types.enum_constants)),
        interned=dict(program._interned),
        output=list(program.output),
        data_next=program._data_next,
        text_next=program._text_next,
        epoch=program.memory.epoch,
    )


def restore(program: TargetProgram, snapshot: Snapshot) -> None:
    """Rewind ``program`` to a previously taken :class:`Snapshot`."""
    memory = program.memory
    # Rebuild the region map exactly (an unmapped region comes back,
    # a newly mapped one goes away), then the contents.
    for region in list(memory.regions):
        memory.unmap(region.name)
    for name, base, size, data in snapshot.regions:
        region = memory.map_new(name, base, size)
        region.data[:] = data
    program.heap.restore_state(snapshot.heap)
    program.stack.restore_state(snapshot.stack)
    program.globals.restore_state(snapshot.globals)

    program.functions = {}
    program._functions_by_address = {}
    for name, symbol in snapshot.function_symbols.items():
        from repro.target.program import TargetFunction
        entry = TargetFunction(symbol, snapshot.functions[name])
        program.functions[name] = entry
        program._functions_by_address[symbol.address] = entry

    structs, unions, enums, typedefs, enum_constants = snapshot.types
    types = program.types
    types.structs.clear(); types.structs.update(structs)
    types.unions.clear(); types.unions.update(unions)
    types.enums.clear(); types.enums.update(enums)
    types.typedefs.clear(); types.typedefs.update(typedefs)
    types.enum_constants.clear(); types.enum_constants.update(enum_constants)

    program._interned = dict(snapshot.interned)
    program.output[:] = snapshot.output
    program._data_next = snapshot.data_next
    program._text_next = snapshot.text_next
    # The epoch is monotone even across rewinds: a restore *changes*
    # memory relative to what readers may have cached, so it must move
    # the counter forward — past both the live value and whatever the
    # snapshot recorded (the latter matters after crash recovery,
    # where the rebuilt program's counter starts near zero but clients
    # of the pre-crash server were at the checkpoint's epoch).
    memory.epoch = max(memory.epoch, snapshot.epoch) + 1
