"""Deterministic in-target structure builders.

These place the paper's data structures — int arrays, the 1024-bucket
compiler symbol table, linked lists (optionally cyclic), binary trees —
directly into a :class:`~repro.target.program.TargetProgram`, so tests
and benchmarks get exact, reproducible target state without running a
C program first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ctype.layout import MemberDecl, complete_struct
from repro.ctype.types import (
    ArrayType,
    CHAR,
    INT,
    PointerType,
    StructType,
)
from repro.target.program import TargetProgram
from repro.target.symbols import Symbol

_CHAR_P = PointerType(CHAR)


def _struct(program: TargetProgram, tag: str,
            members) -> StructType:
    """Get-or-create ``struct tag``; re-registration reuses the layout.

    ``members`` is a list of (name, ctype-or-factory); a factory is
    called with the (possibly incomplete) record to build
    self-referential pointer types.
    """
    record = program.types.struct_tag(tag)
    if record.is_complete:
        return record
    decls = [MemberDecl(name, make(record) if callable(make) else make)
             for name, make in members]
    complete_struct(record, decls)
    return record


def int_array(program: TargetProgram, name: str,
              values: Sequence[int]) -> Symbol:
    """A global ``int name[len(values)]`` holding ``values``."""
    symbol = program.define(name, ArrayType(INT, len(values)))
    for index, value in enumerate(values):
        program.write_value(symbol.address + index * INT.size, INT, value)
    return symbol


def linked_list(program: TargetProgram, name: str, values: Sequence[int],
                tag: str = "node",
                cycle_to: Optional[int] = None) -> Symbol:
    """A global ``struct tag *name`` heading a singly linked list.

    Each node is ``struct tag { int value; struct tag *next; }``.  With
    ``cycle_to`` the last node's next points back at node ``cycle_to``
    (making the list cyclic); otherwise it is NULL.
    """
    node = _struct(program, tag, [
        ("value", INT),
        ("next", lambda record: PointerType(record)),
    ])
    node_p = PointerType(node)
    value_off = node.field("value").offset
    next_off = node.field("next").offset
    addresses = [program.alloc(node.size) for _ in values]
    for index, (address, value) in enumerate(zip(addresses, values)):
        program.write_value(address + value_off, INT, value)
        if index + 1 < len(addresses):
            link = addresses[index + 1]
        elif cycle_to is not None and addresses:
            link = addresses[cycle_to]
        else:
            link = 0
        program.write_value(address + next_off, node_p, link)
    head = program.define(name, node_p)
    program.write_value(head.address, node_p, addresses[0] if addresses else 0)
    return head


def binary_tree(program: TargetProgram, name: str, spec,
                tag: str = "tree") -> Symbol:
    """A global ``struct tag *name`` rooting a binary tree.

    ``spec`` is an int (a leaf) or a tuple ``(key, left, right)`` whose
    children are themselves specs or None — the paper's tree is
    ``(9, (3, 4, 5), 12)``.
    """
    node = _tree_struct(program, tag)
    root = program.define(name, PointerType(node))
    program.write_value(root.address, PointerType(node),
                        _build_tree(program, node, spec))
    return root


def _tree_struct(program: TargetProgram, tag: str) -> StructType:
    return _struct(program, tag, [
        ("key", INT),
        ("left", lambda record: PointerType(record)),
        ("right", lambda record: PointerType(record)),
    ])


def _build_tree(program: TargetProgram, node: StructType, spec) -> int:
    if spec is None:
        return 0
    if isinstance(spec, tuple):
        key = spec[0]
        left = spec[1] if len(spec) > 1 else None
        right = spec[2] if len(spec) > 2 else None
    else:
        key, left, right = spec, None, None
    node_p = PointerType(node)
    address = program.alloc(node.size)
    program.write_value(address + node.field("key").offset, INT, key)
    program.write_value(address + node.field("left").offset, node_p,
                        _build_tree(program, node, left))
    program.write_value(address + node.field("right").offset, node_p,
                        _build_tree(program, node, right))
    return address


def bst_insert_all(program: TargetProgram, name: str,
                   keys: Sequence[int], tag: str = "tree") -> Symbol:
    """A global BST built by inserting ``keys`` in order (dups ignored)."""
    node = _tree_struct(program, tag)
    node_p = PointerType(node)
    key_off = node.field("key").offset
    left_off = node.field("left").offset
    right_off = node.field("right").offset
    root = program.define(name, node_p)

    def new_node(key: int) -> int:
        address = program.alloc(node.size)
        program.write_value(address + key_off, INT, key)
        return address

    for key in keys:
        current = program.read_value(root.address, node_p)
        if current == 0:
            program.write_value(root.address, node_p, new_node(key))
            continue
        while True:
            held = program.read_value(current + key_off, INT)
            if key == held:
                break
            slot = current + (left_off if key < held else right_off)
            child = program.read_value(slot, node_p)
            if child == 0:
                program.write_value(slot, node_p, new_node(key))
                break
            current = child
    return root


def symbol_hash_table(program: TargetProgram, buckets: int = 1024,
                      entries: Optional[dict] = None) -> Symbol:
    """The compiler symbol table from the paper::

        struct symbol { char *name; int scope; struct symbol *next; }
            *hash[1024];

    ``entries`` maps bucket → [(name, scope), ...] in chain order.
    """
    record = _struct(program, "symbol", [
        ("name", _CHAR_P),
        ("scope", INT),
        ("next", lambda r: PointerType(r)),
    ])
    record_p = PointerType(record)
    name_off = record.field("name").offset
    scope_off = record.field("scope").offset
    next_off = record.field("next").offset
    table = program.define("hash", ArrayType(record_p, buckets))
    for bucket, chain in sorted((entries or {}).items()):
        head = 0
        for name, scope in reversed(list(chain)):
            address = program.alloc(record.size)
            program.write_value(address + name_off, _CHAR_P,
                                program.intern_string(name))
            program.write_value(address + scope_off, INT, scope)
            program.write_value(address + next_off, record_p, head)
            head = address
        program.write_value(table.address + bucket * record_p.size,
                            record_p, head)
    return table


def paper_hash_entries() -> dict:
    """The fixed symbol-table contents behind the paper's E3 sessions.

    * bucket 42 and 529 heads have scope > 5 (the deep-scope search);
    * buckets 1 and 9 carry the field-alternation examples;
    * bucket 0 is a 4-long, decreasing-scope chain;
    * bucket 287 holds the single sortedness violation, at chain
      index 8 (scope 5 followed by scope 6);
    * bucket 7 (and every other bucket) is empty.
    """
    entries = {
        0: [("outer", 4), ("mid", 3), ("arg", 2), ("main", 1)],
        1: [("x", 3)],
        9: [("abc", 2)],
        42: [("tmp", 7), ("len", 2)],
        529: [("buf", 8)],
        287: [(f"s{i}", 5) for i in range(9)] + [("deep", 6)],
    }
    return entries
