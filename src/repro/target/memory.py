"""Guarded, region-mapped target memory.

The simulated inferior's address space is a set of named, disjoint
regions (text, data, heap, stack).  Every access is bounds- and
mapping-checked *before* any byte moves, so a failed read or write can
never corrupt mapped contents; failures surface as structured
:class:`TargetMemoryFault` values that the evaluation layer converts to
the paper's ``Illegal memory reference`` report.

Raw byte access (``read``/``write``) is deliberately alignment-free —
C debuggers read ``char`` data at any address; typed access with
alignment checking lives in
:meth:`repro.target.program.TargetProgram.read_value`.
"""

from __future__ import annotations

from typing import Optional


class TargetMemoryFault(Exception):
    """A rejected target-memory operation, with structured context.

    Carries the faulting ``address``, the ``size`` of the attempted
    access, the ``operation`` ("read", "write", "alloc", "free",
    "call"), and a human ``reason``.  Never raised after partial
    side effects: the operation is validated first, applied after.
    """

    def __init__(self, address: int, size: int, operation: str,
                 reason: str):
        self.address = address
        self.size = size
        self.operation = operation
        self.reason = reason
        super().__init__(
            f"{operation} of {size} byte(s) at {address:#x}: {reason}")


class Region:
    """One contiguous mapped range of the target address space."""

    __slots__ = ("name", "base", "size", "data")

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region({self.name!r}, {self.base:#x}..{self.end:#x})"


class Memory:
    """A region-mapped address space with guarded byte access.

    ``epoch`` is a monotone counter bumped by every mutation of the
    address space — writes, fresh mappings, unmappings — and by
    snapshot restore (which rebuilds the region map through
    ``unmap``/``map_new`` and then advances past the snapshot's own
    epoch).  Read caches stacked in front of the target key their
    contents on it: a cached page is valid only while the epoch it
    was filled under is still current, so any mutation anywhere —
    a query write, an injected unmap, execution control inside the
    mini-C interpreter, a rollback — invalidates stale bytes without
    the mutator knowing which caches exist.
    """

    def __init__(self) -> None:
        self._regions: list[Region] = []
        #: Monotone memory-generation counter (never reset, never
        #: rewound — snapshot restore advances it).
        self.epoch: int = 0

    # -- mapping -----------------------------------------------------------
    def map_new(self, name: str, base: int, size: int) -> Region:
        """Map a fresh zeroed region; rejects overlap and address 0."""
        if size <= 0:
            raise TargetMemoryFault(base, size, "map",
                                    "region size must be positive")
        if base <= 0:
            raise TargetMemoryFault(base, size, "map",
                                    "region must not cover address 0")
        for region in self._regions:
            if base < region.end and region.base < base + size:
                raise TargetMemoryFault(
                    base, size, "map",
                    f"overlaps mapped region {region.name!r}")
            if region.name == name:
                raise TargetMemoryFault(
                    base, size, "map", f"region {name!r} already mapped")
        region = Region(name, base, size)
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self.epoch += 1
        return region

    def unmap(self, name: str) -> Region:
        """Remove a region by name (fault injection uses this)."""
        for region in self._regions:
            if region.name == name:
                self._regions.remove(region)
                self.epoch += 1
                return region
        raise TargetMemoryFault(0, 0, "unmap", f"no region named {name!r}")

    def region(self, name: str) -> Optional[Region]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def region_at(self, address: int) -> Optional[Region]:
        for region in self._regions:
            if region.base <= address < region.end:
                return region
        return None

    # -- guarded access ----------------------------------------------------
    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True when the whole ``[address, address+size)`` range is mapped."""
        if size <= 0 or address < 0:
            return False
        region = self.region_at(address)
        return region is not None and region.contains(address, size)

    def _locate(self, address: int, size: int, operation: str) -> Region:
        if not isinstance(address, int):
            raise TargetMemoryFault(0, size, operation,
                                    f"non-integer address {address!r}")
        if size <= 0:
            raise TargetMemoryFault(address, size, operation,
                                    "access size must be positive")
        region = self.region_at(address)
        if region is None:
            raise TargetMemoryFault(address, size, operation,
                                    "address is not mapped")
        if not region.contains(address, size):
            raise TargetMemoryFault(
                address, size, operation,
                f"access runs past the end of region {region.name!r}")
        return region

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; raises :class:`TargetMemoryFault` when any
        byte of the range is unmapped.  Never mutates state."""
        region = self._locate(address, size, "read")
        offset = address - region.base
        return bytes(region.data[offset:offset + size])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; validated fully before any byte is stored."""
        if not data:
            return
        region = self._locate(address, len(data), "write")
        offset = address - region.base
        region.data[offset:offset + len(data)] = data
        self.epoch += 1
