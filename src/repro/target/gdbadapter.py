"""Binding of the narrow debugger interface to a live gdb.

Importable everywhere: when the ``gdb`` Python module is absent (i.e.
outside a gdb process) the module still loads, ``HAVE_GDB`` is False,
and :class:`GdbBackend`/:func:`register_duel_command` fail fast with a
clear ``RuntimeError`` instead of an ImportError at import time.

Inside gdb::

    (gdb) python import sys; sys.path.insert(0, ".../src")
    (gdb) python from repro.target.gdbadapter import register_duel_command
    (gdb) python register_duel_command()
    (gdb) duel x[..100] >? 0

The adapter maps the interface onto gdb's Python API: symbols via
``gdb.lookup_symbol``, memory via the selected inferior's
``read_memory``/``write_memory``, frames via ``gdb.selected_frame``,
and calls via ``gdb.parse_and_eval``.  Type translation is best-effort
(primitives, pointers, arrays, structs/unions/enums); it is not
exercised by the offline test suite.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.target.interface import DebuggerInterface
from repro.target.memory import TargetMemoryFault
from repro.target.symbols import Symbol, SymbolKind

try:  # pragma: no cover - only importable inside gdb
    import gdb  # type: ignore
    HAVE_GDB = True
except ImportError:
    gdb = None
    HAVE_GDB = False

_NO_GDB = ("the gdb Python API is not available; "
           "run this inside gdb (see README 'Using inside real gdb')")


def _require_gdb() -> None:
    if not HAVE_GDB:
        raise RuntimeError(_NO_GDB)


class GdbBackend(DebuggerInterface):
    """The debugger interface over a live gdb inferior."""

    def __init__(self) -> None:
        _require_gdb()
        from repro.ctype.declparse import TypeEnv
        self._types = TypeEnv()

    # -- type translation (best-effort) --------------------------------
    def _translate(self, gtype):  # pragma: no cover - needs live gdb
        from repro.ctype import declparse
        return declparse.parse_type(str(gtype.strip_typedefs()),
                                    self._types)

    # -- symbols and types ---------------------------------------------
    def get_target_variable(self, name: str) -> Optional[Symbol]:  # pragma: no cover
        sym, _ = gdb.lookup_symbol(name)
        if sym is None:
            return None
        value = sym.value(gdb.selected_frame()) if sym.needs_frame \
            else sym.value()
        kind = SymbolKind.FUNCTION if sym.type.code == gdb.TYPE_CODE_FUNC \
            else SymbolKind.GLOBAL
        return Symbol(name, self._translate(sym.type),
                      int(value.address), kind)

    def get_target_typedef(self, name: str):  # pragma: no cover
        try:
            return self._translate(gdb.lookup_type(name))
        except gdb.error:
            return None

    def _lookup_tagged(self, prefix: str, tag: str):  # pragma: no cover
        try:
            return self._translate(gdb.lookup_type(f"{prefix} {tag}"))
        except gdb.error:
            return None

    def get_target_struct(self, tag: str):  # pragma: no cover
        return self._lookup_tagged("struct", tag)

    def get_target_union(self, tag: str):  # pragma: no cover
        return self._lookup_tagged("union", tag)

    def get_target_enum(self, tag: str):  # pragma: no cover
        return self._lookup_tagged("enum", tag)

    def enum_constant(self, name: str):  # pragma: no cover
        sym, _ = gdb.lookup_symbol(name)
        if sym is None or sym.type.code != gdb.TYPE_CODE_ENUM:
            return None
        return int(sym.value()), self._translate(sym.type)

    # -- frames ---------------------------------------------------------
    def frames_count(self) -> int:  # pragma: no cover
        count, frame = 0, gdb.newest_frame()
        while frame is not None:
            count, frame = count + 1, frame.older()
        return count

    def get_frame_variable(self, index: int, name: str):  # pragma: no cover
        frame = gdb.newest_frame()
        for _ in range(index):
            if frame is None:
                return None
            frame = frame.older()
        if frame is None:
            return None
        try:
            value = frame.read_var(name)
        except ValueError:
            return None
        return Symbol(name, self._translate(value.type),
                      int(value.address), SymbolKind.LOCAL)

    # -- memory ----------------------------------------------------------
    def is_mapped(self, address: int, size: int = 1) -> bool:  # pragma: no cover
        if address <= 0 or size <= 0:
            return False
        try:
            gdb.selected_inferior().read_memory(address, size)
            return True
        except gdb.MemoryError:
            return False

    def get_target_bytes(self, address: int, size: int) -> bytes:  # pragma: no cover
        try:
            return bytes(gdb.selected_inferior().read_memory(address, size))
        except gdb.MemoryError as err:
            raise TargetMemoryFault(address, size, "read", str(err))

    def put_target_bytes(self, address: int, data: bytes) -> None:  # pragma: no cover
        try:
            gdb.selected_inferior().write_memory(address, data)
        except gdb.MemoryError as err:
            raise TargetMemoryFault(address, len(data), "write", str(err))

    def alloc_target_space(self, size: int) -> int:  # pragma: no cover
        return int(gdb.parse_and_eval(f"(void *) malloc({int(size)})"))

    # -- calls ------------------------------------------------------------
    def call_target_func(self, target, raw_args: Sequence):  # pragma: no cover
        args = ", ".join(str(int(a)) for a in raw_args)
        if isinstance(target, str):
            call = f"{target}({args})"
        else:
            call = f"((long (*)()) {int(target)})({args})"
        try:
            return int(gdb.parse_and_eval(call))
        except gdb.error as err:
            raise TargetMemoryFault(0, 0, "call", str(err))


def register_duel_command() -> None:
    """Install the ``duel`` command into the running gdb."""
    _require_gdb()

    from repro.core.session import DuelSession  # pragma: no cover

    class _DuelCommand(gdb.Command):  # pragma: no cover - needs live gdb
        def __init__(self):
            super().__init__("duel", gdb.COMMAND_DATA)
            self._session = None

        def invoke(self, argument, from_tty):
            if self._session is None:
                self._session = DuelSession(GdbBackend())
            self._session.duel(argument)

    _DuelCommand()  # pragma: no cover
