"""The simulated inferior process and the paper's debugger interface.

This package is the "target side" of the reproduction: a segmented,
guarded byte memory (:mod:`repro.target.memory`), symbol tables and
stack frames (:mod:`repro.target.symbols`), the inferior itself
(:mod:`repro.target.program`), a small libc
(:mod:`repro.target.stdlib`), deterministic structure builders
(:mod:`repro.target.builder`), checkpoint/rollback
(:mod:`repro.target.snapshot`), and the narrow machine-independent
debugger interface everything above talks through
(:mod:`repro.target.interface`) — including a fault-injecting wrapper
for robustness testing and a live-gdb binding
(:mod:`repro.target.gdbadapter`).
"""

from repro.target.interface import (
    AccessTracingBackend,
    DebuggerInterface,
    FaultInjectingBackend,
    GovernedBackend,
    SimulatorBackend,
)
from repro.target.memory import Memory, TargetMemoryFault
from repro.target.pagecache import PageCachePolicy, PageCachingBackend
from repro.target.program import TargetProgram
from repro.target.symbols import Symbol, SymbolKind, SymbolTable

__all__ = [
    "AccessTracingBackend",
    "DebuggerInterface",
    "FaultInjectingBackend",
    "GovernedBackend",
    "Memory",
    "PageCachePolicy",
    "PageCachingBackend",
    "SimulatorBackend",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "TargetMemoryFault",
    "TargetProgram",
]
