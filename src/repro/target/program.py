"""The simulated inferior process.

A :class:`TargetProgram` is a complete debuggee: segmented guarded
memory (text/data/heap/stack), a C type environment, global and
per-frame symbol tables, a bump-allocating heap with live-byte
accounting, interned string literals, and callable target functions.
Globals are laid out contiguously in definition order — exactly like a
real C implementation, so out-of-bounds writes clobber the *adjacent*
object, which several examples rely on.

The segment bases are chosen so that the paper's poison addresses
(0x16820, 0xDEAD, 0xDEAD0000, 0xBAD00000, 0x99999999) all fall in
unmapped holes and report ``Illegal memory reference`` faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.ctype.declparse import DeclParser, TypeEnv, parse_type
from repro.ctype.encode import decode_value, encode_value
from repro.ctype.kinds import POINTER_SIZE
from repro.ctype.layout import align_up
from repro.ctype.types import CHAR, CType, FunctionType, PointerType
from repro.target.memory import Memory, TargetMemoryFault
from repro.target.symbols import Symbol, SymbolKind, SymbolTable

#: Segment map (LP64 flat layout).  Address 0 is never mapped.
TEXT_BASE = 0x400
TEXT_SIZE = 0x4000
DATA_BASE = 0x100000
DATA_SIZE = 0x400000
HEAP_BASE = 0x20000000
HEAP_SIZE = 0x2000000
STACK_BASE = 0x70000000
STACK_SIZE = 0x200000

#: Byte stride between function entry points in the text segment.
FUNCTION_STRIDE = 16


class Heap:
    """Bump allocator over the heap segment, with live-byte accounting."""

    def __init__(self, memory: Memory, base: int, size: int):
        self._memory = memory
        self._base = base
        self._limit = base + size
        self._next = base
        self._blocks: dict[int, int] = {}
        #: Bytes currently allocated (malloc'd minus freed) — the
        #: debugger-visible leak counter.
        self.bytes_allocated = 0

    def alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed bytes; returns the block address."""
        size = int(size)
        if size < 0:
            raise TargetMemoryFault(0, size, "alloc",
                                    "negative allocation size")
        size = max(size, 1)
        address = align_up(self._next, 16)
        if address + size > self._limit:
            raise TargetMemoryFault(address, size, "alloc",
                                    "heap segment exhausted")
        self._next = address + size
        self._blocks[address] = size
        self.bytes_allocated += size
        self._memory.write(address, bytes(size))
        return address

    def free(self, address: int) -> None:
        """Release a block; free(NULL) is a no-op, bad pointers fault."""
        if address == 0:
            return
        size = self._blocks.pop(address, None)
        if size is None:
            raise TargetMemoryFault(address, 0, "free",
                                    "not an allocated block address")
        self.bytes_allocated -= size

    def copy_state(self) -> tuple:
        return (self._next, dict(self._blocks), self.bytes_allocated)

    def restore_state(self, state: tuple) -> None:
        self._next, blocks, self.bytes_allocated = state
        self._blocks = dict(blocks)


class Frame:
    """One simulated stack frame: a function name plus its locals."""

    def __init__(self, function: str, stack: "Stack", base: int):
        self.function = function
        self.symbols = SymbolTable()
        self._stack = stack
        self._base = base

    def declare(self, name: str, ctype: CType,
                kind: SymbolKind = SymbolKind.LOCAL) -> Symbol:
        """Allocate zeroed frame space for a local/parameter."""
        address = self._stack.allocate(ctype)
        return self.symbols.define(Symbol(name, ctype, address, kind))

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.symbols.lookup(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Frame({self.function!r}, {len(self.symbols)} symbols)"


class Stack:
    """The simulated call stack: frames carving space out of one segment."""

    def __init__(self, memory: Memory, base: int, size: int):
        self._memory = memory
        self._base = base
        self._limit = base + size
        self._next = base
        self._frames: list[Frame] = []

    def push(self, function: str) -> Frame:
        frame = Frame(function, self, self._next)
        self._frames.append(frame)
        return frame

    def pop(self) -> Frame:
        if not self._frames:
            raise TargetMemoryFault(0, 0, "pop", "the stack has no frames")
        frame = self._frames.pop()
        self._next = frame._base
        return frame

    def allocate(self, ctype: CType) -> int:
        size = max(ctype.size, 1)
        align = max(getattr(ctype, "align", 1), 1)
        address = align_up(self._next, align)
        if address + size > self._limit:
            raise TargetMemoryFault(address, size, "alloc",
                                    "stack segment exhausted (overflow)")
        self._next = address + size
        self._memory.write(address, bytes(size))
        return address

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def innermost(self) -> Optional[Frame]:
        return self._frames[-1] if self._frames else None

    def frame(self, index: int) -> Frame:
        """Frame by debugger convention: 0 is the innermost frame."""
        if not 0 <= index < len(self._frames):
            raise IndexError(f"no frame {index} (depth {len(self._frames)})")
        return self._frames[-1 - index]

    def copy_state(self) -> tuple:
        frames = [(f.function, f._base, f.symbols.copy_state())
                  for f in self._frames]
        return (self._next, frames)

    def restore_state(self, state: tuple) -> None:
        self._next, frames = state
        self._frames = []
        for function, base, symbols in frames:
            frame = Frame(function, self, base)
            frame.symbols.restore_state(symbols)
            self._frames.append(frame)


@dataclass
class TargetFunction:
    """A callable installed in the target's text segment."""

    symbol: Symbol
    impl: Optional[Callable]


class TargetProgram:
    """A complete simulated debuggee (see module docstring)."""

    def __init__(self) -> None:
        self.types = TypeEnv()
        self.memory = Memory()
        self.memory.map_new("text", TEXT_BASE, TEXT_SIZE)
        self.memory.map_new("data", DATA_BASE, DATA_SIZE)
        self.memory.map_new("heap", HEAP_BASE, HEAP_SIZE)
        self.memory.map_new("stack", STACK_BASE, STACK_SIZE)
        self.heap = Heap(self.memory, HEAP_BASE, HEAP_SIZE)
        self.stack = Stack(self.memory, STACK_BASE, STACK_SIZE)
        self.globals = SymbolTable()
        self.functions: dict[str, TargetFunction] = {}
        self._functions_by_address: dict[int, TargetFunction] = {}
        #: Everything the target printf'd, in order.
        self.output: list[str] = []
        self._interned: dict[bytes, int] = {}
        self._data_next = DATA_BASE
        self._text_next = TEXT_BASE

    # -- defining globals --------------------------------------------------
    def define(self, name: str, ctype: CType) -> Symbol:
        """Place a zeroed global at the next data address (in order)."""
        if ctype.is_function:
            return self._function_symbol(name, ctype)
        size = max(ctype.size, 1)
        align = max(getattr(ctype.strip_typedefs(), "align", 1), 1)
        address = align_up(self._data_next, align)
        if address + size > DATA_BASE + DATA_SIZE:
            raise TargetMemoryFault(address, size, "alloc",
                                    "data segment exhausted")
        self._data_next = address + size
        self.memory.write(address, bytes(size))
        return self.globals.define(
            Symbol(name, ctype, address, SymbolKind.GLOBAL))

    def declare(self, text: str) -> list[Symbol]:
        """Parse C declaration syntax and define each declared global."""
        symbols = []
        for decl in DeclParser(self.types).parse(text):
            if decl.is_typedef:
                continue
            symbols.append(self.define(decl.name, decl.ctype))
        return symbols

    def parse_type(self, text: str) -> CType:
        """Parse a C type name against this program's type environment."""
        return parse_type(text, self.types)

    # -- functions ---------------------------------------------------------
    def _function_symbol(self, name: str, ctype: CType) -> Symbol:
        existing = self.functions.get(name)
        if existing is not None:
            # Redefinition (e.g. a prototype then the definition, or a
            # stdlib function overridden): keep the entry address.
            symbol = Symbol(name, ctype, existing.symbol.address,
                            SymbolKind.FUNCTION)
            existing.symbol = symbol
            return symbol
        address = self._text_next
        if address + FUNCTION_STRIDE > TEXT_BASE + TEXT_SIZE:
            raise TargetMemoryFault(address, FUNCTION_STRIDE, "alloc",
                                    "text segment exhausted")
        self._text_next = address + FUNCTION_STRIDE
        symbol = Symbol(name, ctype, address, SymbolKind.FUNCTION)
        entry = TargetFunction(symbol, None)
        self.functions[name] = entry
        self._functions_by_address[address] = entry
        return symbol

    def define_function(self, name: str, ctype: Union[CType, str],
                        impl: Callable) -> Symbol:
        """Install a callable target function.

        ``ctype`` may be a :class:`FunctionType` or C prototype text
        ("unsigned long strlen(char *)").  ``impl`` is called as
        ``impl(program, *raw_args)``; redefining a name keeps its text
        address (so function pointers taken earlier stay valid).
        """
        if isinstance(ctype, str):
            text = ctype if ctype.rstrip().endswith(";") else ctype + ";"
            decls = DeclParser(self.types).parse(text)
            if len(decls) != 1 or not decls[0].ctype.is_function:
                raise TargetMemoryFault(
                    0, 0, "call", f"not a function prototype: {ctype!r}")
            ctype = decls[0].ctype
        symbol = self._function_symbol(name, ctype)
        self.functions[name].impl = impl
        return symbol

    def call(self, target: Union[str, int], raw_args: Sequence = ()):
        """Call a target function by name or entry address."""
        if isinstance(target, str):
            entry = self.functions.get(target)
            if entry is None:
                raise TargetMemoryFault(
                    0, 0, "call", f"no function named {target!r}")
        else:
            entry = self._functions_by_address.get(int(target))
            if entry is None:
                raise TargetMemoryFault(
                    int(target), 0, "call",
                    "address is not a function entry point")
        if entry.impl is None:
            raise TargetMemoryFault(
                entry.symbol.address, 0, "call",
                f"function {entry.symbol.name!r} has no body")
        return entry.impl(self, *raw_args)

    # -- lookup ------------------------------------------------------------
    def lookup(self, name: str) -> Optional[Symbol]:
        """Resolve a name: innermost frame, then globals, then functions."""
        frame = self.stack.innermost
        if frame is not None:
            symbol = frame.symbols.lookup(name)
            if symbol is not None:
                return symbol
        symbol = self.globals.lookup(name)
        if symbol is not None:
            return symbol
        entry = self.functions.get(name)
        return entry.symbol if entry is not None else None

    # -- typed access ------------------------------------------------------
    def read_value(self, address: int, ctype: CType):
        """Aligned, typed read: decode a value of ``ctype`` at ``address``."""
        stripped = ctype.strip_typedefs()
        self._check_aligned(address, stripped, "read")
        return decode_value(self.memory.read(address, stripped.size), ctype)

    def write_value(self, address: int, ctype: CType, value) -> None:
        """Aligned, typed write: encode ``value`` as ``ctype`` at ``address``."""
        stripped = ctype.strip_typedefs()
        self._check_aligned(address, stripped, "write")
        self.memory.write(address, encode_value(value, ctype))

    def _check_aligned(self, address: int, ctype: CType,
                       operation: str) -> None:
        align = max(getattr(ctype, "align", 1), 1)
        if address % align:
            raise TargetMemoryFault(
                address, max(getattr(ctype, "size", 1), 1), operation,
                f"address not aligned to {align} for {ctype.name()}")

    # -- strings, heap, argv -----------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate zeroed heap space (the interface's alloc_target_space)."""
        return self.heap.alloc(size)

    def alloc_string(self, value: Union[str, bytes]) -> int:
        """Place a NUL-terminated string on the heap; returns its address."""
        raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        address = self.alloc(len(raw) + 1)
        self.memory.write(address, raw + b"\0")
        return address

    def intern_string(self, value: Union[str, bytes]) -> int:
        """Like :meth:`alloc_string` but deduplicated (C literal pooling)."""
        raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        address = self._interned.get(raw)
        if address is None:
            address = self.alloc_string(raw)
            self._interned[raw] = address
        return address

    def read_cstring(self, address: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated target string (raises on unmapped)."""
        data = bytearray()
        while len(data) < limit:
            byte = self.memory.read(address + len(data), 1)
            if byte == b"\0":
                break
            data += byte
        return data.decode("utf-8", "replace")

    def set_argv(self, args: Sequence[str]) -> Symbol:
        """Install ``char **argv``: a NUL-terminated vector of interned
        argument strings; returns the argv global's symbol."""
        char_p = PointerType(CHAR)
        vector = self.alloc((len(args) + 1) * POINTER_SIZE)
        for index, arg in enumerate(args):
            self.write_value(vector + index * POINTER_SIZE, char_p,
                             self.intern_string(arg))
        self.write_value(vector + len(args) * POINTER_SIZE, char_p, 0)
        symbol = self.define("argv", PointerType(char_p))
        self.write_value(symbol.address, symbol.ctype, vector)
        return symbol
