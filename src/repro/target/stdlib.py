"""A small libc for the simulated inferior.

Installs malloc/free/printf/strcmp/strlen/exit as callable target
functions with real text-segment addresses (so function pointers to
them work).  printf appends its formatted text to ``program.output``;
:func:`stdout_text` joins it back into the program's stdout.
"""

from __future__ import annotations

import re

from repro.ctype.types import CHAR, FunctionType, INT, PointerType, ULONG, VOID
from repro.target.program import TargetProgram

__all__ = ["TargetExit", "install_stdlib", "stdout_text"]


class TargetExit(Exception):
    """The target called exit(); carries the exit status."""

    def __init__(self, status: int):
        self.status = status
        super().__init__(f"target exited with status {status}")


def stdout_text(program: TargetProgram) -> str:
    """Everything the target printed, as one string."""
    return "".join(program.output)


def _read_bytes(program: TargetProgram, address: int) -> bytes:
    data = bytearray()
    while True:
        byte = program.memory.read(address + len(data), 1)
        if byte == b"\0":
            return bytes(data)
        data += byte


_FORMAT_RE = re.compile(r"%([-+ 0#]*\d*(?:\.\d+)?)([diouxXcsfge%])")


def _format(program: TargetProgram, fmt: str, args) -> str:
    remaining = iter(args)

    def convert(match: re.Match) -> str:
        flags, conv = match.groups()
        if conv == "%":
            return "%"
        arg = next(remaining, 0)
        if conv in "di":
            return ("%" + flags + "d") % int(arg)
        if conv in "ouxX":
            value = int(arg)
            if value < 0:  # C prints the unsigned 32-bit pattern
                value &= 0xFFFFFFFF
            return ("%" + flags + conv) % value
        if conv == "c":
            return ("%" + flags + "c") % chr(int(arg) & 0xFF)
        if conv == "s":
            return ("%" + flags + "s") % program.read_cstring(int(arg))
        return ("%" + flags + conv) % float(arg)

    return _FORMAT_RE.sub(convert, fmt)


def _printf(program: TargetProgram, fmt_address, *args) -> int:
    text = _format(program, program.read_cstring(int(fmt_address)), args)
    program.output.append(text)
    return len(text)


def _malloc(program: TargetProgram, size) -> int:
    return program.alloc(int(size))


def _free(program: TargetProgram, address) -> None:
    program.heap.free(int(address))


def _strlen(program: TargetProgram, address) -> int:
    return len(_read_bytes(program, int(address)))


def _strcmp(program: TargetProgram, left, right) -> int:
    a = _read_bytes(program, int(left))
    b = _read_bytes(program, int(right))
    for x, y in zip(a + b"\0", b + b"\0"):
        if x != y:
            return x - y
    return 0


def _exit(program: TargetProgram, status=0) -> None:
    raise TargetExit(int(status))


def install_stdlib(program: TargetProgram) -> None:
    """Install the mini libc into ``program`` (idempotent)."""
    char_p = PointerType(CHAR)
    void_p = PointerType(VOID)
    program.define_function(
        "malloc", FunctionType(void_p, (ULONG,)), _malloc)
    program.define_function(
        "free", FunctionType(VOID, (void_p,)), _free)
    program.define_function(
        "printf", FunctionType(INT, (char_p,), varargs=True), _printf)
    program.define_function(
        "strlen", FunctionType(ULONG, (char_p,)), _strlen)
    program.define_function(
        "strcmp", FunctionType(INT, (char_p, char_p)), _strcmp)
    program.define_function(
        "exit", FunctionType(VOID, (INT,)), _exit)
