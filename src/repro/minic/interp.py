"""The mini-C interpreter.

Executes parsed C against a :class:`~repro.target.program.TargetProgram`:
globals in the data segment, locals in simulated stack frames, heap via
the simulated malloc.  Expression semantics reuse the same
:class:`~repro.core.ops.Apply` operator engine DUEL uses, which keeps
C-vs-DUEL benchmark comparisons apples-to-apples (identical arithmetic,
pointer, and memory machinery on both sides).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ctype.convert import convert_value
from repro.ctype.types import (
    ArrayType,
    CHAR,
    CType,
    FunctionType,
    INT,
    PointerType,
    RecordType,
    ULONG,
)
from repro.core.ops import Apply
from repro.core.symbolic import SymText
from repro.core.values import DuelValue, ValueOps, lvalue, rvalue
from repro.minic import cast as A
from repro.minic.errors import MiniCRuntimeError
from repro.minic.parser import parse_program
from repro.target.interface import SimulatorBackend
from repro.target.program import TargetProgram
from repro.target.symbols import SymbolKind

_SYM = SymText("")  # mini-C carries no symbolic derivations


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class Interpreter:
    """Loads and runs mini-C programs in a simulated inferior."""

    def __init__(self, program: TargetProgram, max_steps: int = 50_000_000):
        self.program = program
        self.backend = SimulatorBackend(program)
        self.ops = ValueOps(self.backend)
        self.apply = Apply(self.ops)
        self.max_steps = max_steps
        self._steps = 0
        self.functions: dict[str, A.FuncDef] = {}
        #: Debugger hook: called as trace(event, payload) around
        #: execution — events "call" (FuncDef), "stmt" (Stmt), "return"
        #: (FuncDef).  See repro.debugger.
        self.trace = None

    # ==================================================================
    # loading
    # ==================================================================
    def load(self, unit: A.Program) -> None:
        """Install a parsed translation unit into the target."""
        for var in unit.variables:
            symbol = self.program.define(var.name, var.ctype)
            if var.init is not None:
                self._initialize(symbol.address, var.ctype, var.init)
        for func in unit.functions:
            self._register_function(func)

    def load_source(self, source: str) -> None:
        """Parse and install C source (types go into the target's env)."""
        unit, _ = parse_program(source, self.program.types)
        self.load(unit)

    def _register_function(self, func: A.FuncDef) -> None:
        self.functions[func.name] = func

        def impl(program: TargetProgram, *raw_args, _func=func):
            return self._call_function(_func, raw_args)

        self.program.define_function(func.name, func.ctype, impl)

    # ==================================================================
    # initializers
    # ==================================================================
    def _initialize(self, address: int, ctype: CType,
                    init: A.Initializer) -> None:
        stripped = ctype.strip_typedefs()
        if init.is_list:
            if isinstance(stripped, ArrayType):
                for index, item in enumerate(init.items):
                    if stripped.length is not None and index >= stripped.length:
                        raise MiniCRuntimeError("too many array initializers")
                    self._initialize(address + index * stripped.element.size,
                                     stripped.element, item)
                return
            if isinstance(stripped, RecordType):
                fields = [f for f in stripped.fields if f.name or True]
                for field, item in zip(fields, init.items):
                    self._initialize(address + field.offset, field.ctype, item)
                return
            if len(init.items) == 1:
                self._initialize(address, ctype, init.items[0])
                return
            raise MiniCRuntimeError(
                f"brace initializer for scalar {ctype.name()}")
        value = self.eval(init.expr)
        if (isinstance(stripped, ArrayType)
                and isinstance(init.expr, A.StrLit)):
            raw = init.expr.value + b"\0"
            self.program.memory.write(address, raw)
            return
        loaded = self.ops.load_value(value)
        converted = convert_value(loaded.value, loaded.ctype, ctype)
        self.program.write_value(address, ctype, converted)

    # ==================================================================
    # calls
    # ==================================================================
    def _call_function(self, func: A.FuncDef, raw_args: Sequence):
        ftype = func.ctype
        assert isinstance(ftype, FunctionType)
        frame = self.program.stack.push(func.name)
        try:
            for name, ptype, raw in zip(func.param_names, ftype.params,
                                        raw_args):
                symbol = frame.declare(name, ptype, SymbolKind.PARAMETER)
                if raw is not None:
                    self.program.write_value(symbol.address, ptype, raw)
            # Debugger "call" events fire after the prologue so that
            # breakpoint handlers see bound parameters (as gdb does).
            if self.trace is not None:
                self.trace("call", func)
            try:
                self._exec_block(func.body, frame)
            except _Return as ret:
                if ret.value is None or ftype.result.is_void:
                    return None
                loaded = self.ops.load_value(ret.value)
                return convert_value(loaded.value, loaded.ctype, ftype.result)
            return None
        finally:
            if self.trace is not None:
                self.trace("return", func)
            self.program.stack.pop()

    def call(self, name: str, *raw_args):
        """Call a loaded function by name with raw Python arguments."""
        return self.program.call(name, raw_args)

    def run_main(self, argv: Optional[Sequence[str]] = None):
        """Run main(), installing argc/argv when the program wants them."""
        main = self.functions.get("main")
        if main is None:
            raise MiniCRuntimeError("program has no main()")
        args: list = []
        if main.param_names:
            argv = list(argv or ["a.out"])
            argv_sym = self.program.set_argv(argv)
            argc = len(argv)
            argv_value = self.program.read_value(
                argv_sym.address, argv_sym.ctype)
            args = [argc, argv_value][:len(main.param_names)]
        return self.program.call("main", args)

    # ==================================================================
    # statements
    # ==================================================================
    def _step(self, line: int) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise MiniCRuntimeError(
                f"execution exceeded {self.max_steps} steps (line {line})")

    def _exec_block(self, block: A.Block, frame) -> None:
        for stmt in block.body:
            self._exec(stmt, frame)

    def _exec(self, stmt: A.Stmt, frame) -> None:
        self._step(stmt.line)
        if self.trace is not None and not isinstance(stmt, A.Block):
            self.trace("stmt", stmt)
        if isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self.eval(stmt.expr)
        elif isinstance(stmt, A.DeclStmt):
            for name, ctype, init in stmt.decls:
                if frame is None:
                    raise MiniCRuntimeError("declaration outside a function")
                symbol = frame.declare(name, ctype)
                if init is not None:
                    self._initialize(symbol.address, ctype, init)
        elif isinstance(stmt, A.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, A.IfStmt):
            if self._truthy(stmt.cond):
                self._exec(stmt.then, frame)
            elif stmt.els is not None:
                self._exec(stmt.els, frame)
        elif isinstance(stmt, A.WhileStmt):
            while self._truthy(stmt.cond):
                self._step(stmt.line)
                try:
                    self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, A.DoWhileStmt):
            while True:
                self._step(stmt.line)
                try:
                    self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(stmt.cond):
                    break
        elif isinstance(stmt, A.ForStmt):
            if stmt.init is not None:
                if isinstance(stmt.init, A.DeclStmt):
                    self._exec(stmt.init, frame)
                else:
                    self.eval(stmt.init)
            while stmt.cond is None or self._truthy(stmt.cond):
                self._step(stmt.line)
                try:
                    self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step)
            else:  # pragma: no cover - loop exits via condition/break
                pass
        elif isinstance(stmt, A.SwitchStmt):
            selector = self._int_value(stmt.value)
            matched = False
            try:
                for key, body in stmt.cases:
                    if not matched and key is not None and key == selector:
                        matched = True
                    if not matched:
                        continue
                    for inner in body:
                        self._exec(inner, frame)
                if not matched:
                    for key, body in stmt.cases:
                        if not matched and key is None:
                            matched = True
                        if not matched:
                            continue
                        for inner in body:
                            self._exec(inner, frame)
            except _Break:
                pass
        elif isinstance(stmt, A.BreakStmt):
            raise _Break()
        elif isinstance(stmt, A.ContinueStmt):
            raise _Continue()
        elif isinstance(stmt, A.ReturnStmt):
            value = self.eval(stmt.value) if stmt.value is not None else None
            raise _Return(value)
        else:  # pragma: no cover
            raise MiniCRuntimeError(f"unknown statement {type(stmt).__name__}")

    # ==================================================================
    # expressions
    # ==================================================================
    def _truthy(self, expr: A.Expr) -> bool:
        return self.ops.truthy(self.eval(expr))

    def _int_value(self, expr: A.Expr) -> int:
        return int(self.ops.load(self.eval(expr)))

    def eval(self, expr: A.Expr) -> DuelValue:
        self._step(expr.line)
        method = getattr(self, "_eval_" + type(expr).__name__, None)
        if method is None:  # pragma: no cover
            raise MiniCRuntimeError(f"unknown expression {type(expr).__name__}")
        return method(expr)

    def _eval_IntLit(self, expr: A.IntLit) -> DuelValue:
        from repro.ctype.types import LONG, UINT, ULONG
        if expr.long_ and expr.unsigned:
            ctype: CType = ULONG
        elif expr.long_ or expr.value > 0x7FFFFFFF:
            ctype = LONG
        elif expr.unsigned:
            ctype = UINT
        else:
            ctype = INT
        return rvalue(ctype, expr.value, _SYM)

    def _eval_FloatLit(self, expr: A.FloatLit) -> DuelValue:
        from repro.ctype.types import DOUBLE
        return rvalue(DOUBLE, expr.value, _SYM)

    def _eval_CharLit(self, expr: A.CharLit) -> DuelValue:
        return rvalue(CHAR, expr.value, _SYM)

    def _eval_StrLit(self, expr: A.StrLit) -> DuelValue:
        address = self.program.intern_string(expr.value)
        return rvalue(PointerType(CHAR), address, _SYM)

    def _eval_Ident(self, expr: A.Ident) -> DuelValue:
        symbol = self.program.lookup(expr.name)
        if symbol is not None:
            if symbol.ctype.is_function:
                return DuelValue(ctype=symbol.ctype, sym=_SYM,
                                 value=symbol.address, func_name=symbol.name)
            return lvalue(symbol.ctype, symbol.address, _SYM)
        constant = self.program.types.enum_constants.get(expr.name)
        if constant is not None:
            value, ctype = constant
            return rvalue(ctype, value, _SYM)
        raise MiniCRuntimeError(f"undefined identifier {expr.name!r} "
                                f"(line {expr.line})")

    def _eval_UnaryExpr(self, expr: A.UnaryExpr) -> DuelValue:
        operand = self.eval(expr.operand)
        if expr.op == "-":
            return self.apply.negate(operand, _SYM)
        if expr.op == "+":
            return self.apply.plus(operand, _SYM)
        if expr.op == "!":
            return self.apply.lognot(operand, _SYM)
        if expr.op == "~":
            return self.apply.bitnot(operand, _SYM)
        if expr.op == "*":
            return self.apply.deref(operand, _SYM)
        if expr.op == "&":
            return self.apply.addressof(operand, _SYM)
        raise MiniCRuntimeError(f"unknown unary {expr.op!r}")

    def _eval_IncDecExpr(self, expr: A.IncDecExpr) -> DuelValue:
        operand = self.eval(expr.operand)
        return self.apply.incdec(expr.op, operand, expr.postfix, _SYM)

    def _eval_BinExpr(self, expr: A.BinExpr) -> DuelValue:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return self.apply.binary(expr.op, left, right, _SYM)

    def _eval_LogicalExpr(self, expr: A.LogicalExpr) -> DuelValue:
        left = self._truthy(expr.left)
        if expr.op == "&&":
            result = left and self._truthy(expr.right)
        else:
            result = left or self._truthy(expr.right)
        return rvalue(INT, int(result), _SYM)

    def _eval_CondExpr(self, expr: A.CondExpr) -> DuelValue:
        if self._truthy(expr.cond):
            return self.eval(expr.then)
        return self.eval(expr.els)

    def _eval_AssignExpr(self, expr: A.AssignExpr) -> DuelValue:
        target = self.eval(expr.target)
        value = self.eval(expr.value)
        if expr.op == "=":
            return self.apply.assign(target, value, _SYM)
        return self.apply.compound_assign(expr.op[:-1], target, value, _SYM)

    def _eval_CommaExpr(self, expr: A.CommaExpr) -> DuelValue:
        self.eval(expr.left)
        return self.eval(expr.right)

    def _eval_IndexExpr(self, expr: A.IndexExpr) -> DuelValue:
        base = self.eval(expr.base)
        index = self.eval(expr.index)
        return self.apply.index(base, index, _SYM)

    def _eval_FieldExpr(self, expr: A.FieldExpr) -> DuelValue:
        base = self.eval(expr.base)
        return self.apply.field(base, expr.name, expr.arrow, _SYM)

    def _eval_CallExpr(self, expr: A.CallExpr) -> DuelValue:
        func = self.eval(expr.func)
        ftype = func.ctype.strip_typedefs()
        if isinstance(ftype, PointerType) and ftype.target.is_function:
            ftype = ftype.target.strip_typedefs()
        if not isinstance(ftype, FunctionType):
            raise MiniCRuntimeError("called object is not a function "
                                    f"(line {expr.line})")
        raw_args = []
        for position, arg in enumerate(expr.args):
            loaded = self.ops.load_value(self.eval(arg))
            if position < len(ftype.params):
                raw_args.append(convert_value(
                    loaded.value, loaded.ctype, ftype.params[position]))
            else:
                raw_args.append(loaded.value)
        if func.func_name is not None:
            result = self.program.call(func.func_name, raw_args)
        else:
            address = int(self.ops.load(func))
            result = self.program.call(address, raw_args)
        if ftype.result.is_void:
            return rvalue(ftype.result, None, _SYM)
        return rvalue(ftype.result, result, _SYM)

    def _eval_CastExpr(self, expr: A.CastExpr) -> DuelValue:
        operand = self.eval(expr.operand)
        return self.apply.cast(expr.ctype, operand, _SYM)

    def _eval_SizeofExpr(self, expr: A.SizeofExpr) -> DuelValue:
        if expr.ctype is not None:
            return rvalue(ULONG, expr.ctype.size, _SYM)
        operand = self.eval(expr.operand)
        return rvalue(ULONG, operand.ctype.size, _SYM)
