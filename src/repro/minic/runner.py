"""Convenience entry points: source text -> running simulated inferior.

This is the reproduction's stand-in for "compile the program, run it
under gdb, and stop somewhere interesting": after
:func:`run_program`, the program's globals and heap structures sit in
simulated target memory, ready for a
:class:`~repro.core.session.DuelSession` attached to the same program.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.minic.interp import Interpreter
from repro.target.program import TargetProgram
from repro.target.stdlib import TargetExit, install_stdlib


def load_program(source: str,
                 program: Optional[TargetProgram] = None) -> Interpreter:
    """Parse and load C source into a (new) simulated inferior."""
    if program is None:
        program = TargetProgram()
        install_stdlib(program)
    interp = Interpreter(program)
    interp.load_source(source)
    return interp


def run_program(source: str, argv: Optional[Sequence[str]] = None,
                program: Optional[TargetProgram] = None,
                call_main: bool = True) -> Interpreter:
    """Load C source and run ``main`` (if present and requested).

    Returns the interpreter; the exit status (or main's return value)
    is available as ``interp.exit_status``.
    """
    interp = load_program(source, program)
    status = None
    if call_main and "main" in interp.functions:
        try:
            status = interp.run_main(argv)
        except TargetExit as stop:
            status = stop.status
    interp.exit_status = status
    return interp
